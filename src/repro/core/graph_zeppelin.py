"""The GraphZeppelin engine: streaming connected components via CubeSketch.

This is the system of Section 5 of the paper.  Stream updates enter
through :meth:`GraphZeppelin.edge_update` (or the ``insert`` /
``delete`` convenience wrappers), are collected per destination node by
the configured buffering structure, and are folded into the node
sketches in batches.  Columnar callers hand whole ``(N, 2)`` edge
arrays to :meth:`GraphZeppelin.ingest_batch`, which canonicalises,
mirrors, and encodes the updates with numpy and drives the sketch layer
without any per-edge Python work.  A connectivity query flushes the
buffers and runs the sketch-based Boruvka algorithm, returning a
:class:`~repro.core.spanning_forest.SpanningForest`.

Sketch state lives in one of three places depending on configuration:

* **flat backend, everything in RAM** (the default): a single
  :class:`~repro.sketch.tensor_pool.NodeTensorPool` holds every node's
  bundle in two contiguous tensors and mixed multi-node batches fold in
  one columnar kernel pass;
* **flat backend, RAM budget**: a
  :class:`~repro.sketch.paged_pool.PagedTensorPool` -- the same
  round-major tensors partitioned into node-group pages stored through
  the hybrid-memory substrate, folded per page and queried per round
  slab, paying modelled SSD I/O per *page* (the out-of-core
  experiments, Figures 12, 15, 16b).  The seed design's per-node
  :class:`~repro.sketch.flat_node_sketch.FlatNodeSketch` blob store is
  kept behind ``config.out_of_core_pool = "per_node"`` as the
  reference baseline;
* **legacy backend**: the original per-round CubeSketch bundles, kept
  as the bit-identical reference implementation.

Either tensor pool makes the engine fully columnar: buffering (when
configured) collects mixed-node update columns per page and emits
:class:`~repro.buffering.base.PageBatch` objects that fold in one
kernel pass per page, and connectivity queries always run the
vectorized whole-round Boruvka driver over the pool -- one driver for
in-RAM and out-of-core alike.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.buffering.base import (
    Batch,
    BufferingSystem,
    PageBatch,
    group_by_destination,
)
from repro.buffering.gutter_tree import GutterTree
from repro.buffering.leaf_gutters import LeafGutters
from repro.core.boruvka import (
    BoruvkaStats,
    batch_sampler_from_scalar,
    sketch_spanning_forest,
    vectorized_spanning_forest,
)
from repro.core.config import BufferingMode, GraphZeppelinConfig
from repro.core.edge_encoding import EdgeEncoder
from repro.core.node_sketch import NodeSketch, merged_round_sketch, num_boruvka_rounds
from repro.core.spanning_forest import SpanningForest
from repro.exceptions import (
    ConfigurationError,
    InvalidStreamError,
    StreamFormatError,
)
from repro.memory.hybrid import HybridMemory, SketchStore
from repro.memory.metrics import IOStats
from repro.observability.metrics import default_registry
from repro.observability.tracing import span
from repro.sketch.flat_node_sketch import FlatNodeSketch, merged_round_query
from repro.sketch.paged_pool import PagedTensorPool
from repro.sketch.sizes import node_sketch_size_bytes
from repro.sketch.sketch_base import SampleResult
from repro.sketch.tensor_pool import NodeTensorPool, auto_num_shards, shard_bounds
from repro.types import Edge, EdgeUpdate, UpdateType, canonical_edge


class GraphZeppelin:
    """Streaming connected-components sketch over a fixed node universe.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``V``.  Like the paper, an upper bound is fine:
        unused node ids simply keep empty sketches.
    config:
        Engine configuration; see
        :class:`~repro.core.config.GraphZeppelinConfig`.
    memory:
        Optionally inject a pre-built hybrid memory (tests and the I/O
        benchmarks share one across components); by default one is
        created according to ``config.ram_budget_bytes``.
    """

    def __init__(
        self,
        num_nodes: int,
        config: Optional[GraphZeppelinConfig] = None,
        memory: Optional[HybridMemory] = None,
    ) -> None:
        if num_nodes < 2:
            raise ConfigurationError("GraphZeppelin needs at least two nodes")
        self.num_nodes = int(num_nodes)
        self.config = config or GraphZeppelinConfig()
        self.encoder = EdgeEncoder(self.num_nodes)
        self.num_rounds = num_boruvka_rounds(self.num_nodes)

        if memory is not None:
            self.memory: Optional[HybridMemory] = memory
        elif self.config.ram_budget_bytes is not None:
            retry = None
            if self.config.io_retry_attempts > 1:
                from repro.memory.hybrid import RetryPolicy

                retry = RetryPolicy(
                    attempts=self.config.io_retry_attempts,
                    backoff_seconds=self.config.io_retry_backoff_seconds,
                )
            breaker = None
            if self.config.io_breaker_threshold is not None:
                from repro.resilience.overload import CircuitBreaker

                breaker = CircuitBreaker(
                    failure_threshold=self.config.io_breaker_threshold,
                    reset_seconds=self.config.io_breaker_reset_seconds,
                )
            self.memory = HybridMemory(
                ram_bytes=self.config.ram_budget_bytes,
                retry=retry,
                deadline_seconds=self.config.io_deadline_seconds,
                breaker=breaker,
            )
        else:
            self.memory = None

        self._backend = self.config.sketch_backend
        # Resolve the hot-kernel provider once; every pool and per-node
        # sketch this engine builds shares the same instance (providers
        # are stateless singletons, so sharing is free).
        from repro.kernels import resolve_kernels

        self._kernels = resolve_kernels(self.config.kernel_backend)
        external = self.memory is not None and not self.memory.is_unbounded
        self._pool: Optional[NodeTensorPool] = None
        self._store: Optional[SketchStore] = None
        if self._backend == "flat" and not external:
            # Everything fits in RAM: one contiguous tensor pool for the
            # whole graph, shared by the columnar and per-edge paths.
            self._pool = NodeTensorPool(
                self.num_nodes,
                self.encoder,
                graph_seed=self.config.seed,
                delta=self.config.delta,
                num_rounds=self.num_rounds,
                kernels=self._kernels,
            )
        elif self._backend == "flat" and self.config.out_of_core_pool == "paged":
            # RAM budget: the same tensors in node-group pages behind
            # the hybrid memory -- every layer stays columnar.
            self._pool = PagedTensorPool(
                self.num_nodes,
                self.encoder,
                memory=self.memory,
                graph_seed=self.config.seed,
                delta=self.config.delta,
                num_rounds=self.num_rounds,
                nodes_per_page=self.config.nodes_per_page,
                kernels=self._kernels,
            )
        else:
            if self._backend == "flat":
                deserialize = lambda payload: FlatNodeSketch.from_bytes(
                    payload,
                    self.encoder,
                    self.config.seed,
                    delta=self.config.delta,
                    kernels=self._kernels,
                )
            else:
                deserialize = lambda payload: NodeSketch.from_bytes(
                    payload, self.encoder, self.config.seed, delta=self.config.delta
                )
            self._store = SketchStore(
                serialize=lambda sketch: sketch.to_bytes(),
                deserialize=deserialize,
                memory=self.memory,
            )
            for node in range(self.num_nodes):
                self._store.put(node, self._new_node_sketch(node))

        self._node_sketch_bytes = node_sketch_size_bytes(
            self.num_nodes, self.config.delta
        )
        self._buffering = self._build_buffering()
        self._updates_processed = 0
        self._batches_applied = 0
        self._current_edges: Optional[Set[Edge]] = (
            set() if self.config.validate_stream else None
        )
        self._last_query_stats: Optional[BoruvkaStats] = None
        # The spanning forest is a pure function of the sketch state, so
        # it is cached between queries and invalidated whenever an
        # update touches the sketches (directly or via the buffers).
        self._cached_forest: Optional[SpanningForest] = None
        # Stream position recorded by the snapshot this engine was
        # loaded from (0 for a fresh engine): resume ingestion there.
        self._resume_offset = 0
        # Policy-driven checkpointing, attached via attach_checkpointer;
        # every ingest entry point notifies it.
        self._checkpointer = None
        # Checkpoint failures from checkpointers that were since detached
        # or replaced -- health() must keep reporting them, or a failed
        # checkpoint disappears from the degradation record the moment a
        # new checkpointer is attached.
        self._checkpoint_failures_absorbed = 0

    # ------------------------------------------------------------------
    # stream ingestion (user API)
    # ------------------------------------------------------------------
    def edge_update(self, u: int, v: int) -> None:
        """Process one stream update toggling edge ``{u, v}``.

        Over Z_2 an insertion and a deletion are the same toggle, so a
        single entry point suffices; :meth:`insert` and :meth:`delete`
        exist for callers that want the stream-validity checking.
        """
        edge = canonical_edge(u, v)
        self._ingest(edge)

    def insert(self, u: int, v: int) -> None:
        """Process an edge insertion (validated when configured)."""
        edge = canonical_edge(u, v)
        if self._current_edges is not None:
            if edge in self._current_edges:
                raise InvalidStreamError(f"edge {edge} inserted while already present")
            self._current_edges.add(edge)
        self._ingest(edge, validated=True)

    def delete(self, u: int, v: int) -> None:
        """Process an edge deletion (validated when configured)."""
        edge = canonical_edge(u, v)
        if self._current_edges is not None:
            if edge not in self._current_edges:
                raise InvalidStreamError(f"edge {edge} deleted while absent")
            self._current_edges.remove(edge)
        self._ingest(edge, validated=True)

    def apply_update(self, update: EdgeUpdate) -> None:
        """Process an :class:`~repro.types.EdgeUpdate`."""
        if update.kind is UpdateType.INSERT:
            self.insert(update.u, update.v)
        else:
            self.delete(update.u, update.v)

    def ingest(self, updates: Iterable[EdgeUpdate]) -> int:
        """Process a whole stream of updates; returns how many were applied."""
        count = 0
        for update in updates:
            self.apply_update(update)
            count += 1
        return count

    def ingest_batch(self, edges: Union[np.ndarray, Sequence[Tuple[int, int]]]) -> int:
        """Columnar ingestion of an ``(N, 2)`` array of edge toggles.

        The whole batch is canonicalised, mirrored, and encoded with
        numpy; no per-edge Python work happens anywhere on the path.
        With the in-RAM tensor pool the mixed multi-node update column
        goes straight through the columnar fold kernel (buffering would
        only add copying); out-of-core configurations route the columns
        through the buffering structure's vectorised ``insert_batch`` so
        per-page (or, for the per-node reference stores, per-node)
        batches still amortise sketch page-ins.

        Like :meth:`edge_update`, each row is a toggle: inserting an
        absent edge and deleting a present one are the same operation
        over Z_2.  When stream validation is enabled, the tracked edge
        set is toggled to match, so later validated ``insert`` /
        ``delete`` calls stay consistent.  Returns the number of edge
        updates ingested.
        """
        lo, hi = self._canonical_edge_columns(edges)
        if lo is None:
            return 0
        self._toggle_tracked_edges(lo, hi)
        count = int(lo.size)
        self._updates_processed += count
        self._cached_forest = None
        registry = default_registry()
        if registry.enabled:
            registry.counter("ingest.updates").inc(count)

        with span("ingest.batch"):
            if self._pool is not None and (
                self._buffering is None or not self._pool.is_paged
            ):
                # In-RAM pools fold directly even when buffering is
                # configured (the gutters would only copy); the paged pool
                # keeps the buffering layer in front so small batches still
                # amortise page pins.
                self._pool.apply_edges(
                    lo, hi, self.encoder.encode_canonical_pairs(lo, hi)
                )
                self._batches_applied += 1
            else:
                dsts = np.concatenate([lo, hi])
                neighbors = np.concatenate([hi, lo])
                if self._buffering is not None:
                    self._apply_emitted(self._buffering.insert_batch(dsts, neighbors))
                else:
                    self._apply_grouped(dsts, neighbors)
        self._note_checkpoint_progress(count)
        return count

    def _canonical_edge_columns(self, edges):
        """Validate and canonicalise an ``(N, 2)`` edge batch.

        The shared front half of serial :meth:`ingest_batch` and the
        sharded parallel ingest path: shape/range/self-loop validation
        and canonical ``(lo, hi)`` orientation.  Returns ``(lo, hi)``
        int64 columns, or ``(None, None)`` for an empty batch.  Counter
        updates, cache invalidation, and the tracked-edge toggle
        (:meth:`_toggle_tracked_edges`) stay with the caller -- the
        parallel path defers all of them to its batch barrier so a
        batch whose workers fail leaves no phantom state behind.
        """
        array = np.asarray(edges)
        if array.size == 0:
            return None, None
        if array.ndim != 2 or array.shape[1] != 2:
            raise InvalidStreamError("ingest_batch expects an (N, 2) edge array")
        endpoints = array.astype(np.int64, copy=False)
        u, v = endpoints[:, 0], endpoints[:, 1]
        if ((u < 0) | (u >= self.num_nodes) | (v < 0) | (v >= self.num_nodes)).any():
            raise InvalidStreamError("batch contains an endpoint outside the graph")
        if (u == v).any():
            raise InvalidStreamError("batch contains a self loop")
        return np.minimum(u, v), np.maximum(u, v)

    def _toggle_tracked_edges(self, lo: np.ndarray, hi: np.ndarray) -> None:
        """Toggle a canonical edge batch in the validated edge set.

        No-op unless stream validation is enabled.  Toggles per
        occurrence (a repeated edge cancels), matching the sketch
        semantics; validation mode is already documented as O(E)
        bookkeeping, so the per-row loop is acceptable here.
        """
        if self._current_edges is None:
            return
        for edge in zip(lo.tolist(), hi.tolist()):
            if edge in self._current_edges:
                self._current_edges.remove(edge)
            else:
                self._current_edges.add(edge)

    def parallel_ingestor(
        self,
        num_workers: Optional[int] = None,
        num_shards: Optional[int] = None,
        backend: Optional[str] = None,
    ):
        """An ingestor matching ``config.parallel_backend`` (or ``backend``).

        ``"threads"`` / ``"processes"`` return a
        :class:`~repro.parallel.graph_workers.ShardedIngestor` over this
        engine's tensor pool; ``"legacy"`` returns the seed design's
        :class:`~repro.parallel.graph_workers.ParallelIngestor`.  Use as
        a context manager around the ingest loop.
        """
        # Local import: repro.parallel imports this module.
        from repro.parallel.graph_workers import ParallelIngestor, ShardedIngestor

        resolved = backend if backend is not None else self.config.parallel_backend
        workers = num_workers if num_workers is not None else self.config.num_workers
        if resolved == "legacy":
            return ParallelIngestor(self, num_workers=workers)
        return ShardedIngestor(
            self, num_workers=workers, num_shards=num_shards, backend=resolved
        )

    def _note_parallel_ingest(self, count: int) -> None:
        """Publish one parallel batch's effects after its fold barrier.

        The shard workers write the pool tensors directly (possibly
        from other processes), bypassing every user-facing entry point,
        so the coordinator records the counters here -- and, crucially,
        invalidates the cached spanning forest and the pool's slab
        cache, exactly like a serial ingest would.  ``count=0`` signals
        a batch whose workers failed partway: the caches still have to
        go (some shards' folds landed), but no updates are claimed.
        """
        if count:
            self._updates_processed += int(count)
            self._batches_applied += 1
            registry = default_registry()
            if registry.enabled:
                registry.counter("ingest.updates").inc(int(count))
        self._cached_forest = None
        if self._pool is not None:
            self._pool.mark_external_updates(2 * int(count))
        if count:
            self._note_checkpoint_progress(int(count))

    # ------------------------------------------------------------------
    # queries (user API)
    # ------------------------------------------------------------------
    def list_spanning_forest(self) -> SpanningForest:
        """Flush all buffers and return a spanning forest of the stream.

        Matches ``list_spanning_forest()`` in Figure 9: remaining
        buffered updates are applied first, then Boruvka runs over the
        node sketches.  The node sketches are not consumed -- the stream
        can continue after the query.

        The forest is cached: repeated connectivity queries
        (``is_connected`` point lookups, ``num_connected_components``
        polls) between updates reuse it instead of re-running Boruvka,
        and any ingested update invalidates it.
        """
        if self._cached_forest is not None:
            return self._cached_forest
        self.flush()
        if self.config.query_backend == "vectorized":
            forest, stats = vectorized_spanning_forest(
                num_nodes=self.num_nodes,
                num_rounds=self.num_rounds,
                encoder=self.encoder,
                batch_cut_sampler=self._component_cut_sample_batch,
                strict=self.config.strict_queries,
            )
        else:
            forest, stats = sketch_spanning_forest(
                num_nodes=self.num_nodes,
                num_rounds=self.num_rounds,
                encoder=self.encoder,
                cut_sampler=self._component_cut_sample,
                strict=self.config.strict_queries,
            )
        self._last_query_stats = stats
        self._cached_forest = forest
        return forest

    def spanning_forest(self) -> SpanningForest:
        """Alias of :meth:`list_spanning_forest`."""
        return self.list_spanning_forest()

    def connected_components(self) -> List[Set[int]]:
        """The node partition implied by the spanning forest."""
        return self.list_spanning_forest().components()

    def num_connected_components(self) -> int:
        return self.list_spanning_forest().num_components

    def is_connected(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are currently in the same component."""
        return self.list_spanning_forest().connected(u, v)

    # ------------------------------------------------------------------
    # snapshots (the distributed plane)
    # ------------------------------------------------------------------
    def save_snapshot(self, path, stream_offset: Optional[int] = None):
        """Checkpoint the engine's sketch state to a snapshot file.

        Buffered updates are flushed first, so the snapshot captures
        exactly the updates processed so far; the pool (flat or paged)
        then streams to disk in the versioned format of
        :mod:`repro.distributed.snapshot`, stamped with this engine's
        config fingerprint, update counters, and ``stream_offset`` --
        how far into the input stream this state corresponds to
        (defaults to ``updates_processed``, which is the position when
        the stream is consumed sequentially).  Ingestion can continue
        afterwards; a crash loses only the post-snapshot suffix, which
        :meth:`load_snapshot` + re-ingesting from the recorded offset
        replays bit-identically.  Returns the written metadata.
        """
        if self._pool is None:
            raise ConfigurationError(
                "snapshots require a tensor-pool engine (the flat sketch "
                "backend); the legacy object stores do not snapshot"
            )
        from repro.distributed.snapshot import save_pool_snapshot

        self.flush()
        offset = self._updates_processed if stream_offset is None else int(stream_offset)
        return save_pool_snapshot(
            self._pool,
            path,
            stream_offset=offset,
            engine_updates=self._updates_processed,
            fingerprint=self.config.sketch_fingerprint(),
        )

    @classmethod
    def load_snapshot(
        cls,
        path,
        config: Optional[GraphZeppelinConfig] = None,
        memory: Optional[HybridMemory] = None,
    ) -> "GraphZeppelin":
        """Rebuild an engine from a snapshot written by :meth:`save_snapshot`.

        With no ``config`` the snapshot's own seed and delta are used
        (everything-in-RAM); a supplied config may change *how* state is
        held (RAM budget, buffering, workers) but must match the
        snapshot's sketch fingerprint -- buckets interpreted under
        different hash functions silently fail every query, so a
        mismatch raises instead.  The loaded engine's
        :attr:`resume_offset` is the recorded stream position:
        re-ingesting the stream from there yields final state
        bit-identical to a run that never stopped.
        """
        from repro.distributed.snapshot import load_snapshot_into, read_snapshot_meta

        meta = read_snapshot_meta(path)
        if config is None:
            config = GraphZeppelinConfig(seed=meta.graph_seed, delta=meta.delta)
        if config.validate_stream:
            raise ConfigurationError(
                "cannot resume with validate_stream: the tracked edge set is "
                "not part of a snapshot"
            )
        if meta.fingerprint and config.sketch_fingerprint() != meta.fingerprint:
            raise StreamFormatError(
                f"snapshot was written under config fingerprint "
                f"{meta.fingerprint:#x}, supplied config has "
                f"{config.sketch_fingerprint():#x}"
            )
        engine = cls(meta.num_nodes, config=config, memory=memory)
        if engine._pool is None:
            raise ConfigurationError(
                "snapshot loading requires a tensor-pool engine (the flat "
                "sketch backend)"
            )
        load_snapshot_into(path, engine._pool)
        engine._updates_processed = meta.engine_updates
        engine._resume_offset = meta.stream_offset
        engine._cached_forest = None
        return engine

    @property
    def resume_offset(self) -> int:
        """Stream position of the snapshot this engine was loaded from."""
        return self._resume_offset

    # ------------------------------------------------------------------
    # checkpointing (the fault-tolerance plane)
    # ------------------------------------------------------------------
    def attach_checkpointer(
        self,
        directory,
        policy=None,
        fault_plan=None,
        clock=None,
    ):
        """Attach a policy-driven :class:`~repro.resilience.checkpoint.Checkpointer`.

        Once attached, every ingest entry point (per-edge, batched, and
        the parallel barrier) notifies the checkpointer, which writes a
        rotating generation-numbered snapshot into ``directory``
        whenever the policy says one is due.  Replaces any previously
        attached checkpointer and returns the new one.
        """
        from repro.resilience.checkpoint import Checkpointer

        kwargs = {"policy": policy, "fault_plan": fault_plan}
        if clock is not None:
            kwargs["clock"] = clock
        if self._checkpointer is not None:
            self._checkpoint_failures_absorbed += self._checkpointer.checkpoint_failures
        self._checkpointer = Checkpointer(self, directory, **kwargs)
        return self._checkpointer

    def detach_checkpointer(self):
        """Detach and return the active checkpointer (``None`` if none).

        The detached checkpointer's failure count folds into the
        engine's absorbed total so :meth:`health` keeps reporting the
        degradation after the checkpointer is gone.
        """
        checkpointer, self._checkpointer = self._checkpointer, None
        if checkpointer is not None:
            self._checkpoint_failures_absorbed += checkpointer.checkpoint_failures
        return checkpointer

    @property
    def checkpointer(self):
        """The attached checkpointer, or ``None``."""
        return self._checkpointer

    @classmethod
    def recover_latest(
        cls,
        directory,
        config: Optional[GraphZeppelinConfig] = None,
        memory: Optional[HybridMemory] = None,
    ) -> "GraphZeppelin":
        """Rebuild an engine from the newest usable checkpoint in ``directory``.

        Generations are scanned newest-first; corrupt or unreadable
        snapshots (torn writes, partial headers) are skipped and the
        previous generation is tried, so a crash *during* a checkpoint
        write still recovers.  Raises
        :class:`~repro.exceptions.RecoveryError` when no generation is
        usable.  Re-ingest the stream from the returned engine's
        :attr:`resume_offset` to catch up bit-identically.
        """
        from repro.resilience.checkpoint import recover_latest

        engine, _path, _skipped = recover_latest(
            directory, config=config, memory=memory
        )
        return engine

    def _note_checkpoint_progress(self, count: int) -> None:
        """Tell the attached checkpointer ``count`` updates just landed."""
        if self._checkpointer is not None:
            self._checkpointer.note_updates(count)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Apply every buffered update to the node sketches.

        Failure-atomic against storage errors: an in-RAM engine applies
        the whole emission coalesced (pure-RAM folds cannot fail
        partway), while an out-of-core engine applies one page batch at
        a time -- each batch's fold only mutates state after its page is
        resident, so a batch that raises (rotten page read, failed
        writeback) has not been applied, and it plus the unapplied tail
        are restored to the gutters before the error propagates.
        Without this, an absorbed mid-flush error (a checkpointer
        swallowing a failed checkpoint) would silently drop the popped
        updates and quietly diverge from the fault-free stream.
        """
        if self._buffering is None:
            return
        batches = self._buffering.flush_all()
        if (
            self._pool is None
            or self.memory is None
            or self.memory.is_unbounded
        ):
            # In-RAM pools cannot fail mid-fold; object stores mutate
            # before their write-back, so restoring could double-apply
            # -- both keep the coalesced fast path.
            self._apply_emitted(batches)
            return
        applied = 0
        try:
            for batch in batches:
                self._apply_batch(batch)
                applied += 1
        except BaseException:
            self._buffering.restore(batches[applied:])
            raise

    def node_sketch(self, node: int) -> Union[NodeSketch, FlatNodeSketch]:
        """The current sketch of one node (a copy-safe reference)."""
        if self._pool is not None:
            return self._pool.node_sketch(node)
        return self._store.get(node)

    def scrub_storage(self) -> list:
        """Verify checksums of all spilled and cached sketch state.

        Flushes buffered updates and syncs dirty pages first, so the
        byte tier is authoritative, then verifies every stored payload
        (per-block device digests plus whole-payload digests).  Returns
        what failed: corrupt page indices for a paged pool, raw storage
        keys otherwise.  Fully in-RAM engines have no byte tier and
        return ``[]``.  The scrub only *detects* -- healing a corrupt
        page is :func:`repro.integrity.repair.scrub_and_repair`'s job.
        """
        if self.memory is None or self.memory.is_unbounded:
            return []
        with span("scrub.pass"):
            self.flush()
            if self._pool is not None and self._pool.is_paged:
                self._pool.sync()
                return self._pool.scrub()
            self.memory.flush()
            return self.memory.scrub()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    @property
    def batches_applied(self) -> int:
        return self._batches_applied

    @property
    def node_sketch_bytes(self) -> int:
        """Bytes of a single node sketch."""
        return self._node_sketch_bytes

    def sketch_bytes(self) -> int:
        """Bytes of all node sketches (the dominant term of Figure 11)."""
        return self._node_sketch_bytes * self.num_nodes

    def buffer_bytes(self) -> int:
        """Bytes currently pinned by the buffering structure."""
        if self._buffering is None:
            return 0
        return self._buffering.pending_updates() * 8

    def total_bytes(self) -> int:
        """Total space accounting used in the space-comparison figures."""
        return self.sketch_bytes() + self.buffer_bytes()

    @property
    def io_stats(self) -> Optional[IOStats]:
        """I/O counters of the hybrid memory (``None`` when fully in RAM)."""
        return self.memory.stats if self.memory is not None else None

    @property
    def checkpoint_failures(self) -> int:
        """Policy-driven checkpoint failures over the engine's lifetime.

        Counts the attached checkpointer's failures *plus* those of any
        checkpointer that was since detached or replaced -- a swallowed
        checkpoint failure stays on the health record either way.
        """
        current = (
            self._checkpointer.checkpoint_failures
            if self._checkpointer is not None
            else 0
        )
        return self._checkpoint_failures_absorbed + current

    def publish_metrics(self) -> None:
        """Publish engine-level levels as gauges in the default registry.

        Event totals (fold spans, query rounds, checkpoint writes) are
        recorded at event time by the instrumented subsystems; the
        levels that only the engine can see -- update totals, I/O
        counters, breaker and page state -- are published here, called
        by :meth:`metrics` and :meth:`health` so every exposition path
        sees a complete registry.
        """
        registry = default_registry()
        if not registry.enabled:
            return
        registry.gauge("engine.updates_processed").set(float(self._updates_processed))
        registry.gauge("engine.batches_applied").set(float(self._batches_applied))
        stats = self.io_stats
        if stats is not None:
            for key, value in stats.snapshot().items():
                registry.gauge(f"io.{key}").set(float(value))
        breaker = self.memory.breaker if self.memory is not None else None
        if breaker is not None:
            registry.gauge("breaker.times_opened").set(float(breaker.times_opened))
            registry.gauge("breaker.rejections").set(float(breaker.rejections))
            registry.gauge("breaker.probes").set(float(breaker.probes))
            registry.gauge("breaker.open").set(1.0 if breaker.state == "open" else 0.0)
        if self._pool is not None and self._pool.is_paged:
            for key, value in self._pool.page_stats().items():
                registry.gauge(f"page.{key}").set(float(value))
        registry.gauge("checkpoint.failures_total").set(float(self.checkpoint_failures))

    def metrics(self, format: str = "snapshot"):
        """The process-wide metrics, engine gauges freshly published.

        ``format`` selects the representation: ``"snapshot"`` (default)
        returns the picklable
        :class:`~repro.observability.metrics.MetricsSnapshot`,
        ``"prometheus"`` the text exposition string, ``"json"`` a
        plain-dict dump.  The registry is process-wide, so spans from
        every engine in the process land in one place -- exactly like
        ``default_registry().snapshot()``, plus this engine's gauges.
        """
        self.publish_metrics()
        snap = default_registry().snapshot()
        if format == "snapshot":
            return snap
        if format == "prometheus":
            from repro.observability.exposition import prometheus_text

            return prometheus_text(snap)
        if format == "json":
            from repro.observability.exposition import metrics_json

            return metrics_json(snap)
        raise ValueError(
            f"unknown metrics format {format!r} (use 'snapshot', 'prometheus', or 'json')"
        )

    def health(self) -> dict:
        """One-call overload/degradation snapshot of the engine.

        Summarises the overload plane's telemetry -- pressure events,
        deadline misses, breaker rejections and state, working-set
        degradations, checkpoint failures -- under a single ``status``:
        ``"ok"`` (nothing degraded), ``"degraded"`` (pressure, missed
        deadlines, or failed checkpoints were absorbed; answers remain
        exact), or ``"circuit-open"`` (the device breaker is currently
        shedding I/O).  The CLI's ``--report`` prints this; the chaos
        harness records it per cycle.  Levels are published to the
        metrics registry first, so ``health()`` and :meth:`metrics`
        always agree.
        """
        self.publish_metrics()
        report: dict = {
            "status": "ok",
            "updates_processed": self._updates_processed,
            "kernel_backend": self.resolved_kernel_backend,
        }
        degraded = False
        circuit_open = False
        stats = self.io_stats
        if stats is not None:
            report["pressure_events"] = stats.pressure_events
            report["deadline_misses"] = stats.deadline_misses
            report["breaker_rejections"] = stats.breaker_rejections
            degraded = degraded or stats.pressure_events > 0
            degraded = degraded or stats.deadline_misses > 0
        breaker = self.memory.breaker if self.memory is not None else None
        if breaker is not None:
            report["breaker"] = breaker.snapshot()
            degraded = degraded or breaker.times_opened > 0
            circuit_open = breaker.state == "open"
        if self._pool is not None and self._pool.is_paged:
            page_stats = self._pool.page_stats()
            report["page_stats"] = page_stats
            degraded = degraded or page_stats["pressure_degradations"] > 0
        checkpoint_failures = self.checkpoint_failures
        if self._checkpointer is not None or self._checkpoint_failures_absorbed:
            report["checkpoint_failures"] = checkpoint_failures
        degraded = degraded or checkpoint_failures > 0
        if circuit_open:
            report["status"] = "circuit-open"
        elif degraded:
            report["status"] = "degraded"
        return report

    @property
    def last_query_stats(self) -> Optional[BoruvkaStats]:
        """Diagnostics of the most recent connectivity query."""
        return self._last_query_stats

    @property
    def buffering(self) -> Optional[BufferingSystem]:
        return self._buffering

    @property
    def resolved_kernel_backend(self) -> str:
        """Which hot-kernel implementation this engine actually runs.

        ``config.kernel_backend`` is the *request* (``"auto"`` may fall
        back); this is the outcome: the provider's name (``"numba"`` or
        ``"cc"``) when a native provider is live, else ``"numpy"``.
        """
        return self._kernels.name if self._kernels is not None else "numpy"

    @property
    def tensor_pool(self) -> Optional[NodeTensorPool]:
        """The whole-graph tensor pool (``None`` for object-store backends).

        The sharded parallel ingest layer folds into this directly.
        """
        return self._pool

    def __repr__(self) -> str:
        mode = self.config.buffering.value
        return (
            f"GraphZeppelin(num_nodes={self.num_nodes}, rounds={self.num_rounds}, "
            f"buffering={mode}, updates={self._updates_processed})"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _new_node_sketch(self, node: int) -> Union[NodeSketch, FlatNodeSketch]:
        if self._backend == "flat":
            return FlatNodeSketch(
                node,
                self.encoder,
                graph_seed=self.config.seed,
                delta=self.config.delta,
                num_rounds=self.num_rounds,
                kernels=self._kernels,
            )
        return NodeSketch(
            node,
            self.encoder,
            graph_seed=self.config.seed,
            delta=self.config.delta,
            num_rounds=self.num_rounds,
        )

    def _buffering_page_bounds(self) -> Optional[np.ndarray]:
        """Node-group boundaries the buffering layer collects columns by.

        Tensor-pool engines buffer per page: the paged pool's own page
        boundaries out of core, and radix-span-sized node groups for
        the in-RAM pool (so an emitted column folds through the
        kernel's int16 fast path in one pass).  The legacy per-node
        object stores keep per-node gutters (``None``).
        """
        if self._pool is None:
            return None
        if self._pool.is_paged:
            return self._pool.page_bounds
        return shard_bounds(
            self.num_nodes, auto_num_shards(self.num_nodes, self._pool.num_rows)
        )

    def _build_buffering(self) -> Optional[BufferingSystem]:
        mode = self.config.buffering
        if mode is BufferingMode.NONE:
            return None
        if mode is BufferingMode.LEAF_GUTTERS:
            return LeafGutters(
                num_nodes=self.num_nodes,
                node_sketch_bytes=self._node_sketch_bytes,
                fraction=self.config.gutter_fraction,
                memory=self.memory,
                page_bounds=self._buffering_page_bounds(),
            )
        if mode is BufferingMode.GUTTER_TREE:
            return GutterTree(
                num_nodes=self.num_nodes,
                node_sketch_bytes=self._node_sketch_bytes,
                memory=self.memory,
                page_bounds=self._buffering_page_bounds(),
            )
        raise ConfigurationError(f"unknown buffering mode {mode!r}")

    def _ingest(self, edge: Edge, validated: bool = False) -> None:
        u, v = edge
        self._updates_processed += 1
        registry = default_registry()
        if registry.enabled:
            registry.counter("ingest.updates").inc()
        self._cached_forest = None
        if self._buffering is None:
            self._apply_batch(Batch(node=u, neighbors=[v]))
            self._apply_batch(Batch(node=v, neighbors=[u]))
            self._note_checkpoint_progress(1)
            return
        for batch in self._buffering.insert_edge(u, v):
            self._apply_batch(batch)
        self._note_checkpoint_progress(1)

    def _apply_emitted(self, batches: Sequence[Union[Batch, PageBatch]]) -> None:
        """Apply a list of emitted buffer batches, coalescing page columns.

        A flush can emit hundreds of page batches at once (one per
        gutter); folding them one by one would pay the kernel's fixed
        cost per page.  Page columns bound for a tensor pool are
        concatenated and handed to the pool as **one** mixed column --
        the pool's fold planner then picks per-page radix folds or a
        single combined fold, whichever is cheaper for the batch shape.
        Per-node batches (legacy stores) apply individually as before.
        """
        page_batches = [
            b for b in batches if isinstance(b, PageBatch) and len(b) > 0
        ]
        coalesce = self._pool is not None and len(page_batches) > 1
        if coalesce:
            dsts = np.concatenate([b.dsts for b in page_batches])
            neighbors = np.concatenate([b.neighbors for b in page_batches])
            self._cached_forest = None
            lo = np.minimum(dsts, neighbors)
            hi = np.maximum(dsts, neighbors)
            self._pool.apply_updates(
                dsts, self.encoder.encode_canonical_pairs(lo, hi)
            )
            self._batches_applied += len(page_batches)
        for batch in batches:
            if coalesce and isinstance(batch, PageBatch):
                continue
            self._apply_batch(batch)

    def _apply_batch(self, batch: Union[Batch, PageBatch]) -> None:
        if len(batch) == 0:
            return
        if isinstance(batch, PageBatch):
            self._apply_page_batch(batch)
            return
        # Also reached by the parallel ingestor's workers, which submit
        # batches without passing through the user-facing entry points.
        self._cached_forest = None
        if self._pool is not None:
            self._pool.apply_node_batch(batch.node, batch.neighbors)
        else:
            sketch = self._store.get(batch.node)
            sketch.apply_batch(batch.neighbors)
            self._store.put(batch.node, sketch)
        self._batches_applied += 1

    def _apply_page_batch(self, batch: PageBatch) -> None:
        """Fold one emitted page column into the sketch state.

        The tensor-pool hot path: the whole mixed-node column encodes
        vectorised and folds through
        :meth:`~repro.sketch.tensor_pool.NodeTensorPool.fold_page_batch`
        -- for a paged pool that is exactly one page pin.  Object-store
        engines (which normally emit per-node batches) degrade to
        grouping the column per destination.
        """
        self._cached_forest = None
        if self._pool is not None:
            lo = np.minimum(batch.dsts, batch.neighbors)
            hi = np.maximum(batch.dsts, batch.neighbors)
            self._pool.fold_page_batch(
                batch.node_lo,
                batch.node_hi,
                batch.dsts,
                self.encoder.encode_canonical_pairs(lo, hi),
            )
        else:
            for node, chunk in group_by_destination(batch.dsts, batch.neighbors):
                sketch = self._store.get(node)
                sketch.apply_batch(chunk)
                self._store.put(node, sketch)
        self._batches_applied += 1

    def _apply_grouped(self, dsts: np.ndarray, neighbors: np.ndarray) -> None:
        """Group a mixed update column by destination and apply per node."""
        for node, chunk in group_by_destination(dsts, neighbors):
            self._apply_batch(Batch(node=node, neighbors=chunk))

    def _component_cut_sample(
        self, round_index: int, members: Sequence[int]
    ) -> SampleResult:
        """Cut sampler handed to the Boruvka driver.

        XOR-merges the round-``round_index`` sketches of the component's
        member nodes (without mutating them) and queries the result.
        With the tensor pool this is one fancy gather + XOR reduction;
        the object-store backends stack their members' raw arrays.
        """
        if self._pool is not None:
            return self._pool.query_merged(members, round_index)
        sketches = [self._store.get(node) for node in members]
        if self._backend == "legacy":
            return merged_round_sketch(sketches, round_index).query()
        return merged_round_query(sketches, round_index)

    def _component_cut_sample_batch(
        self,
        round_index: int,
        labels: np.ndarray,
        node_mask: Optional[np.ndarray] = None,
    ):
        """Whole-round cut sampler handed to the vectorized Boruvka driver.

        With the tensor pool every component's merged sketch comes out
        of one segmented XOR-reduce over the pool; the object-store
        backends fall back to grouping nodes by label and querying per
        component (still without any member-list bookkeeping).
        """
        if self._pool is not None:
            return self._pool.query_components(labels, round_index, node_mask=node_mask)
        return batch_sampler_from_scalar(self._component_cut_sample)(
            round_index, labels, node_mask
        )
