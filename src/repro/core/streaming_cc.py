"""StreamingCC: the Ahn--Guha--McGregor baseline built on general l0-samplers.

Section 3 of the paper argues that emulating Boruvka with the best
*general-purpose* l0-sampler is infeasibly slow and large in practice:
every stream update performs ``O(log V * log 1/delta)`` modular
exponentiations, and the per-node sketches are roughly four times
larger than CubeSketches.  This class is that baseline, implemented
faithfully so the Figure 4/5 comparisons (and the ablation benchmarks)
can measure it directly.

The characteristic vectors here live over the integers (entries in
``{-1, 0, +1}``): for edge ``(u, v)`` with ``u < v`` an insertion adds
``+1`` to ``f_u`` and ``-1`` to ``f_v``, so summing the node vectors of
a component cancels its internal edges -- exactly Section 2.2.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.boruvka import (
    BoruvkaStats,
    batch_sampler_from_scalar,
    sketch_spanning_forest,
    vectorized_spanning_forest,
)
from repro.core.edge_encoding import EdgeEncoder
from repro.core.node_sketch import num_boruvka_rounds
from repro.core.spanning_forest import SpanningForest
from repro.exceptions import ConfigurationError
from repro.hashing.prng import derive_seed
from repro.sketch.sketch_base import SampleResult
from repro.sketch.standard_l0 import StandardL0Sketch
from repro.types import Edge, EdgeUpdate, UpdateType, canonical_edge

_ROUND_SEED_LABEL = 0x53434343  # "SCCC"


class StreamingCC:
    """Streaming connected components over general-purpose l0-samplers.

    The public surface mirrors :class:`~repro.core.graph_zeppelin.GraphZeppelin`
    (``insert`` / ``delete`` / ``list_spanning_forest``) so benchmarks
    and tests can drive both through the same code.
    """

    def __init__(
        self,
        num_nodes: int,
        delta: float = 0.01,
        seed: int = 0,
        num_rounds: Optional[int] = None,
        query_backend: str = "vectorized",
    ) -> None:
        if num_nodes < 2:
            raise ConfigurationError("StreamingCC needs at least two nodes")
        if query_backend not in ("vectorized", "scalar"):
            raise ConfigurationError(
                f"unknown query_backend {query_backend!r} (use 'vectorized' or 'scalar')"
            )
        self.num_nodes = int(num_nodes)
        self.delta = float(delta)
        self.seed = int(seed)
        # The general-purpose sketches have no whole-round kernel, but
        # the array driver still replaces the per-merge member-list
        # concatenation with one argsort-based grouping per round.
        self.query_backend = query_backend
        self.encoder = EdgeEncoder(self.num_nodes)
        self.num_rounds = (
            int(num_rounds) if num_rounds is not None else num_boruvka_rounds(self.num_nodes)
        )
        # sketches[node][round]
        self._sketches: List[List[StandardL0Sketch]] = [
            [
                StandardL0Sketch(
                    self.encoder.vector_length,
                    delta=delta,
                    seed=derive_seed(self.seed, _ROUND_SEED_LABEL, round_index),
                )
                for round_index in range(self.num_rounds)
            ]
            for _ in range(self.num_nodes)
        ]
        self._updates_processed = 0
        self._last_query_stats: Optional[BoruvkaStats] = None

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def insert(self, u: int, v: int) -> None:
        self._apply(canonical_edge(u, v), delta=1)

    def delete(self, u: int, v: int) -> None:
        self._apply(canonical_edge(u, v), delta=-1)

    def edge_update(self, u: int, v: int, kind: UpdateType = UpdateType.INSERT) -> None:
        if kind is UpdateType.INSERT:
            self.insert(u, v)
        else:
            self.delete(u, v)

    def apply_update(self, update: EdgeUpdate) -> None:
        self.edge_update(update.u, update.v, update.kind)

    def ingest(self, updates: Iterable[EdgeUpdate]) -> int:
        count = 0
        for update in updates:
            self.apply_update(update)
            count += 1
        return count

    def _apply(self, edge: Edge, delta: int) -> None:
        u, v = edge
        index = self.encoder.encode(u, v)
        # f_u[(u, v)] = +1 and f_v[(u, v)] = -1 for the canonical u < v.
        for round_index in range(self.num_rounds):
            self._sketches[u][round_index].update(index, delta)
            self._sketches[v][round_index].update(index, -delta)
        self._updates_processed += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def list_spanning_forest(self) -> SpanningForest:
        if self.query_backend == "vectorized":
            forest, stats = vectorized_spanning_forest(
                num_nodes=self.num_nodes,
                num_rounds=self.num_rounds,
                encoder=self.encoder,
                batch_cut_sampler=batch_sampler_from_scalar(self._component_cut_sample),
                strict=False,
            )
        else:
            forest, stats = sketch_spanning_forest(
                num_nodes=self.num_nodes,
                num_rounds=self.num_rounds,
                encoder=self.encoder,
                cut_sampler=self._component_cut_sample,
                strict=False,
            )
        self._last_query_stats = stats
        return forest

    def spanning_forest(self) -> SpanningForest:
        return self.list_spanning_forest()

    def connected_components(self) -> List[Set[int]]:
        return self.list_spanning_forest().components()

    def _component_cut_sample(
        self, round_index: int, members: Sequence[int]
    ) -> SampleResult:
        merged = self._sketches[members[0]][round_index].copy()
        for node in members[1:]:
            merged.merge(self._sketches[node][round_index])
        return merged.query()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    @property
    def last_query_stats(self) -> Optional[BoruvkaStats]:
        return self._last_query_stats

    def node_sketch_bytes(self) -> int:
        """Bytes of one node's sketches under the paper's accounting."""
        return sum(sketch.size_bytes() for sketch in self._sketches[0])

    def sketch_bytes(self) -> int:
        return self.node_sketch_bytes() * self.num_nodes

    def __repr__(self) -> str:
        return (
            f"StreamingCC(num_nodes={self.num_nodes}, rounds={self.num_rounds}, "
            f"updates={self._updates_processed})"
        )
