"""Sketch-based Boruvka: recover a spanning forest from cut samplers.

The driver is written against a tiny abstraction -- a callable that,
given a Boruvka round and the member nodes of a component, returns an
l0 sample of the component's cut vector -- so the same algorithm runs
on top of GraphZeppelin's CubeSketches, the StreamingCC baseline's
general-purpose sketches, and the exact (adjacency matrix) oracle used
in tests.

Each round queries every active component once, using that round's
independent sketches; sampled edges that join two distinct components
are added to the forest and the components merged.  The loop ends when
no component yields a new edge (all remaining cuts are empty) or when
the provisioned number of rounds is exhausted, in which case the result
is flagged incomplete (the paper's asymptotically-small failure case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Set

from repro.core.dsu import DisjointSetUnion
from repro.core.edge_encoding import EdgeEncoder
from repro.core.spanning_forest import SpanningForest
from repro.exceptions import ConnectivityError
from repro.sketch.sketch_base import SampleResult
from repro.types import Edge

#: Signature of the per-component cut sampler: (round, member nodes) -> sample.
CutSampler = Callable[[int, Sequence[int]], SampleResult]


@dataclass
class BoruvkaStats:
    """Bookkeeping produced by one run of the sketch Boruvka algorithm."""

    rounds_used: int = 0
    component_queries: int = 0
    good_samples: int = 0
    zero_samples: int = 0
    failed_samples: int = 0
    invalid_samples: int = 0
    merges: int = 0
    per_round_merges: List[int] = field(default_factory=list)


def sketch_spanning_forest(
    num_nodes: int,
    num_rounds: int,
    encoder: EdgeEncoder,
    cut_sampler: CutSampler,
    strict: bool = False,
) -> tuple[SpanningForest, BoruvkaStats]:
    """Run Boruvka's algorithm over sketched cut samplers.

    Parameters
    ----------
    num_nodes:
        Number of nodes in the graph.
    num_rounds:
        Number of independent sketch rounds available.
    encoder:
        The edge-slot encoder shared by the sketches; used to decode and
        validate sampled indices.
    cut_sampler:
        ``cut_sampler(round_index, members)`` must return a
        :class:`SampleResult` for the cut between ``members`` and the
        rest of the graph, computed from the round's sketches.
    strict:
        When true, exhausting the rounds while merges were still
        happening raises :class:`ConnectivityError`; otherwise the
        partial forest is returned with ``complete=False``.
    """
    dsu = DisjointSetUnion(num_nodes)
    members: Dict[int, List[int]] = {node: [node] for node in range(num_nodes)}
    # Components whose cut has been observed empty: they can never merge
    # again and are skipped in later rounds.
    settled: Set[int] = set()
    forest_edges: List[Edge] = []
    stats = BoruvkaStats()

    found_edge = True
    round_index = 0
    while found_edge and dsu.num_components > 1:
        if round_index >= num_rounds:
            if strict:
                raise ConnectivityError(
                    f"Boruvka did not converge within {num_rounds} rounds "
                    f"({dsu.num_components} components remain)"
                )
            forest = SpanningForest.from_edges(num_nodes, forest_edges, complete=False)
            return forest, stats

        found_edge = False
        stats.rounds_used = round_index + 1
        sampled_edges: List[Edge] = []
        failures_this_round = 0

        for root in list(members.keys()):
            if root in settled:
                continue
            stats.component_queries += 1
            result = cut_sampler(round_index, members[root])
            if result.is_zero:
                stats.zero_samples += 1
                settled.add(root)
                continue
            if result.is_fail:
                stats.failed_samples += 1
                failures_this_round += 1
                continue
            stats.good_samples += 1
            assert result.index is not None
            if not encoder.is_valid_index(result.index):
                # A corrupted bucket slipped past its checksum; ignore it.
                stats.invalid_samples += 1
                continue
            sampled_edges.append(encoder.decode(result.index))

        merges_this_round = 0
        for u, v in sampled_edges:
            root_u, root_v = dsu.find(u), dsu.find(v)
            if root_u == root_v:
                continue
            dsu.union(u, v)
            # Union by size keeps one of the two old roots as the new root.
            new_root = dsu.find(u)
            old_root = root_v if new_root == root_u else root_u
            members[new_root] = members[new_root] + members.pop(old_root)
            settled.discard(new_root)
            settled.discard(old_root)
            forest_edges.append((u, v) if u < v else (v, u))
            merges_this_round += 1
            found_edge = True

        stats.merges += merges_this_round
        stats.per_round_merges.append(merges_this_round)
        # A failed sample says nothing about the cut being empty; as long as
        # unused rounds (with fresh, independent sketches) remain, retry the
        # unresolved components there instead of declaring convergence.
        if failures_this_round and not found_edge:
            found_edge = True
        round_index += 1

    forest = SpanningForest.from_edges(num_nodes, forest_edges, complete=True)
    return forest, stats
