"""Sketch-based Boruvka: recover a spanning forest from cut samplers.

The driver is written against a tiny abstraction -- a callable that,
given a Boruvka round and the member nodes of a component, returns an
l0 sample of the component's cut vector -- so the same algorithm runs
on top of GraphZeppelin's CubeSketches, the StreamingCC baseline's
general-purpose sketches, and the exact (adjacency matrix) oracle used
in tests.

Each round queries every active component once, using that round's
independent sketches; sampled edges that join two distinct components
are added to the forest and the components merged.  The loop ends when
no component yields a new edge (all remaining cuts are empty) or when
the provisioned number of rounds is exhausted, in which case the result
is flagged incomplete (the paper's asymptotically-small failure case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.dsu import DisjointSetUnion
from repro.core.edge_encoding import EdgeEncoder
from repro.core.spanning_forest import SpanningForest
from repro.exceptions import ConnectivityError
from repro.observability.metrics import default_registry
from repro.observability.tracing import span
from repro.sketch.flat_node_sketch import group_nodes_by_label
from repro.sketch.sketch_base import (
    SAMPLE_FAIL,
    SAMPLE_GOOD,
    SAMPLE_ZERO,
    SampleOutcome,
    SampleResult,
)
from repro.types import Edge

#: Signature of the per-component cut sampler: (round, member nodes) -> sample.
CutSampler = Callable[[int, Sequence[int]], SampleResult]

#: Signature of the whole-round cut sampler: (round, per-node component
#: labels, active-node mask) -> (component roots ascending, status codes,
#: sampled edge slots).  This is what the vectorized driver consumes; the
#: tensor pool implements it as one segmented XOR-reduce per round.
BatchCutSampler = Callable[
    [int, np.ndarray, Optional[np.ndarray]],
    Tuple[np.ndarray, np.ndarray, np.ndarray],
]


@dataclass
class BoruvkaStats:
    """Bookkeeping produced by one run of the sketch Boruvka algorithm."""

    rounds_used: int = 0
    component_queries: int = 0
    good_samples: int = 0
    zero_samples: int = 0
    failed_samples: int = 0
    invalid_samples: int = 0
    merges: int = 0
    per_round_merges: List[int] = field(default_factory=list)


def sketch_spanning_forest(
    num_nodes: int,
    num_rounds: int,
    encoder: EdgeEncoder,
    cut_sampler: CutSampler,
    strict: bool = False,
) -> tuple[SpanningForest, BoruvkaStats]:
    """Run Boruvka's algorithm over sketched cut samplers.

    Parameters
    ----------
    num_nodes:
        Number of nodes in the graph.
    num_rounds:
        Number of independent sketch rounds available.
    encoder:
        The edge-slot encoder shared by the sketches; used to decode and
        validate sampled indices.
    cut_sampler:
        ``cut_sampler(round_index, members)`` must return a
        :class:`SampleResult` for the cut between ``members`` and the
        rest of the graph, computed from the round's sketches.
    strict:
        When true, exhausting the rounds while merges were still
        happening raises :class:`ConnectivityError`; otherwise the
        partial forest is returned with ``complete=False``.
    """
    dsu = DisjointSetUnion(num_nodes)
    members: Dict[int, List[int]] = {node: [node] for node in range(num_nodes)}
    # Components whose cut has been observed empty: they can never merge
    # again and are skipped in later rounds.
    settled: Set[int] = set()
    forest_edges: List[Edge] = []
    stats = BoruvkaStats()

    found_edge = True
    round_index = 0
    while found_edge and dsu.num_components > 1:
        if round_index >= num_rounds:
            if strict:
                raise ConnectivityError(
                    f"Boruvka did not converge within {num_rounds} rounds "
                    f"({dsu.num_components} components remain)"
                )
            forest = SpanningForest.from_edges(num_nodes, forest_edges, complete=False)
            return forest, stats

        found_edge = False
        stats.rounds_used = round_index + 1
        sampled_edges: List[Edge] = []
        failures_this_round = 0

        for root in list(members.keys()):
            if root in settled:
                continue
            stats.component_queries += 1
            result = cut_sampler(round_index, members[root])
            if result.is_zero:
                stats.zero_samples += 1
                settled.add(root)
                continue
            if result.is_fail:
                stats.failed_samples += 1
                failures_this_round += 1
                continue
            stats.good_samples += 1
            assert result.index is not None
            if not encoder.is_valid_index(result.index):
                # A corrupted bucket slipped past its checksum; ignore it.
                stats.invalid_samples += 1
                continue
            sampled_edges.append(encoder.decode(result.index))

        merges_this_round = 0
        for u, v in sampled_edges:
            root_u, root_v = dsu.find(u), dsu.find(v)
            if root_u == root_v:
                continue
            dsu.union(u, v)
            # Union by size keeps one of the two old roots as the new root.
            new_root = dsu.find(u)
            old_root = root_v if new_root == root_u else root_u
            members[new_root] = members[new_root] + members.pop(old_root)
            settled.discard(new_root)
            settled.discard(old_root)
            forest_edges.append((u, v) if u < v else (v, u))
            merges_this_round += 1
            found_edge = True

        stats.merges += merges_this_round
        stats.per_round_merges.append(merges_this_round)
        # A failed sample says nothing about the cut being empty; as long as
        # unused rounds (with fresh, independent sketches) remain, retry the
        # unresolved components there instead of declaring convergence.
        if failures_this_round and not found_edge:
            found_edge = True
        round_index += 1

    forest = SpanningForest.from_edges(num_nodes, forest_edges, complete=True)
    return forest, stats


def batch_sampler_from_scalar(cut_sampler: CutSampler) -> BatchCutSampler:
    """Adapt a per-component :data:`CutSampler` to the batched signature.

    Groups nodes by component label with one argsort (no per-merge list
    concatenation) and calls the scalar sampler once per segment, so
    backends without a native whole-round kernel (the legacy per-node
    object stores, the StreamingCC baseline) still run under the array
    driver.  Since PR 4 the out-of-core flat engines hold a
    :class:`~repro.sketch.paged_pool.PagedTensorPool` with a native
    ``query_components``, so :func:`vectorized_spanning_forest` is the
    single driver for in-RAM and out-of-core connectivity alike and
    this adapter covers only the reference backends.
    Member lists are passed in ascending node order; every sampler in
    the tree XOR-folds or sums its members, so the order cannot change
    the sample.
    """

    def batch(
        round_index: int,
        labels: np.ndarray,
        node_mask: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        sorted_nodes, seg_starts, roots = group_nodes_by_label(
            np.asarray(labels), node_mask
        )
        if roots.size == 0:
            return roots, np.empty(0, dtype=np.uint8), roots.copy()
        seg_ends = np.append(seg_starts[1:], sorted_nodes.size)
        statuses = np.empty(roots.size, dtype=np.uint8)
        indices = np.full(roots.size, -1, dtype=np.int64)
        for position, (start, end) in enumerate(zip(seg_starts, seg_ends)):
            result = cut_sampler(round_index, sorted_nodes[start:end].tolist())
            if result.outcome is SampleOutcome.GOOD:
                statuses[position] = SAMPLE_GOOD
                indices[position] = result.index
            elif result.outcome is SampleOutcome.ZERO:
                statuses[position] = SAMPLE_ZERO
            else:
                statuses[position] = SAMPLE_FAIL
        return roots, statuses, indices

    return batch


def vectorized_spanning_forest(
    num_nodes: int,
    num_rounds: int,
    encoder: EdgeEncoder,
    batch_cut_sampler: BatchCutSampler,
    strict: bool = False,
) -> tuple[SpanningForest, BoruvkaStats]:
    """Run Boruvka's algorithm one whole round at a time.

    The array twin of :func:`sketch_spanning_forest`: component
    membership is an int64 label per node (no Python member lists, no
    O(n) concatenation per merge), every active component's cut is
    sampled by **one** ``batch_cut_sampler`` call per round, sampled
    indices are validated and decoded with vectorised
    :class:`EdgeEncoder` expressions, and the DSU is touched only for
    the at-most ``n - 1`` actual merges.  Output -- forest, stats, and
    the per-component samples behind them -- is bit-identical to the
    scalar driver under the same sketches: the scalar loop visits
    surviving components in ascending root order (dict insertion
    order), which is exactly the sorted-label order the batched
    samplers return.
    """
    # The union-find runs inline on plain lists (roughly half the cost
    # of going through DSU method calls in the merge loop); the finished
    # state is handed to the forest via DisjointSetUnion.from_arrays.
    # Skipping find()'s path compression here is semantically
    # transparent: union-by-size decisions depend only on roots and
    # sizes, and union by size keeps the trees logarithmically shallow.
    parent = list(range(num_nodes))
    size = [1] * num_nodes
    num_components = num_nodes
    labels = np.arange(num_nodes, dtype=np.int64)
    # settled[r] for a current component root r: its cut has been
    # observed empty, so it is skipped until (and unless) another
    # component's sampled edge merges into it.
    settled = np.zeros(num_nodes, dtype=bool)
    forest_edges: List[Edge] = []
    stats = BoruvkaStats()

    found_edge = True
    round_index = 0
    while found_edge and num_components > 1:
        if round_index >= num_rounds:
            if strict:
                raise ConnectivityError(
                    f"Boruvka did not converge within {num_rounds} rounds "
                    f"({num_components} components remain)"
                )
            forest = SpanningForest.from_prevalidated(
                num_nodes,
                forest_edges,
                DisjointSetUnion.from_arrays(parent, size, num_components),
                complete=False,
            )
            return forest, stats

        found_edge = False
        stats.rounds_used = round_index + 1
        registry = default_registry()
        if registry.enabled:
            registry.counter("query.rounds").inc()
        with span("query.round"):
            active = ~settled[labels]
            roots, statuses, indices = batch_cut_sampler(round_index, labels, active)
            stats.component_queries += int(roots.size)

            zero_mask = statuses == SAMPLE_ZERO
            settled[roots[zero_mask]] = True
            stats.zero_samples += int(np.count_nonzero(zero_mask))
            failures_this_round = int(np.count_nonzero(statuses == SAMPLE_FAIL))
            stats.failed_samples += failures_this_round

            good_mask = statuses == SAMPLE_GOOD
            stats.good_samples += int(np.count_nonzero(good_mask))
            good_indices = indices[good_mask]
            valid = encoder.valid_index_mask(good_indices)
            # Corrupted buckets that slipped past their checksums; ignore them.
            stats.invalid_samples += int(good_indices.size - np.count_nonzero(valid))
            good_indices = good_indices[valid]
            # Sampled edges the scalar merge loop would skip without touching
            # anything are dropped vectorised before the Python loop: an edge
            # inside one pre-round component (its endpoints' roots already
            # match), and re-occurrences of an edge two components sampled
            # from both sides (the first union makes the second a no-op, and
            # if the first is skipped so is the second).
            sampled_u, sampled_v = encoder.decode_endpoints(good_indices)
            crossing = labels[sampled_u] != labels[sampled_v]
            good_indices = good_indices[crossing]
            _, first_occurrence = np.unique(good_indices, return_index=True)
            keep = np.sort(first_occurrence)
            sampled_u = sampled_u[crossing][keep]
            sampled_v = sampled_v[crossing][keep]

            with span("query.unionfind"):
                merges_this_round = 0
                changed_roots: List[int] = []
                for u, v in zip(sampled_u.tolist(), sampled_v.tolist()):
                    root_u = u
                    while parent[root_u] != root_u:
                        root_u = parent[root_u]
                    root_v = v
                    while parent[root_v] != root_v:
                        root_v = parent[root_v]
                    if root_u == root_v:
                        continue
                    if size[root_u] < size[root_v]:
                        root_u, root_v = root_v, root_u
                    parent[root_v] = root_u
                    size[root_u] += size[root_v]
                    num_components -= 1
                    settled[root_u] = False
                    settled[root_v] = False
                    changed_roots.append(root_u)
                    changed_roots.append(root_v)
                    # Valid slots decode to canonical u < v, so the edge is
                    # already in forest orientation.
                    forest_edges.append((u, v))
                    merges_this_round += 1
                    found_edge = True

                if merges_this_round > num_nodes // 64:
                    # Mass-merge round: re-derive every node's root in a few
                    # whole-array gathers by chasing the parent array to its
                    # fixed point (union by size keeps the trees a handful of
                    # levels deep).
                    parent_array = np.asarray(parent, dtype=np.int64)
                    labels = parent_array[labels]
                    chased = parent_array[labels]
                    while not np.array_equal(chased, labels):
                        labels = chased
                        chased = parent_array[labels]
                elif merges_this_round:
                    # Few merges: patch only the roots that took part in a
                    # union instead of converting the whole parent list.
                    relabel = np.arange(num_nodes, dtype=np.int64)
                    for old_root in changed_roots:
                        new_root = old_root
                        while parent[new_root] != new_root:
                            new_root = parent[new_root]
                        relabel[old_root] = new_root
                    labels = relabel[labels]

        stats.merges += merges_this_round
        stats.per_round_merges.append(merges_this_round)
        # A failed sample says nothing about the cut being empty; as long as
        # unused rounds (with fresh, independent sketches) remain, retry the
        # unresolved components there instead of declaring convergence.
        if failures_this_round and not found_edge:
            found_edge = True
        round_index += 1

    forest = SpanningForest.from_prevalidated(
        num_nodes,
        forest_edges,
        DisjointSetUnion.from_arrays(parent, size, num_components),
        complete=True,
    )
    return forest, stats
