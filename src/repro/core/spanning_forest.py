"""The result type returned by connectivity queries.

Problem 1 of the paper asks for an insert-only edge stream defining a
spanning forest of the streamed graph; :class:`SpanningForest` is that
edge set plus convenience views (component partition, connectivity
predicate) derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence, Set, Tuple

from repro.core.dsu import DisjointSetUnion
from repro.types import Edge


@dataclass(frozen=True)
class SpanningForest:
    """A spanning forest of a graph over ``num_nodes`` nodes.

    Attributes
    ----------
    num_nodes:
        Number of nodes in the underlying graph.
    edges:
        The forest edges (canonical orientation, no duplicates).
    complete:
        ``False`` when the sketch algorithm exhausted its Boruvka rounds
        before merging stopped (probability polynomially small); in that
        case the forest may be missing edges and the component partition
        is an over-refinement of the true one.
    """

    num_nodes: int
    edges: Tuple[Edge, ...]
    complete: bool = True
    _dsu: DisjointSetUnion = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        dsu = DisjointSetUnion(self.num_nodes)
        for u, v in self.edges:
            dsu.union(u, v)
        object.__setattr__(self, "_dsu", dsu)
        if len(self.edges) != self.num_nodes - dsu.num_components:
            raise ValueError(
                "edge set contains a cycle or duplicate edges: "
                f"{len(self.edges)} edges for {self.num_nodes - dsu.num_components} merges"
            )

    @classmethod
    def from_prevalidated(
        cls,
        num_nodes: int,
        edges: Sequence[Edge],
        dsu: DisjointSetUnion,
        complete: bool = True,
    ) -> "SpanningForest":
        """Adopt an already-built union-find instead of replaying the edges.

        The vectorized Boruvka driver maintains a DSU whose unions are
        exactly the forest edges, so re-running them in
        ``__post_init__`` (one Python union per edge) would only redo
        work.  The caller guarantees ``edges`` are canonical, unique and
        acyclic, and that ``dsu`` reflects precisely those unions;
        nothing is re-checked here.
        """
        forest = object.__new__(cls)
        object.__setattr__(forest, "num_nodes", int(num_nodes))
        object.__setattr__(forest, "edges", tuple(edges))
        object.__setattr__(forest, "complete", bool(complete))
        object.__setattr__(forest, "_dsu", dsu)
        return forest

    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: Sequence[Edge], complete: bool = True
    ) -> "SpanningForest":
        """Build a forest, deduplicating and canonicalising edge tuples."""
        canonical = []
        seen = set()
        for u, v in edges:
            edge = (u, v) if u < v else (v, u)
            if edge not in seen:
                seen.add(edge)
                canonical.append(edge)
        return cls(num_nodes=num_nodes, edges=tuple(canonical), complete=complete)

    # ------------------------------------------------------------------
    @property
    def num_components(self) -> int:
        return self._dsu.num_components

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def connected(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are in the same component of the forest."""
        return self._dsu.connected(u, v)

    def components(self) -> List[Set[int]]:
        """The node partition as a list of sets (sorted by minimum node)."""
        return self._dsu.components()

    def component_of(self, node: int) -> FrozenSet[int]:
        """The component containing ``node``."""
        root = self._dsu.find(node)
        return frozenset(
            other for other in range(self.num_nodes) if self._dsu.find(other) == root
        )

    def component_labels(self) -> List[int]:
        return self._dsu.component_labels()

    def partition_signature(self) -> FrozenSet[FrozenSet[int]]:
        """A hashable form of the partition, convenient for comparisons."""
        return frozenset(frozenset(component) for component in self.components())

    def __iter__(self):
        return iter(self.edges)

    def __len__(self) -> int:
        return len(self.edges)
