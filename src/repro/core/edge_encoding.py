"""Mapping between graph edges and characteristic-vector indices.

Every node's characteristic vector is indexed by the set of possible
edges of the graph (Section 2.2).  All node sketches of one
GraphZeppelin instance must agree on this indexing, otherwise the XOR
of two node sketches would not cancel their shared edge.

The encoding used here is ``index(u, v) = u * V + v`` for the canonical
(``u < v``) orientation of the edge.  It wastes a factor of ~2 of the
index space compared to a triangular encoding, which costs exactly one
extra bucket row per sketch (the row count is logarithmic in the vector
length) but makes decoding a division and a modulo -- cheap and hard to
get wrong, and the recovered index can be validated (``u < v < V``)
before it is trusted, which the query path relies on to reject
corrupted buckets.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import Edge


class EdgeEncoder:
    """Encode edges of a ``num_nodes``-node graph as vector indices."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ConfigurationError("a graph needs at least two nodes")
        self.num_nodes = int(num_nodes)

    @property
    def vector_length(self) -> int:
        """Length of the characteristic vectors (the edge-slot universe)."""
        return self.num_nodes * self.num_nodes

    def encode(self, u: int, v: int) -> int:
        """Vector index of edge ``{u, v}`` (order-insensitive)."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError(f"self loop ({u}, {v}) has no edge slot")
        lo, hi = (u, v) if u < v else (v, u)
        return lo * self.num_nodes + hi

    def decode(self, index: int) -> Edge:
        """Edge for a vector index; raises ``ValueError`` if invalid.

        The validity check (``u < v < V``) is what lets the connectivity
        algorithm reject samples from corrupted sketch buckets.
        """
        if not 0 <= index < self.vector_length:
            raise ValueError(f"index {index} outside edge-slot universe")
        u, v = divmod(index, self.num_nodes)
        if not u < v:
            raise ValueError(f"index {index} does not decode to a canonical edge")
        return (u, v)

    def is_valid_index(self, index: int) -> bool:
        """Whether ``index`` decodes to a legal edge slot."""
        if not 0 <= index < self.vector_length:
            return False
        u, v = divmod(index, self.num_nodes)
        return u < v

    def encode_batch(self, node: int, neighbors: Iterable[int]) -> np.ndarray:
        """Vectorised encoding of edges ``{node, w}`` for a batch of ``w``.

        This is the hot path of batched ingestion: a Graph Worker takes a
        batch of neighbors destined for one node sketch and converts them
        to vector indices in one numpy expression.
        """
        self._check_node(node)
        others = np.asarray(
            neighbors if isinstance(neighbors, np.ndarray) else list(neighbors),
            dtype=np.int64,
        )
        if others.size == 0:
            return np.empty(0, dtype=np.uint64)
        if ((others < 0) | (others >= self.num_nodes) | (others == node)).any():
            raise ValueError("batch contains an endpoint outside the graph or a self loop")
        lo = np.minimum(others, node).astype(np.uint64)
        hi = np.maximum(others, node).astype(np.uint64)
        return lo * np.uint64(self.num_nodes) + hi

    def encode_canonical_pairs(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Vectorised encoding of pre-validated canonical edge pairs.

        Inputs must satisfy ``0 <= lo < hi < num_nodes`` elementwise; the
        columnar ingest path validates and canonicalises its whole edge
        array first and then encodes with this single expression.
        Keeping it here (rather than inlining ``lo * V + hi`` at call
        sites) means the index layout has one owner.
        """
        return lo.astype(np.uint64) * np.uint64(self.num_nodes) + hi.astype(np.uint64)

    def decode_batch(self, indices: np.ndarray) -> List[Edge]:
        """Decode an array of indices (all must be valid)."""
        return [self.decode(int(index)) for index in np.asarray(indices).ravel()]

    def valid_index_mask(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`is_valid_index` over an index array.

        The whole-round query engine validates every component's sample
        in one expression instead of one Python call per component.
        """
        idx = np.asarray(indices, dtype=np.int64)
        u = idx // np.int64(self.num_nodes)
        v = idx - u * np.int64(self.num_nodes)
        return (idx >= 0) & (idx < self.vector_length) & (u < v)

    def decode_endpoints(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised decode of pre-validated indices to ``(u, v)`` arrays.

        Callers must filter with :meth:`valid_index_mask` first; invalid
        indices decode to garbage endpoints here (no per-element checks,
        this is the batched hot path).
        """
        idx = np.asarray(indices, dtype=np.int64)
        return np.divmod(idx, np.int64(self.num_nodes))

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")

    def __repr__(self) -> str:
        return f"EdgeEncoder(num_nodes={self.num_nodes})"
