"""Disjoint set union (union-find) with path compression and union by size.

Boruvka's algorithm (both the sketch version and the exact baselines)
tracks which nodes have already been merged into the same connected
component; the DSU answers that in effectively-constant amortised time
per operation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Set


class DisjointSetUnion:
    """Union-find over the node ids ``0 .. num_nodes - 1``."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self.num_nodes = int(num_nodes)
        self._parent = list(range(num_nodes))
        self._size = [1] * num_nodes
        self._num_components = num_nodes

    @classmethod
    def from_arrays(
        cls, parent: List[int], size: List[int], num_components: int
    ) -> "DisjointSetUnion":
        """Adopt parent/size state built elsewhere (no copies, no checks).

        The vectorized Boruvka driver runs its union-find inline on
        plain lists for speed and hands the finished state over through
        this constructor; the caller guarantees the arrays form a valid
        union-by-size forest with ``num_components`` roots.
        """
        dsu = cls(0)
        dsu.num_nodes = len(parent)
        dsu._parent = parent
        dsu._size = size
        dsu._num_components = int(num_components)
        return dsu

    # ------------------------------------------------------------------
    def find(self, node: int) -> int:
        """Representative of ``node``'s component (with path compression)."""
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``.

        Returns ``True`` when a merge happened, ``False`` when the two
        nodes were already in the same component.
        """
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._num_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    # ------------------------------------------------------------------
    @property
    def num_components(self) -> int:
        return self._num_components

    def component_size(self, node: int) -> int:
        return self._size[self.find(node)]

    def roots(self) -> List[int]:
        """All current component representatives."""
        return [node for node in range(self.num_nodes) if self.find(node) == node]

    def components(self) -> List[Set[int]]:
        """The full partition as a list of node sets (sorted by minimum node)."""
        groups: Dict[int, Set[int]] = defaultdict(set)
        for node in range(self.num_nodes):
            groups[self.find(node)].add(node)
        return sorted(groups.values(), key=min)

    def component_labels(self) -> List[int]:
        """A label per node; two nodes share a label iff connected."""
        return [self.find(node) for node in range(self.num_nodes)]

    def add_edges(self, edges: Iterable[tuple]) -> None:
        """Union across an iterable of ``(u, v)`` pairs."""
        for u, v in edges:
            self.union(u, v)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return f"DisjointSetUnion(num_nodes={self.num_nodes}, components={self._num_components})"
