"""Node sketches: one bundle of CubeSketches per graph node.

Each node ``u`` keeps ``ceil(log2 V)`` independent CubeSketches of its
characteristic vector, one for every potential round of Boruvka's
algorithm (the per-round independence is what makes the adaptive
merging sound -- footnote 1 of the paper).  All nodes share the same
hash functions *per round*, which is what makes node sketches of
different nodes addable: XOR-ing the round-``r`` sketches of ``u`` and
``v`` yields the round-``r`` sketch of the symmetric difference of
their edge sets, i.e. the edges crossing the cut ``{u, v}`` vs the rest
of the graph.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.edge_encoding import EdgeEncoder
from repro.exceptions import ConfigurationError, IncompatibleSketchError
from repro.hashing.prng import derive_seed
from repro.sketch.cubesketch import CubeSketch
from repro.sketch.serialization import cubesketch_from_bytes, cubesketch_to_bytes
from repro.sketch.sketch_base import SampleResult

#: Label used when deriving the per-round sketch seeds from the graph seed.
_ROUND_SEED_LABEL = 0x524F554E  # "ROUN"


def num_boruvka_rounds(num_nodes: int) -> int:
    """Number of sketch rounds a graph on ``num_nodes`` nodes needs."""
    if num_nodes < 2:
        raise ConfigurationError("a graph needs at least two nodes")
    return max(1, math.ceil(math.log2(num_nodes)))


def round_seed(graph_seed: int, round_index: int) -> int:
    """The shared hash seed of every node's round-``round_index`` sketch."""
    return derive_seed(graph_seed, _ROUND_SEED_LABEL, round_index)


class NodeSketch:
    """The sketch bundle of a single graph node (a "supernode").

    Parameters
    ----------
    node:
        The node id this sketch belongs to (kept for bookkeeping; the
        sketch contents do not depend on it).
    encoder:
        The shared edge-slot encoder of the graph.
    graph_seed:
        Root seed of the owning GraphZeppelin instance.
    delta:
        Per-round sketch failure probability.
    num_rounds:
        Number of Boruvka rounds to provision (defaults to
        ``ceil(log2 V)``).
    """

    def __init__(
        self,
        node: int,
        encoder: EdgeEncoder,
        graph_seed: int = 0,
        delta: float = 0.01,
        num_rounds: int | None = None,
    ) -> None:
        self.node = int(node)
        self.encoder = encoder
        self.graph_seed = int(graph_seed)
        self.delta = float(delta)
        self.num_rounds = (
            int(num_rounds) if num_rounds is not None else num_boruvka_rounds(encoder.num_nodes)
        )
        self.sketches: List[CubeSketch] = [
            CubeSketch(
                encoder.vector_length,
                delta=delta,
                seed=round_seed(self.graph_seed, round_index),
            )
            for round_index in range(self.num_rounds)
        ]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def apply_edge(self, other_endpoint: int) -> None:
        """Toggle the edge ``{self.node, other_endpoint}`` in every round."""
        index = self.encoder.encode(self.node, other_endpoint)
        for sketch in self.sketches:
            sketch.update(index)

    def apply_batch(self, neighbors: Iterable[int]) -> None:
        """Toggle a batch of edges ``{self.node, w}`` in every round.

        This is ``update_sketch_batch`` from Figure 8: the batch is
        encoded once and then folded into each round's CubeSketch with
        the vectorised batch update.
        """
        indices = self.encoder.encode_batch(self.node, neighbors)
        if indices.size == 0:
            return
        for sketch in self.sketches:
            sketch.update_batch(indices)

    # ------------------------------------------------------------------
    # queries and merging
    # ------------------------------------------------------------------
    def query_round(self, round_index: int) -> SampleResult:
        """Query the sketch reserved for Boruvka round ``round_index``."""
        return self.sketches[round_index].query()

    def round_sketch(self, round_index: int) -> CubeSketch:
        return self.sketches[round_index]

    def merge(self, other: "NodeSketch") -> None:
        """Fold another node's sketches into this one (supernode merge)."""
        if not self.is_compatible(other):
            raise IncompatibleSketchError(
                "node sketches from different graphs/seeds cannot be merged"
            )
        for mine, theirs in zip(self.sketches, other.sketches):
            mine.merge(theirs)

    def is_compatible(self, other: "NodeSketch") -> bool:
        return (
            isinstance(other, NodeSketch)
            and other.encoder.num_nodes == self.encoder.num_nodes
            and other.num_rounds == self.num_rounds
            and other.graph_seed == self.graph_seed
        )

    def copy(self) -> "NodeSketch":
        clone = NodeSketch.__new__(NodeSketch)
        clone.node = self.node
        clone.encoder = self.encoder
        clone.graph_seed = self.graph_seed
        clone.delta = self.delta
        clone.num_rounds = self.num_rounds
        clone.sketches = [sketch.copy() for sketch in self.sketches]
        return clone

    # ------------------------------------------------------------------
    # accounting and serialisation
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Total payload bytes across all rounds (paper's accounting)."""
        return sum(sketch.size_bytes() for sketch in self.sketches)

    def is_empty(self) -> bool:
        return all(sketch.is_empty() for sketch in self.sketches)

    def to_bytes(self) -> bytes:
        """Serialise all rounds into one blob (node-group disk layout)."""
        parts = [len(self.sketches).to_bytes(4, "little"), self.node.to_bytes(8, "little")]
        for sketch in self.sketches:
            payload = cubesketch_to_bytes(sketch)
            parts.append(len(payload).to_bytes(4, "little"))
            parts.append(payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(
        cls,
        payload: bytes,
        encoder: EdgeEncoder,
        graph_seed: int,
        delta: float = 0.01,
    ) -> "NodeSketch":
        """Reconstruct a node sketch serialised with :meth:`to_bytes`."""
        num_rounds = int.from_bytes(payload[0:4], "little")
        node = int.from_bytes(payload[4:12], "little")
        offset = 12
        sketches = []
        for _ in range(num_rounds):
            length = int.from_bytes(payload[offset : offset + 4], "little")
            offset += 4
            sketches.append(cubesketch_from_bytes(payload[offset : offset + length], delta=delta))
            offset += length
        instance = cls.__new__(cls)
        instance.node = node
        instance.encoder = encoder
        instance.graph_seed = graph_seed
        instance.delta = delta
        instance.num_rounds = num_rounds
        instance.sketches = sketches
        return instance

    def __repr__(self) -> str:
        return (
            f"NodeSketch(node={self.node}, rounds={self.num_rounds}, "
            f"bytes={self.size_bytes()})"
        )


def merged_round_sketch(
    node_sketches: Sequence[NodeSketch], round_index: int
) -> CubeSketch:
    """The XOR of the round-``round_index`` sketches of several nodes.

    Used by the Boruvka driver to build a component's cut sketch without
    mutating the per-node sketches (so the stream can continue after a
    query).  This is the inner loop of every Boruvka query, so instead
    of the old copy-then-merge chain (one full bucket-array copy plus
    one XOR pass per member), the members' raw arrays are stacked and
    XOR-reduced in a single numpy reduction.
    """
    if not node_sketches:
        raise ValueError("merged_round_sketch requires at least one node sketch")
    round_sketches = [ns.round_sketch(round_index) for ns in node_sketches]
    first = round_sketches[0]
    if len(round_sketches) == 1:
        return first.copy()
    for sketch in round_sketches[1:]:
        if not first.is_compatible(sketch):
            raise IncompatibleSketchError(
                "cannot merge CubeSketches with different shapes or seeds"
            )
    total = CubeSketch(
        first.vector_length,
        delta=first.delta,
        seed=first.seed,
        num_columns=first.num_columns,
        num_rows=first.num_rows,
    )
    alpha, gamma = zip(*(sketch.raw_arrays() for sketch in round_sketches))
    # The reduce outputs are fresh arrays, so they become the merged
    # sketch's buckets directly -- no per-member or per-array copies.
    total._alpha = np.bitwise_xor.reduce(np.stack(alpha))
    total._gamma = np.bitwise_xor.reduce(np.stack(gamma))
    total._updates_applied = sum(sketch.updates_applied for sketch in round_sketches)
    return total
