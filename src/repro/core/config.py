"""Configuration for a GraphZeppelin instance."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ConfigurationError


class BufferingMode(enum.Enum):
    """Which buffering structure the engine uses for stream ingestion."""

    #: Apply every update to the node sketches immediately (no buffering).
    NONE = "none"
    #: One gutter per node, kept in RAM (paper's default when M > V*B).
    LEAF_GUTTERS = "leaf_gutters"
    #: Full gutter tree, for when even the gutters do not fit in RAM.
    GUTTER_TREE = "gutter_tree"


@dataclass
class GraphZeppelinConfig:
    """Tunable parameters of the GraphZeppelin engine.

    Attributes
    ----------
    delta:
        Per-CubeSketch failure probability (paper default 1/100).
    buffering:
        Buffering structure used during ingestion.
    gutter_fraction:
        Leaf gutter capacity as a fraction of the node-sketch size
        (Figure 15 sweeps this value; the paper default is 0.5).
    ram_budget_bytes:
        RAM available for node sketches.  ``None`` keeps everything in
        RAM; a finite budget routes sketches through the hybrid memory
        substrate so the run pays modelled SSD I/O.
    out_of_core_pool:
        Which out-of-core sketch store a RAM-budgeted flat engine uses:
        ``"paged"`` (default) is the
        :class:`~repro.sketch.paged_pool.PagedTensorPool` -- node-group
        pages, columnar page folds, whole-round queries;
        ``"per_node"`` is the seed design's per-node blob store
        (:class:`~repro.memory.hybrid.SketchStore` of serialised
        :class:`~repro.sketch.flat_node_sketch.FlatNodeSketch`), kept
        as the reference/baseline.  Ignored when everything fits in RAM
        or under the legacy sketch backend.
    nodes_per_page:
        Page granularity of the paged out-of-core pool (nodes per
        node-group page).  ``None`` (default) sizes pages to a whole
        number of device blocks targeting
        :data:`~repro.sketch.paged_pool.DEFAULT_PAGE_TARGET_BLOCKS`.
    num_workers:
        Workers used by the parallel ingestion path (the
        single-threaded engine ignores this except for work-queue sizing).
    parallel_backend:
        Execution backend of the sharded parallel ingest layer:
        ``"threads"`` (default; numpy releases the GIL inside the fold
        kernels, so a thread pool over disjoint shard slabs scales),
        ``"processes"`` (pool tensors in shared memory, worker
        processes attach by name and fold in place), or ``"legacy"``
        (the seed design: per-node batches through per-node locks,
        kept as the reference backend).
    num_shards:
        Node-range count of the sharded parallel ingest layer.  ``None``
        (default) picks the smallest count that keeps every shard inside
        the fold kernel's int16 radix fast path, rounded up to a
        multiple of ``num_workers``.
    validate_stream:
        When true, the engine tracks the exact current edge set and
        rejects illegal updates (inserting a present edge / deleting an
        absent one).  Costs O(E) memory, so it is off by default and
        meant for tests and small streams.
    strict_queries:
        When true, a connectivity query that exhausts its Boruvka rounds
        raises :class:`~repro.exceptions.ConnectivityError`; otherwise
        the partial forest is returned with ``complete=False``.
    seed:
        Root seed from which every hash function is derived.
    sketch_backend:
        ``"flat"`` (default) stores node sketches as contiguous tensors
        -- one :class:`~repro.sketch.tensor_pool.NodeTensorPool` for the
        whole graph when everything fits in RAM, per-node
        :class:`~repro.sketch.flat_node_sketch.FlatNodeSketch` blobs
        when a RAM budget forces sketches through the hybrid memory.
        ``"legacy"`` keeps the original per-round CubeSketch bundles;
        both backends are bit-identical under the same seed (the
        property tests assert this), so legacy exists for comparison
        benchmarks and as the reference implementation.
    io_retry_attempts:
        Total tries for each hybrid-memory device read/write before the
        ``OSError`` surfaces (1 = no retry, the default).  Transient
        device failures -- the kind the fault-injection tests replay --
        are absorbed by retries; persistent ones still raise.
    io_retry_backoff_seconds:
        Base backoff between device-call retries (doubles per retry).
    io_deadline_seconds:
        Per-operation deadline on hybrid-memory device calls: a call
        that runs longer is turned into a
        :class:`~repro.exceptions.DeadlineExceededError` (a
        ``TimeoutError``, hence retried like any transient ``OSError``).
        ``None`` (default) disables the deadline.
    io_breaker_threshold:
        Consecutive *exhausted* device operations (whole retry budget
        failed) after which the engine's circuit breaker opens and
        device calls are rejected with
        :class:`~repro.exceptions.CircuitOpenError` instead of burning
        retries against a dead device.  ``None`` (default) disables the
        breaker.
    io_breaker_reset_seconds:
        How long an open breaker rejects before admitting a half-open
        probe call.
    query_backend:
        ``"vectorized"`` (default) runs connectivity queries through the
        whole-round Boruvka driver: one segmented XOR-reduce plus one
        batched bucket decode per round instead of one Python query per
        component.  ``"scalar"`` keeps the per-component loop, the
        bit-identical reference (the property tests assert both return
        the same forest, stats, and samples under the same seed).
    kernel_backend:
        Which implementation of the three hot kernels (ingest fold,
        whole-round segmented XOR, batched bucket decode) the engine
        runs: ``"numpy"`` (default) uses the pure-numpy kernels,
        ``"native"`` requires a compiled provider (numba via
        ``pip install .[native]``, or the runtime-compiled C library)
        and raises when none is usable, ``"auto"`` prefers a compiled
        provider and falls back to numpy silently.  Every provider is
        property-tested bit-identical to numpy under the same seed, so
        this field deliberately stays **out** of
        :meth:`sketch_fingerprint` -- snapshots interchange freely
        across kernel backends.
    """

    delta: float = 0.01
    buffering: BufferingMode = BufferingMode.LEAF_GUTTERS
    gutter_fraction: float = 0.5
    ram_budget_bytes: Optional[int] = None
    out_of_core_pool: str = "paged"
    nodes_per_page: Optional[int] = None
    num_workers: int = 1
    parallel_backend: str = "threads"
    num_shards: Optional[int] = None
    validate_stream: bool = False
    strict_queries: bool = False
    seed: int = 0
    sketch_backend: str = "flat"
    query_backend: str = "vectorized"
    kernel_backend: str = "numpy"
    io_retry_attempts: int = 1
    io_retry_backoff_seconds: float = 0.01
    io_deadline_seconds: Optional[float] = None
    io_breaker_threshold: Optional[int] = None
    io_breaker_reset_seconds: float = 0.25

    def __post_init__(self) -> None:
        if not 0 < self.delta < 1:
            raise ConfigurationError("delta must be in (0, 1)")
        if self.sketch_backend not in ("flat", "legacy"):
            raise ConfigurationError(
                f"unknown sketch_backend {self.sketch_backend!r} (use 'flat' or 'legacy')"
            )
        if self.query_backend not in ("vectorized", "scalar"):
            raise ConfigurationError(
                f"unknown query_backend {self.query_backend!r} "
                "(use 'vectorized' or 'scalar')"
            )
        if self.kernel_backend not in ("numpy", "native", "auto"):
            raise ConfigurationError(
                f"unknown kernel_backend {self.kernel_backend!r} "
                "(use 'numpy', 'native', or 'auto')"
            )
        if self.gutter_fraction <= 0:
            raise ConfigurationError("gutter_fraction must be positive")
        if self.num_workers < 1:
            raise ConfigurationError("num_workers must be at least 1")
        if self.parallel_backend not in ("threads", "processes", "legacy"):
            raise ConfigurationError(
                f"unknown parallel_backend {self.parallel_backend!r} "
                "(use 'threads', 'processes', or 'legacy')"
            )
        if self.num_shards is not None and self.num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1 or None")
        if self.ram_budget_bytes is not None and self.ram_budget_bytes < 0:
            raise ConfigurationError("ram_budget_bytes must be non-negative or None")
        if self.out_of_core_pool not in ("paged", "per_node"):
            raise ConfigurationError(
                f"unknown out_of_core_pool {self.out_of_core_pool!r} "
                "(use 'paged' or 'per_node')"
            )
        if self.nodes_per_page is not None and self.nodes_per_page < 1:
            raise ConfigurationError("nodes_per_page must be at least 1 or None")
        if self.io_retry_attempts < 1:
            raise ConfigurationError("io_retry_attempts must be at least 1")
        if self.io_retry_backoff_seconds < 0:
            raise ConfigurationError("io_retry_backoff_seconds must be non-negative")
        if self.io_deadline_seconds is not None and self.io_deadline_seconds <= 0:
            raise ConfigurationError("io_deadline_seconds must be positive or None")
        if self.io_breaker_threshold is not None and self.io_breaker_threshold < 1:
            raise ConfigurationError("io_breaker_threshold must be at least 1 or None")
        if self.io_breaker_reset_seconds <= 0:
            raise ConfigurationError("io_breaker_reset_seconds must be positive")
        if isinstance(self.buffering, str):
            self.buffering = BufferingMode(self.buffering)

    def sketch_fingerprint(self) -> int:
        """A 64-bit digest of every field that shapes sketch *state*.

        Two engines whose configs share this fingerprint build
        bit-identical sketch state from the same update stream: the
        hash functions (``seed``), the geometry (``delta``), and the
        bucket layout family (``sketch_backend``) all enter the digest,
        while fields that only change *how* the state is computed
        (buffering, RAM budget, workers, page size) deliberately do
        not -- a snapshot written by an in-RAM engine must load into an
        out-of-core one.  Snapshots store the fingerprint and refuse to
        load under a config that would silently misinterpret the
        buckets.
        """
        from repro.hashing.xxhash64 import xxhash64

        # The seed enters masked to 64 bits: hash derivation is
        # mod-2^64 invariant (property-checked in the snapshot tests)
        # and snapshot headers store the masked seed, so a checkpoint
        # written under seed=-1 must fingerprint-match the config
        # rebuilt from its header.
        masked_seed = self.seed & 0xFFFFFFFFFFFFFFFF
        blob = f"{self.delta!r}|{masked_seed}|{self.sketch_backend}".encode("ascii")
        return xxhash64(blob, seed=0x5A45_5050)

    @classmethod
    def in_memory(cls, **overrides) -> "GraphZeppelinConfig":
        """Everything-in-RAM configuration (the Figure 13 setting)."""
        return cls(**overrides)

    @classmethod
    def out_of_core(
        cls, ram_budget_bytes: int, use_gutter_tree: bool = False, **overrides
    ) -> "GraphZeppelinConfig":
        """A configuration with a RAM budget, spilling sketches to SSD."""
        buffering = BufferingMode.GUTTER_TREE if use_gutter_tree else BufferingMode.LEAF_GUTTERS
        return cls(ram_budget_bytes=ram_budget_bytes, buffering=buffering, **overrides)

    @classmethod
    def unbuffered(cls, **overrides) -> "GraphZeppelinConfig":
        """No buffering at all (the f = "1 update" point of Figure 15)."""
        return cls(buffering=BufferingMode.NONE, **overrides)
