"""GraphZeppelin core: sketch-based streaming connected components.

The central class is :class:`repro.core.graph_zeppelin.GraphZeppelin`,
whose public API mirrors the paper's system description (Section 5):

* ``edge_update(u, v)`` / ``insert(u, v)`` / ``delete(u, v)`` ingest
  stream updates,
* ``list_spanning_forest()`` flushes the buffers and runs the
  sketch-based Boruvka algorithm,
* ``connected_components()`` returns the node partition implied by the
  spanning forest.

Supporting pieces: per-node sketches (:mod:`node_sketch`), the edge-slot
encoding shared by every node sketch (:mod:`edge_encoding`), a disjoint
set union (:mod:`dsu`), the Boruvka driver (:mod:`boruvka`), and the
StreamingCC baseline built on the general-purpose l0-sampler
(:mod:`streaming_cc`).
"""

from repro.core.config import GraphZeppelinConfig
from repro.core.dsu import DisjointSetUnion
from repro.core.edge_encoding import EdgeEncoder
from repro.core.graph_zeppelin import GraphZeppelin
from repro.core.node_sketch import NodeSketch
from repro.core.spanning_forest import SpanningForest
from repro.core.streaming_cc import StreamingCC

__all__ = [
    "DisjointSetUnion",
    "EdgeEncoder",
    "GraphZeppelin",
    "GraphZeppelinConfig",
    "NodeSketch",
    "SpanningForest",
    "StreamingCC",
]
