"""Shared lightweight value types used across the package.

These types intentionally stay close to the paper's vocabulary:

* an *edge* is an unordered pair of node identifiers,
* a *stream update* is an edge plus an insert/delete flag,
* a *node id* is a non-negative integer smaller than the declared number
  of nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

NodeId = int
Edge = Tuple[int, int]


class UpdateType(enum.IntEnum):
    """Whether a stream update inserts or deletes its edge."""

    INSERT = 1
    DELETE = -1

    @property
    def delta(self) -> int:
        """The +1 / -1 delta used by the characteristic-vector formulation."""
        return int(self.value)


@dataclass(frozen=True, slots=True)
class EdgeUpdate:
    """A single dynamic-graph stream update ``((u, v), delta)``.

    The endpoints are stored in canonical order (``u < v``); construction
    normalises them.  Self loops are rejected because the streaming model
    only defines simple graphs.
    """

    u: int
    v: int
    kind: UpdateType = UpdateType.INSERT

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self loop ({self.u}, {self.v}) is not a valid update")
        if self.u < 0 or self.v < 0:
            raise ValueError(f"negative node id in update ({self.u}, {self.v})")
        if self.u > self.v:
            lo, hi = self.v, self.u
            object.__setattr__(self, "u", lo)
            object.__setattr__(self, "v", hi)

    @property
    def edge(self) -> Edge:
        """The canonical ``(min, max)`` endpoint pair."""
        return (self.u, self.v)

    @property
    def is_insert(self) -> bool:
        return self.kind is UpdateType.INSERT

    @property
    def is_delete(self) -> bool:
        return self.kind is UpdateType.DELETE

    def inverted(self) -> "EdgeUpdate":
        """The update that undoes this one (insert <-> delete)."""
        other = UpdateType.DELETE if self.is_insert else UpdateType.INSERT
        return EdgeUpdate(self.u, self.v, other)


def canonical_edge(u: int, v: int) -> Edge:
    """Return ``(u, v)`` with endpoints sorted; reject self loops.

    >>> canonical_edge(5, 2)
    (2, 5)
    """
    if u == v:
        raise ValueError(f"self loop ({u}, {v}) is not a valid edge")
    if u < 0 or v < 0:
        raise ValueError(f"negative node id in edge ({u}, {v})")
    return (u, v) if u < v else (v, u)


def iter_edges(pairs: Iterable[Tuple[int, int]]) -> Iterator[Edge]:
    """Yield canonicalised edges from an iterable of endpoint pairs."""
    for u, v in pairs:
        yield canonical_edge(u, v)
