"""Read-repair: heal corrupt spilled pages from a checkpoint + replay.

The scrub layer (:meth:`~repro.core.graph_zeppelin.GraphZeppelin.scrub_storage`)
only *detects* silent corruption -- a spilled page whose stored bytes no
longer match their checksums.  This module *heals* it, exploiting the
same linearity that powers snapshots and distributed merges: a node's
sketch state after ``P`` stream updates equals its state at any earlier
checkpoint offset ``S`` XOR the folds of the stream suffix ``[S, P)``
that touch it.  So a corrupt page is rebuilt exactly, without touching
any healthy page, by

1. finding the newest checkpoint generation whose header matches the
   engine's config and whose payload passes digest verification,
2. seeking that checkpoint's round-major payload for just the corrupt
   page's node stripes (the same partial read the paged snapshot loader
   uses) and overwriting the page's stored bytes, and
3. re-folding the suffix edges whose endpoints land in the page's node
   span, through the pool's internal fold (which bumps no update
   counters -- those already count the original ingest, so a repaired
   run stays counter- and bit-identical to a fault-free one).

Flat (non-paged) engines have no page-granular storage to heal;
their recovery path is :func:`~repro.resilience.checkpoint.recover_latest`
plus a full suffix replay.

This module is deliberately *not* imported by ``repro.integrity``'s
``__init__`` -- it sits above the engine, snapshot, and checkpoint
layers, which themselves import :mod:`repro.integrity.digest`; import
it as ``repro.integrity.repair`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import CorruptionError, RecoveryError, StreamFormatError
from repro.observability.tracing import span

PathLike = Union[str, Path]


@dataclass
class RepairReport:
    """What one scrub-and-repair pass found and did."""

    #: Pages whose stored bytes failed checksum verification.
    corrupt_pages: List[int] = field(default_factory=list)
    #: Pages healed from the checkpoint (equals ``corrupt_pages`` on
    #: success; repair is all-or-nothing per pass).
    repaired_pages: List[int] = field(default_factory=list)
    #: The checkpoint generation the pages were healed from.
    checkpoint_path: Optional[str] = None
    #: Newer checkpoint generations rejected before one validated, as
    #: ``(path, reason)`` -- same shape as ``recover_latest``'s skips.
    skipped_checkpoints: List[Tuple[str, str]] = field(default_factory=list)
    #: Suffix updates re-folded into the healed pages (total endpoint
    #: folds, matching the pool's per-update accounting).
    replayed_updates: int = 0

    @property
    def clean(self) -> bool:
        """True when the scrub found nothing to repair."""
        return not self.corrupt_pages


def find_valid_checkpoint(
    engine, directory: PathLike
) -> Tuple[Path, "SnapshotMeta", List[Tuple[str, str]]]:
    """Newest checkpoint usable as a repair source for ``engine``.

    Scans generations newest-first, rejecting merged snapshots (their
    state is a union, not a stream prefix), fingerprint/geometry
    mismatches, checkpoints taken *after* the engine's current stream
    position (their pages would contain folds the suffix replay would
    double-apply), and -- the integrity plane's contribution -- any
    generation whose payload fails digest verification.  Pre-digest
    (version-1) checkpoints are accepted but cannot be verified; they
    are better than no repair source at all.

    Returns ``(path, meta, skipped)``; raises
    :class:`~repro.exceptions.RecoveryError` when nothing qualifies.
    """
    from repro.distributed.snapshot import read_snapshot_meta, verify_snapshot_payload
    from repro.resilience.checkpoint import list_checkpoints

    fingerprint = engine.config.sketch_fingerprint()
    skipped: List[Tuple[str, str]] = []
    for _, path in list_checkpoints(directory):
        try:
            meta = read_snapshot_meta(path)
            if meta.merged:
                skipped.append((str(path), "merged snapshot (not a stream prefix)"))
                continue
            if meta.num_nodes != engine.num_nodes:
                skipped.append(
                    (str(path), f"{meta.num_nodes} nodes, engine has {engine.num_nodes}")
                )
                continue
            if meta.fingerprint != fingerprint:
                skipped.append((str(path), "config fingerprint mismatch"))
                continue
            if meta.stream_offset > engine.updates_processed:
                skipped.append(
                    (str(path), "checkpoint is ahead of the engine's stream position")
                )
                continue
            verify_snapshot_payload(path, meta)
        except CorruptionError:
            skipped.append((str(path), "payload checksum mismatch"))
            continue
        except (StreamFormatError, OSError) as exc:
            skipped.append((str(path), str(exc)))
            continue
        return path, meta, skipped
    detail = "; ".join(f"{Path(p).name}: {reason}" for p, reason in skipped)
    raise RecoveryError(
        f"no valid repair checkpoint in {directory} "
        f"({len(skipped)} rejected: {detail or 'directory empty'})"
    )


def repair_pages(
    engine,
    pages: Sequence[int],
    checkpoint_path: PathLike,
    meta,
    edges: Optional[np.ndarray] = None,
) -> int:
    """Heal ``pages`` of a paged engine from a validated checkpoint.

    Each page's checkpoint-time tensors are read straight out of the
    snapshot payload (a partial, page-sized read) and stored over the
    corrupt bytes, then the stream suffix ``edges[meta.stream_offset :
    engine.updates_processed]`` is re-folded *restricted to the healed
    pages' node spans*.  The replay goes through the pool's internal
    fold, which bumps no update counters -- the original ingest already
    counted these updates, so a repaired engine stays counter-identical
    to a fault-free one.  Returns the number of endpoint folds replayed.
    """
    from repro.distributed.snapshot import _read_page_tensors
    from repro.sketch.flat_node_sketch import validate_indices

    pool = engine.tensor_pool
    if pool is None or not pool.is_paged:
        raise RecoveryError(
            "read-repair needs a paged tensor pool; flat engines recover "
            "via recover_latest plus a full suffix replay"
        )
    pages = sorted(set(int(page) for page in pages))
    suffix_len = engine.updates_processed - meta.stream_offset
    if suffix_len and edges is None:
        raise RecoveryError(
            f"repair needs the {suffix_len}-update stream suffix to replay "
            f"on top of {Path(checkpoint_path).name}, but no edges were given"
        )

    # Phase 1: overwrite each corrupt page with its checkpoint state.
    checkpoint_path = Path(checkpoint_path)
    with checkpoint_path.open("rb") as handle:
        for page in pages:
            tensors = _read_page_tensors(handle, meta, pool, page)
            with pool._lock:
                # Drop any resident copy (it deserialised from, or will
                # write back over, the rotten bytes) and every assembled
                # round cache; the store below becomes the page's truth.
                pool._resident.pop(page, None)
                pool._dirty.discard(page)
                pool._assembled.clear()
            pool.memory.store(pool._page_key(page), pool._serialize_page(page, tensors))
    # Persist now: the device still holds the rotten blocks, and the
    # fresh payload sits dirty in the cache.  Flushing rewrites the
    # blocks (and their digests), so a follow-up scrub sees clean state
    # instead of re-detecting the old corruption underneath the cache.
    pool.memory.flush()

    # Phase 2: re-fold the stream suffix, restricted to healed spans.
    replayed = 0
    suffix = (
        np.asarray(edges, dtype=np.int64)[meta.stream_offset : engine.updates_processed]
        if suffix_len
        else None
    )
    if suffix is not None and suffix.shape[0]:
        u = np.ascontiguousarray(suffix[:, 0])
        v = np.ascontiguousarray(suffix[:, 1])
        indices = engine.encoder.encode_canonical_pairs(
            np.minimum(u, v), np.maximum(u, v)
        )
        idx = validate_indices(indices, engine.encoder.vector_length)
        if idx is not None:
            dst_parts: List[np.ndarray] = []
            idx_parts: List[np.ndarray] = []
            for page in pages:
                lo, hi = pool.page_span(page)
                for endpoint in (u, v):
                    mask = (endpoint >= lo) & (endpoint < hi)
                    if mask.any():
                        dst_parts.append(endpoint[mask])
                        idx_parts.append(idx[mask])
            if dst_parts:
                dsts = np.concatenate(dst_parts)
                pool._fold_columns(dsts, np.concatenate(idx_parts))
                replayed = int(dsts.size)
    # Publish: bump the pool version (fold caches must not serve
    # pre-repair assemblies) but *not* the update counters -- see above.
    pool._version += 1
    pool.sync()
    pool.memory.flush()
    pool.memory.stats.pages_repaired += len(pages)
    engine._cached_forest = None
    return replayed


def scrub_and_repair(
    engine,
    checkpoint_dir: PathLike,
    edges: Optional[np.ndarray] = None,
) -> RepairReport:
    """Scrub an engine's storage; heal anything corrupt from a checkpoint.

    The end-to-end read-repair entry point the CLI's ``--scrub-every``
    path uses: scrub, and if the scrub is clean return immediately;
    otherwise locate the newest valid checkpoint generation in
    ``checkpoint_dir``, heal every corrupt page from it, replay the
    stream suffix (``edges`` must be the full stream the engine
    ingested), and re-scrub to prove the heal took.  Raises
    :class:`~repro.exceptions.RecoveryError` if no checkpoint qualifies
    or corruption survives the repair.
    """
    report = RepairReport(corrupt_pages=list(engine.scrub_storage()))
    if report.clean:
        return report
    with span("repair.pass"):
        path, meta, skipped = find_valid_checkpoint(engine, checkpoint_dir)
        report.checkpoint_path = str(path)
        report.skipped_checkpoints = skipped
        report.replayed_updates = repair_pages(
            engine, report.corrupt_pages, path, meta, edges
        )
        still_corrupt = engine.scrub_storage()
        if still_corrupt:
            raise RecoveryError(
                f"read-repair from {path.name} did not heal pages {still_corrupt}"
            )
        report.repaired_pages = list(report.corrupt_pages)
    return report
