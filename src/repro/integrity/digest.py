"""Vectorised payload digests for the storage integrity plane.

The sketch layer already checksum-verifies every *bucket* (the xxHash
column that bucket decoding validates), but everything below it --
device blocks, spilled pages, snapshot payloads -- used to be trusted
byte-for-byte.  This module supplies the one digest primitive the whole
integrity plane shares: a position-sensitive xxHash64-style digest of a
byte payload, computed with the same vectorised mixing kernels the
sketch hot path uses (:mod:`repro.hashing.mixers`), so checksumming a
16 KB block is a handful of numpy passes rather than a Python loop.

The digest views the payload as little-endian 64-bit words (the tail is
zero-padded), XORs each word with its diffused word position and the
diffused seed, runs the five splitmix64 passes (a full-avalanche
finaliser -- the per-word stage is the whole-payload hot path),
XOR-reduces, and finally folds in the byte length through the seeded
xxHash64 avalanche.  XORing
diffused positions makes the digest order-sensitive (a permutation of
blocks does not collide) while keeping the reduction associative, which
is what lets :class:`StreamingDigest` consume a round stripe page by
page and :func:`block_digests` checksum a whole blob in one shot.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

import numpy as np

from repro.hashing.mixers import (
    MASK64,
    finalise_hash64_inplace,
    seeded_hash64,
    splitmix64,
    splitmix64_array,
    splitmix64_inplace,
)

#: Seed for every storage digest.  Fixed (not configurable): digests are
#: an on-disk format, so two processes must always agree on it.
DIGEST_SEED = 0x1BAD_B10C

Buffer = Union[bytes, bytearray, memoryview]

#: Cache of seed-premixed diffused word-position vectors keyed by
#: ``(start, count, mixed_seed)``.  Block-sized payloads hit
#: ``(0, block_size // 8, ...)`` on every call, which removes the
#: ``arange`` + splitmix pass *and* the seed XOR from the per-block hot
#: path -- one XOR against the cached vector plus the in-place
#: finaliser is the whole per-word pipeline.
_POSITION_CACHE: Dict[Tuple[int, int, int], np.ndarray] = {}
_POSITION_CACHE_MAX = 32


def _premixed_positions(start: int, count: int, mixed_seed: int) -> np.ndarray:
    cached = _POSITION_CACHE.get((start, count, mixed_seed))
    if cached is not None:
        return cached
    mixed = splitmix64_array(np.arange(start, start + count, dtype=np.uint64))
    mixed ^= np.uint64(mixed_seed)
    if start == 0 and len(_POSITION_CACHE) < _POSITION_CACHE_MAX:
        _POSITION_CACHE[(start, count, mixed_seed)] = mixed
    return mixed


def _hash_words(words: np.ndarray, start: int, seed: int) -> int:
    """XOR-reduce the position-mixed word hashes of ``words`` (word ``start``).

    The word hash is ``splitmix64(w ^ diffused_pos ^ mixed_seed)``:
    XOR is associative, so the diffused seed folds into the cached
    position vector, and the whole per-word pipeline is one XOR plus
    the five in-place splitmix passes.  The xxHash avalanche runs once,
    on the final scalar (:meth:`StreamingDigest.digest`), not per word.
    """
    mixed_seed = splitmix64(seed & MASK64)
    v = words ^ _premixed_positions(start, words.size, mixed_seed)
    splitmix64_inplace(v)
    return int(np.bitwise_xor.reduce(v))


class StreamingDigest:
    """Incrementally digest a payload fed in arbitrary chunks.

    ``update`` may be called with chunks of any length (including
    lengths that are not multiples of eight -- the uint32 gamma stripes
    of a wide pool); the final :meth:`digest` equals
    ``payload_digest(concatenation_of_chunks)`` bit-for-bit.
    """

    __slots__ = ("_seed", "_mixed_seed", "_acc", "_words", "_nbytes", "_tail")

    def __init__(self, seed: int = DIGEST_SEED) -> None:
        self._seed = seed
        self._mixed_seed = splitmix64(seed & MASK64)
        self._acc = 0
        self._words = 0
        self._nbytes = 0
        self._tail = b""

    def update(self, data: Buffer) -> None:
        self._nbytes += len(data)
        if self._tail:
            data = self._tail + bytes(data)
        whole = len(data) & ~7
        if whole:
            words = np.frombuffer(data, dtype="<u8", count=whole >> 3)
            self._acc ^= _hash_words(words, self._words, self._seed)
            self._words += whole >> 3
        self._tail = bytes(data[whole:])

    def digest(self) -> int:
        acc = self._acc
        if self._tail:
            word = int.from_bytes(self._tail.ljust(8, b"\0"), "little")
            acc ^= splitmix64(word ^ splitmix64(self._words) ^ self._mixed_seed)
        return seeded_hash64(acc ^ splitmix64(self._nbytes), self._seed)


def payload_digest(data: Buffer, seed: int = DIGEST_SEED) -> int:
    """The 64-bit digest of one byte payload."""
    digest = StreamingDigest(seed)
    digest.update(data)
    return digest.digest()


def block_digests(payload: Buffer, block_size: int, seed: int = DIGEST_SEED) -> List[int]:
    """Per-block digests of a blob, one vectorised pass for full blocks.

    Entry ``i`` equals ``payload_digest(payload[i*B : (i+1)*B])``
    bit-for-bit, so blob writers can checksum every block at once while
    single-block reads verify with :func:`payload_digest`.
    """
    data = memoryview(payload)
    num_blocks = max(1, -(-len(data) // block_size))
    full = len(data) // block_size
    digests: List[int] = []
    if full and block_size % 8 == 0:
        words_per_block = block_size >> 3
        mixed_seed = splitmix64(seed & MASK64)
        words = np.frombuffer(data, dtype="<u8", count=full * words_per_block)
        v = words.reshape(full, words_per_block) ^ _premixed_positions(
            0, words_per_block, mixed_seed
        )
        splitmix64_inplace(v)
        accs = np.bitwise_xor.reduce(v, axis=1)
        with np.errstate(over="ignore"):
            accs ^= np.uint64(splitmix64(block_size) ^ mixed_seed)
        finalise_hash64_inplace(accs)
        digests.extend(int(d) for d in accs)
    else:
        full = 0
    for i in range(full, num_blocks):
        digests.append(payload_digest(data[i * block_size : (i + 1) * block_size], seed))
    return digests


__all__ = [
    "DIGEST_SEED",
    "MASK64",
    "StreamingDigest",
    "block_digests",
    "payload_digest",
]
