"""End-to-end integrity plane: checksums, scrub, and read-repair.

Layers (each usable on its own):

- :mod:`repro.integrity.digest` -- the vectorised xxHash64-style payload
  digest every storage tier shares (device blocks, hybrid-memory
  payloads, snapshot round stripes).
- :mod:`repro.integrity.repair` -- scrub-driven read-repair: heal a
  corrupt page from the newest valid checkpoint generation and replay
  the stream suffix restricted to that page's nodes.

Only the digest primitives are re-exported here: the repair module sits
above the engine/snapshot layers, which themselves import the digest
through :mod:`repro.memory`, so importing it eagerly would be circular.
Use ``from repro.integrity.repair import scrub_and_repair`` directly.
"""

from repro.integrity.digest import (
    DIGEST_SEED,
    StreamingDigest,
    block_digests,
    payload_digest,
)

__all__ = [
    "DIGEST_SEED",
    "StreamingDigest",
    "block_digests",
    "payload_digest",
]
