"""Leaf-only gutters: one update buffer per node group (or per node).

This is the buffering structure GraphZeppelin uses when RAM is
plentiful (``M > V * B``): gutters sized as a fraction ``f`` of the
node-sketch size, filled directly by ``buffer_insert`` and emitted as a
batch the moment they fill (Section 5.1).

Since PR 4 the gutters are keyed by **node-group page**: with
``page_bounds`` given, each gutter collects the mixed-node update
column of one contiguous node range and emits a
:class:`~repro.buffering.base.PageBatch` sized to amortise a single
page pin of the paged tensor pool (capacity scales with the page's
node count, so total buffered bytes match the per-node sizing).  This
is the emission mode every tensor-pool engine uses -- one fold kernel
pass per flush, one block-device round trip per *page* out of core.

Without ``page_bounds`` the structure degenerates to the seed design's
per-node gutters (every node its own page) and emits per-node
:class:`~repro.buffering.base.Batch` objects -- kept for the legacy
sketch backend's object store and its worker pool.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.buffering.base import (
    Batch,
    BufferingSystem,
    PageBatch,
    as_update_columns,
    group_update_columns,
    gutter_capacity_updates,
    page_of_nodes,
)
from repro.exceptions import ConfigurationError
from repro.memory.hybrid import HybridMemory


class LeafGutters(BufferingSystem):
    """Per-page (or per-node) update gutters kept in RAM.

    Parameters
    ----------
    num_nodes:
        Number of graph nodes (gutters are created lazily, so sparse use
        of the id space costs nothing).
    node_sketch_bytes:
        Size of one node sketch; together with ``fraction`` it fixes the
        per-node gutter capacity.  The paper's default is half a node
        sketch.
    fraction:
        Gutter size as a fraction of the node-sketch size.
    capacity_updates:
        Explicit per-node capacity in updates, overriding
        ``node_sketch_bytes``/``fraction`` (used by the buffer-size
        sweep benchmark, where capacity 1 means "no buffering").
    memory:
        Optional hybrid memory; when provided, each emitted batch
        charges a sequential read of its own bytes, modelling gutters
        that have been swapped to SSD.
    page_bounds:
        Optional ``num_pages + 1`` ascending node-range boundaries.
        When given, gutters are keyed per page, capacities scale with
        each page's node count, and emissions are
        :class:`~repro.buffering.base.PageBatch` mixed-node columns.
    """

    def __init__(
        self,
        num_nodes: int,
        node_sketch_bytes: int = 0,
        fraction: float = 0.5,
        capacity_updates: Optional[int] = None,
        memory: Optional[HybridMemory] = None,
        page_bounds: Optional[np.ndarray] = None,
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be at least 1")
        if capacity_updates is not None:
            if capacity_updates < 1:
                raise ConfigurationError("capacity_updates must be at least 1")
            self._capacity = int(capacity_updates)
        else:
            if node_sketch_bytes <= 0:
                raise ConfigurationError(
                    "node_sketch_bytes must be positive when capacity_updates is not given"
                )
            self._capacity = gutter_capacity_updates(node_sketch_bytes, fraction)
        self.num_nodes = int(num_nodes)
        self.memory = memory
        self._bounds = (
            np.asarray(page_bounds, dtype=np.int64) if page_bounds is not None else None
        )
        # Python-list twin of the bounds for the scalar insert path:
        # bisect on a list is ~10x cheaper per update than a scalar
        # numpy searchsorted call.
        self._bounds_list = self._bounds.tolist() if self._bounds is not None else None
        #: page -> (destination list, neighbor list); in per-node mode
        #: the page id *is* the node id.
        self._gutters: Dict[int, Tuple[List[int], List[int]]] = {}
        self._pending = 0

    # ------------------------------------------------------------------
    @property
    def capacity_per_node(self) -> int:
        return self._capacity

    @property
    def page_mode(self) -> bool:
        return self._bounds is not None

    def _page_of(self, node: int) -> int:
        if self._bounds_list is None:
            return node
        return bisect_right(self._bounds_list, node) - 1

    def _page_capacity(self, page: int) -> int:
        if self._bounds is None:
            return self._capacity
        return self._capacity * int(self._bounds[page + 1] - self._bounds[page])

    def insert(self, u: int, v: int) -> List[Union[Batch, PageBatch]]:
        self._check_node(u)
        self._check_node(v)
        page = self._page_of(u)
        dsts, neighbors = self._gutters.setdefault(page, ([], []))
        dsts.append(u)
        neighbors.append(v)
        self._pending += 1
        if len(dsts) >= self._page_capacity(page):
            return [self._emit(page)]
        return []

    def insert_batch(self, dsts, neighbors) -> List[Union[Batch, PageBatch]]:
        """Vectorised buffering of a whole update column.

        Groups the column by owning gutter with one argsort and extends
        each gutter with its contiguous chunk, instead of one Python
        call per update.  Emission semantics match the scalar path: a
        gutter that reaches capacity is emitted whole (batches may
        exceed capacity when a chunk overshoots it, which only makes
        the emitted batches larger -- the sketch fold is partition
        independent).
        """
        dst_array, neighbor_array = as_update_columns(dsts, neighbors, self.num_nodes)
        if dst_array.size == 0:
            return []
        keys = (
            dst_array if self._bounds is None else page_of_nodes(dst_array, self._bounds)
        )
        batches: List[Union[Batch, PageBatch]] = []
        for page, (dst_chunk, neighbor_chunk) in group_update_columns(
            keys, dst_array, neighbor_array
        ):
            gutter_dsts, gutter_neighbors = self._gutters.setdefault(page, ([], []))
            gutter_dsts.extend(dst_chunk.tolist())
            gutter_neighbors.extend(neighbor_chunk.tolist())
            self._pending += dst_chunk.size
            if len(gutter_dsts) >= self._page_capacity(page):
                batches.append(self._emit(page))
        return batches

    def flush_all(self) -> List[Union[Batch, PageBatch]]:
        batches = [
            self._emit(page) for page in sorted(self._gutters) if self._gutters[page][0]
        ]
        return [batch for batch in batches if len(batch) > 0]

    def restore(self, batches: List[Union[Batch, PageBatch]]) -> None:
        for batch in batches:
            if isinstance(batch, PageBatch):
                page = batch.page
                dsts: List[int] = batch.dsts.tolist()
                neighbors: List[int] = batch.neighbors.tolist()
            else:
                page = batch.node
                neighbors = list(batch.neighbors)
                dsts = [batch.node] * len(neighbors)
            gutter_dsts, gutter_neighbors = self._gutters.setdefault(page, ([], []))
            gutter_dsts.extend(dsts)
            gutter_neighbors.extend(neighbors)
            self._pending += len(dsts)

    def pending_updates(self) -> int:
        return self._pending

    def pending_for(self, node: int) -> int:
        """Updates currently buffered for one node (for tests/inspection)."""
        if self._bounds is None:
            return len(self._gutters.get(node, ([], []))[0])
        gutter = self._gutters.get(self._page_of(node))
        if gutter is None:
            return 0
        return sum(1 for dst in gutter[0] if dst == node)

    # ------------------------------------------------------------------
    def _emit(self, page: int) -> Union[Batch, PageBatch]:
        dsts, neighbors = self._gutters.pop(page, ([], []))
        self._pending -= len(dsts)
        if self._bounds is None:
            batch: Union[Batch, PageBatch] = Batch(node=page, neighbors=neighbors)
        else:
            batch = PageBatch(
                page=page,
                node_lo=int(self._bounds[page]),
                node_hi=int(self._bounds[page + 1]),
                dsts=np.asarray(dsts, dtype=np.int64),
                neighbors=np.asarray(neighbors, dtype=np.int64),
            )
        if self.memory is not None and not self.memory.is_unbounded:
            # Gutters that overflowed RAM live on disk; emitting the batch
            # reads it back sequentially.
            self.memory.charge_read(batch.size_bytes, sequential=True)
        return batch

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")

    def __repr__(self) -> str:
        mode = "pages" if self.page_mode else "nodes"
        return (
            f"LeafGutters(num_nodes={self.num_nodes}, capacity={self._capacity}, "
            f"keyed_by={mode}, pending={self._pending})"
        )
