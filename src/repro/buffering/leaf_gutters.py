"""Leaf-only gutters: one update buffer per graph node.

This is the buffering structure GraphZeppelin uses when RAM is
plentiful (``M > V * B``): a gutter per node, sized as a fraction ``f``
of the node-sketch size, filled directly by ``buffer_insert`` and
emitted as a batch the moment it fills (Section 5.1).  When the node
sketches themselves live on the simulated disk, emitting larger batches
amortises the cost of paging a node sketch in and out, which is the
trade-off Figure 15 sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.buffering.base import (
    Batch,
    BufferingSystem,
    as_update_columns,
    group_by_destination,
    gutter_capacity_updates,
)
from repro.exceptions import ConfigurationError
from repro.memory.hybrid import HybridMemory


class LeafGutters(BufferingSystem):
    """Per-node update gutters kept in RAM.

    Parameters
    ----------
    num_nodes:
        Number of graph nodes (gutters are created lazily, so sparse use
        of the id space costs nothing).
    node_sketch_bytes:
        Size of one node sketch; together with ``fraction`` it fixes the
        gutter capacity.  The paper's default is half a node sketch.
    fraction:
        Gutter size as a fraction of the node-sketch size.
    capacity_updates:
        Explicit per-gutter capacity in updates, overriding
        ``node_sketch_bytes``/``fraction`` (used by the buffer-size
        sweep benchmark, where capacity 1 means "no buffering").
    memory:
        Optional hybrid memory; when provided, each emitted batch
        charges a sequential read of its own bytes, modelling gutters
        that have been swapped to SSD.
    """

    def __init__(
        self,
        num_nodes: int,
        node_sketch_bytes: int = 0,
        fraction: float = 0.5,
        capacity_updates: Optional[int] = None,
        memory: Optional[HybridMemory] = None,
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be at least 1")
        if capacity_updates is not None:
            if capacity_updates < 1:
                raise ConfigurationError("capacity_updates must be at least 1")
            self._capacity = int(capacity_updates)
        else:
            if node_sketch_bytes <= 0:
                raise ConfigurationError(
                    "node_sketch_bytes must be positive when capacity_updates is not given"
                )
            self._capacity = gutter_capacity_updates(node_sketch_bytes, fraction)
        self.num_nodes = int(num_nodes)
        self.memory = memory
        self._gutters: Dict[int, List[int]] = {}
        self._pending = 0

    # ------------------------------------------------------------------
    @property
    def capacity_per_node(self) -> int:
        return self._capacity

    def insert(self, u: int, v: int) -> List[Batch]:
        self._check_node(u)
        self._check_node(v)
        gutter = self._gutters.setdefault(u, [])
        gutter.append(v)
        self._pending += 1
        if len(gutter) >= self._capacity:
            return [self._emit(u)]
        return []

    def insert_batch(self, dsts, neighbors) -> List[Batch]:
        """Vectorised buffering of a whole update column.

        Groups the column by destination node with one argsort and
        extends each gutter with its contiguous chunk, instead of one
        Python call per update.  Emission semantics match the scalar
        path: a gutter that reaches capacity is emitted whole (batches
        may exceed capacity when a chunk overshoots it, which only makes
        the emitted batches larger -- the sketch fold is partition
        independent).
        """
        dst_array, neighbor_array = as_update_columns(dsts, neighbors, self.num_nodes)
        if dst_array.size == 0:
            return []
        batches: List[Batch] = []
        for node, chunk in group_by_destination(dst_array, neighbor_array):
            gutter = self._gutters.setdefault(node, [])
            gutter.extend(chunk.tolist())
            self._pending += chunk.size
            if len(gutter) >= self._capacity:
                batches.append(self._emit(node))
        return batches

    def flush_all(self) -> List[Batch]:
        batches = [self._emit(node) for node in sorted(self._gutters) if self._gutters[node]]
        return [batch for batch in batches if len(batch) > 0]

    def pending_updates(self) -> int:
        return self._pending

    def pending_for(self, node: int) -> int:
        """Updates currently buffered for one node (for tests/inspection)."""
        return len(self._gutters.get(node, []))

    # ------------------------------------------------------------------
    def _emit(self, node: int) -> Batch:
        neighbors = self._gutters.pop(node, [])
        self._pending -= len(neighbors)
        batch = Batch(node=node, neighbors=neighbors)
        if self.memory is not None and not self.memory.is_unbounded:
            # Gutters that overflowed RAM live on disk; emitting the batch
            # reads it back sequentially.
            self.memory.charge_read(batch.size_bytes, sequential=True)
        return batch

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")

    def __repr__(self) -> str:
        return (
            f"LeafGutters(num_nodes={self.num_nodes}, capacity={self._capacity}, "
            f"pending={self._pending})"
        )
