"""Common types and interface for the buffering layer."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

#: Bytes one buffered update occupies: two 32-bit node ids, matching the
#: "2B to encode an edge" style accounting the paper uses for buffers.
BYTES_PER_BUFFERED_UPDATE = 8


@dataclass(slots=True)
class Batch:
    """A batch of buffered updates bound for a single graph node.

    ``node`` is the node whose sketch the batch must be applied to, and
    ``neighbors`` lists the other endpoint of each buffered edge update
    (duplicates are legal: an edge inserted and later deleted appears
    twice and cancels inside the Z_2 sketch).
    """

    node: int
    neighbors: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.neighbors)

    def __iter__(self) -> Iterator[int]:
        return iter(self.neighbors)

    @property
    def size_bytes(self) -> int:
        return len(self.neighbors) * BYTES_PER_BUFFERED_UPDATE


class BufferingSystem(abc.ABC):
    """Interface shared by the leaf-only gutters and the gutter tree."""

    @abc.abstractmethod
    def insert(self, u: int, v: int) -> List[Batch]:
        """Buffer the update ``{u, v}`` for node ``u``.

        Returns the (possibly empty) list of batches that became full as
        a result and must now be handed to a Graph Worker.  The caller
        is responsible for also inserting the mirrored update
        ``(v, u)`` -- ``edge_update`` in the engine does both.
        """

    @abc.abstractmethod
    def flush_all(self) -> List[Batch]:
        """Empty every buffer, returning all remaining non-empty batches."""

    @abc.abstractmethod
    def pending_updates(self) -> int:
        """Number of updates currently sitting in buffers."""

    @property
    @abc.abstractmethod
    def capacity_per_node(self) -> int:
        """Updates a single node's gutter holds before it is emitted."""

    def insert_edge(self, u: int, v: int) -> List[Batch]:
        """Buffer both directions of an edge update (the public entry point)."""
        batches = self.insert(u, v)
        batches.extend(self.insert(v, u))
        return batches


def gutter_capacity_updates(
    node_sketch_bytes: int,
    fraction: float,
    minimum: int = 1,
) -> int:
    """Capacity (in updates) of a gutter sized as a fraction of a node sketch.

    The paper sizes leaf gutters as a constant factor ``f`` of the node
    sketch size (Section 6.5, Figure 15); this helper converts that
    fraction into a whole number of buffered updates.
    """
    if node_sketch_bytes <= 0:
        raise ValueError("node_sketch_bytes must be positive")
    if fraction <= 0:
        raise ValueError("fraction must be positive")
    return max(minimum, int(fraction * node_sketch_bytes / BYTES_PER_BUFFERED_UPDATE))
