"""Common types and interface for the buffering layer."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

#: Bytes one buffered update occupies: two 32-bit node ids, matching the
#: "2B to encode an edge" style accounting the paper uses for buffers.
BYTES_PER_BUFFERED_UPDATE = 8


@dataclass(slots=True)
class Batch:
    """A batch of buffered updates bound for a single graph node.

    ``node`` is the node whose sketch the batch must be applied to, and
    ``neighbors`` lists the other endpoint of each buffered edge update
    (duplicates are legal: an edge inserted and later deleted appears
    twice and cancels inside the Z_2 sketch).

    .. deprecated:: PR 4
        Per-node batches are no longer the buffering hot path: engines
        holding a tensor pool (in-RAM or paged) buffer per node-group
        *page* and emit :class:`PageBatch` mixed-node columns instead.
        ``Batch`` remains the emission unit only for the **legacy**
        sketch backend's per-node object store (and its worker pool).
    """

    node: int
    neighbors: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.neighbors)

    def __iter__(self) -> Iterator[int]:
        return iter(self.neighbors)

    @property
    def size_bytes(self) -> int:
        return len(self.neighbors) * BYTES_PER_BUFFERED_UPDATE

    @property
    def lock_key(self) -> Tuple[str, int]:
        """Serialisation key for the legacy worker pool's per-target locks."""
        return ("node", self.node)


@dataclass(slots=True)
class PageBatch:
    """A batch of buffered updates bound for one node-group page.

    The page-mode emission unit: a *mixed-node* update column -- update
    ``i`` toggles edge ``{dsts[i], neighbors[i]}`` in ``dsts[i]``'s
    sketch -- whose destinations all fall inside the page's node range
    ``[node_lo, node_hi)``.  The engine folds the whole column through
    the columnar fold kernel in **one page pin** instead of one sketch
    round trip per node, which is what makes out-of-core flushes pay
    block-device I/O per page rather than per node.
    """

    page: int
    node_lo: int
    node_hi: int
    dsts: np.ndarray
    neighbors: np.ndarray

    def __len__(self) -> int:
        return int(self.dsts.size)

    @property
    def size_bytes(self) -> int:
        return len(self) * BYTES_PER_BUFFERED_UPDATE

    @property
    def lock_key(self) -> Tuple[str, int]:
        """Serialisation key for the legacy worker pool's per-target locks."""
        return ("page", self.page)


class BufferingSystem(abc.ABC):
    """Interface shared by the leaf-only gutters and the gutter tree."""

    @abc.abstractmethod
    def insert(self, u: int, v: int) -> List[Batch]:
        """Buffer the update ``{u, v}`` for node ``u``.

        Returns the (possibly empty) list of batches that became full as
        a result and must now be handed to a Graph Worker.  The caller
        is responsible for also inserting the mirrored update
        ``(v, u)`` -- ``edge_update`` in the engine does both.
        """

    @abc.abstractmethod
    def flush_all(self) -> List[Batch]:
        """Empty every buffer, returning all remaining non-empty batches."""

    @abc.abstractmethod
    def restore(self, batches: List[Batch]) -> None:
        """Put emitted-but-unapplied batches back into the buffers.

        The engine's failure-atomic flush depends on this:
        :meth:`flush_all` pops updates out of the buffers *before* they
        are applied, so an application that dies partway (a rotten page
        read, a failed device write) would silently lose the unapplied
        tail if its batches could not be returned.  Restored gutters may
        temporarily exceed capacity -- that only makes the next emission
        larger, which the partition-independent sketch fold absorbs.
        """

    @abc.abstractmethod
    def pending_updates(self) -> int:
        """Number of updates currently sitting in buffers."""

    @property
    @abc.abstractmethod
    def capacity_per_node(self) -> int:
        """Updates a single node's gutter holds before it is emitted."""

    def insert_edge(self, u: int, v: int) -> List[Batch]:
        """Buffer both directions of an edge update (the public entry point)."""
        batches = self.insert(u, v)
        batches.extend(self.insert(v, u))
        return batches

    def insert_batch(self, dsts, neighbors) -> List[Batch]:
        """Buffer a column of single-direction updates at once.

        ``dsts[i]`` receives the update ``{dsts[i], neighbors[i]}``; the
        columnar ingest path passes both mirrored halves of its edge
        array in one call.  The base implementation loops; the concrete
        buffering structures override it with vectorised grouping.
        """
        batches: List[Batch] = []
        for u, v in zip(dsts, neighbors):
            batches.extend(self.insert(int(u), int(v)))
        return batches


def as_update_columns(
    dsts, neighbors, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a pair of update columns and return them as int64 arrays.

    Shared prologue of every vectorised ``insert_batch``: both columns
    must be matching 1-D arrays of node ids inside ``[0, num_nodes)``.
    """
    dst_array = np.asarray(dsts, dtype=np.int64)
    neighbor_array = np.asarray(neighbors, dtype=np.int64)
    if dst_array.shape != neighbor_array.shape or dst_array.ndim != 1:
        raise ValueError("dsts and neighbors must be matching one-dimensional arrays")
    for column in (dst_array, neighbor_array):
        if column.size and ((column < 0) | (column >= num_nodes)).any():
            raise ValueError(f"node outside [0, {num_nodes})")
    return dst_array, neighbor_array


def group_update_columns(
    keys: np.ndarray, *columns: np.ndarray
) -> Iterator[Tuple[int, Tuple[np.ndarray, ...]]]:
    """Yield ``(key, column_chunks)`` groups of parallel update columns.

    One stable argsort of ``keys``, then contiguous segments -- the
    single grouping pass behind every vectorised buffering insert,
    whether keyed per destination node or per node-group page.
    """
    if keys.size == 0:
        return
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    # One gather per column up front; every group is then a zero-copy
    # contiguous slice (a flush can yield thousands of groups).
    sorted_columns = [column[order] for column in columns]
    cuts = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate(([0], cuts))
    ends = np.concatenate((cuts, [sorted_keys.size]))
    for start, end in zip(starts.tolist(), ends.tolist()):
        yield int(sorted_keys[start]), tuple(
            column[start:end] for column in sorted_columns
        )


def group_by_destination(
    dsts: np.ndarray, neighbors: np.ndarray
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(node, neighbor_chunk)`` groups of an update column."""
    for node, (chunk,) in group_update_columns(dsts, neighbors):
        yield node, chunk


def page_of_nodes(nodes: np.ndarray, page_bounds: np.ndarray) -> np.ndarray:
    """Map node ids to the index of the owning node-group page."""
    return np.searchsorted(page_bounds, nodes, side="right") - 1


def gutter_capacity_updates(
    node_sketch_bytes: int,
    fraction: float,
    minimum: int = 1,
) -> int:
    """Capacity (in updates) of a gutter sized as a fraction of a node sketch.

    The paper sizes leaf gutters as a constant factor ``f`` of the node
    sketch size (Section 6.5, Figure 15); this helper converts that
    fraction into a whole number of buffered updates.
    """
    if node_sketch_bytes <= 0:
        raise ValueError("node_sketch_bytes must be positive")
    if fraction <= 0:
        raise ValueError("fraction must be positive")
    return max(minimum, int(fraction * node_sketch_bytes / BYTES_PER_BUFFERED_UPDATE))
