"""The bounded producer/consumer queue between buffering and Graph Workers."""

from __future__ import annotations

import queue
import threading
from typing import Iterator, List, Optional

from repro.buffering.base import Batch


class WorkQueue:
    """A bounded, thread-safe queue of update batches.

    The paper sizes the queue at ``8 g`` batches for ``g`` Graph Workers
    so neither the buffering thread nor the workers stall for long while
    keeping memory bounded.  The queue is also usable single-threaded
    (the default engine configuration): producers call :meth:`put`,
    and the engine drains it synchronously with :meth:`drain`.
    """

    DEFAULT_BATCHES_PER_WORKER = 8

    #: Shutdown marker a worker pool enqueues to wake blocked consumers;
    #: never counted in the batch/update statistics.
    SENTINEL = object()

    def __init__(self, num_workers: int = 1, capacity: Optional[int] = None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.num_workers = num_workers
        self.capacity = (
            capacity
            if capacity is not None
            else self.DEFAULT_BATCHES_PER_WORKER * num_workers
        )
        self._queue: "queue.Queue[Batch]" = queue.Queue(maxsize=self.capacity)
        self._lock = threading.Lock()
        self._batches_enqueued = 0
        self._updates_enqueued = 0
        self._high_watermark = 0

    # ------------------------------------------------------------------
    def put(self, batch: Batch, block: bool = True, timeout: Optional[float] = None) -> None:
        """Enqueue a batch (blocking while the queue is full, as in the paper)."""
        self._queue.put(batch, block=block, timeout=timeout)
        with self._lock:
            self._batches_enqueued += 1
            self._updates_enqueued += len(batch)
            self._high_watermark = max(self._high_watermark, self._queue.qsize())

    def put_all(self, batches: List[Batch]) -> None:
        for batch in batches:
            self.put(batch)

    def get(self, block: bool = True, timeout: Optional[float] = None) -> Batch:
        """Dequeue one batch; raises ``queue.Empty`` when non-blocking and empty."""
        return self._queue.get(block=block, timeout=timeout)

    def put_sentinel(self) -> None:
        """Enqueue the shutdown marker (skips the batch statistics)."""
        self._queue.put(self.SENTINEL)

    def task_done(self) -> None:
        """Mark one previously-gotten batch (or sentinel) as fully applied."""
        self._queue.task_done()

    def join_tasks(self) -> None:
        """Block until every enqueued batch has been marked done.

        Unlike ``is_empty`` polling, this accounts for *in-flight*
        batches: a batch a consumer has popped but not yet finished
        applying still holds the join open until its
        :meth:`task_done` call.
        """
        self._queue.join()

    def get_nowait(self) -> Optional[Batch]:
        try:
            batch = self._queue.get_nowait()
        except queue.Empty:
            return None
        # The synchronous consumers (drain, and the engine's inline
        # pops) never call task_done() themselves; account here so a
        # queue that was partially drained single-threaded cannot
        # deadlock a later join_tasks().
        self._queue.task_done()
        return batch

    def drain(self) -> Iterator[Batch]:
        """Yield batches until the queue is empty (single-threaded path)."""
        while True:
            batch = self.get_nowait()
            if batch is None:
                return
            yield batch

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._queue.qsize()

    @property
    def is_empty(self) -> bool:
        return self._queue.empty()

    @property
    def batches_enqueued(self) -> int:
        return self._batches_enqueued

    @property
    def updates_enqueued(self) -> int:
        return self._updates_enqueued

    @property
    def high_watermark(self) -> int:
        """Largest queue depth observed (for tuning the capacity)."""
        return self._high_watermark
