"""The gutter tree: a simplified buffer tree for out-of-core buffering.

When even one gutter per node does not fit in RAM, GraphZeppelin falls
back to a *gutter tree* (Section 4.1): a static tree whose root and
internal vertices hold 8 MB buffers with fan-out ``8MB / 16KB = 512``
and whose leaves are the per-node-group gutters.  Updates enter at the
root; when a buffer fills it is flushed to its children (recursively),
and when a leaf gutter fills, its updates are emitted as a batch for
the Graph Workers.

The tree in this reproduction keeps update payloads in Python lists
(the source of truth) and mirrors every parent-to-child flush and leaf
read onto the simulated block device via
:meth:`~repro.memory.hybrid.HybridMemory.charge_write` /
``charge_read``, so the I/O counters and modelled time reflect what the
on-SSD structure would pay.  This is the substitution documented in
DESIGN.md for the paper's pre-allocated on-disk buffer tree.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.buffering.base import (
    BYTES_PER_BUFFERED_UPDATE,
    Batch,
    BufferingSystem,
    PageBatch,
    as_update_columns,
    gutter_capacity_updates,
)
from repro.exceptions import ConfigurationError
from repro.memory.hybrid import HybridMemory

import numpy as np

#: Paper defaults: 8 MB internal buffers flushed in 16 KB blocks.
DEFAULT_BUFFER_BYTES = 8 * 1024 * 1024
DEFAULT_FLUSH_BLOCK_BYTES = 16 * 1024


@dataclass
class _TreeNode:
    """One vertex of the gutter tree."""

    depth: int
    #: Child tree nodes (empty for the level directly above the leaves).
    children: List["_TreeNode"] = field(default_factory=list)
    #: Buffered (node, neighbor) pairs awaiting a flush.
    buffer: List[tuple] = field(default_factory=list)
    #: Range of graph nodes this subtree is responsible for.
    node_lo: int = 0
    node_hi: int = 0


class GutterTree(BufferingSystem):
    """Buffer tree whose leaves are per-node-group gutters.

    Parameters
    ----------
    num_nodes:
        Number of graph nodes.
    node_sketch_bytes:
        Size of one node sketch; leaf gutters default to twice this size
        (the paper allocates each leaf gutter two node sketches' worth).
    memory:
        Hybrid memory whose device absorbs the modelled buffer traffic.
    buffer_bytes / flush_block_bytes:
        Internal buffer size and flush granularity (paper: 8 MB / 16 KB).
    leaf_fraction:
        Leaf gutter capacity as a fraction of the node-sketch size.
    fanout:
        Children per internal vertex; the default follows
        ``buffer_bytes / flush_block_bytes``.
    page_bounds:
        Optional node-group page boundaries.  When given, the leaves
        are per-*page* gutters emitting
        :class:`~repro.buffering.base.PageBatch` mixed-node columns
        (capacity scaled by the page's node count) -- the tensor-pool
        engines' emission mode.  Without it the leaves are the seed
        design's per-node gutters emitting per-node ``Batch`` objects,
        kept for the legacy sketch backend.
    """

    def __init__(
        self,
        num_nodes: int,
        node_sketch_bytes: int,
        memory: Optional[HybridMemory] = None,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        flush_block_bytes: int = DEFAULT_FLUSH_BLOCK_BYTES,
        leaf_fraction: float = 2.0,
        fanout: Optional[int] = None,
        page_bounds: Optional[np.ndarray] = None,
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be at least 1")
        if node_sketch_bytes <= 0:
            raise ConfigurationError("node_sketch_bytes must be positive")
        if buffer_bytes <= 0 or flush_block_bytes <= 0:
            raise ConfigurationError("buffer sizes must be positive")

        self.num_nodes = int(num_nodes)
        self.node_sketch_bytes = int(node_sketch_bytes)
        self.memory = memory
        self.buffer_bytes = int(buffer_bytes)
        self.flush_block_bytes = int(flush_block_bytes)
        self.fanout = int(fanout) if fanout else max(2, buffer_bytes // flush_block_bytes)
        self._buffer_capacity = max(1, buffer_bytes // BYTES_PER_BUFFERED_UPDATE)
        self._leaf_capacity = gutter_capacity_updates(node_sketch_bytes, leaf_fraction)
        self._bounds = (
            np.asarray(page_bounds, dtype=np.int64) if page_bounds is not None else None
        )
        # Python-list twin of the bounds: the leaf-flush loop maps one
        # node per update, and bisect on a list is ~10x cheaper than a
        # scalar numpy searchsorted call.
        self._bounds_list = self._bounds.tolist() if self._bounds is not None else None

        #: leaf page -> (destination list, neighbor list); per-node mode
        #: uses the node id as the page id.
        self._leaf_gutters: Dict[int, Tuple[List[int], List[int]]] = {}
        self._pending = 0
        self._root = self._build_tree()
        self.flush_count = 0

    # ------------------------------------------------------------------
    @property
    def capacity_per_node(self) -> int:
        return self._leaf_capacity

    @property
    def height(self) -> int:
        """Number of internal levels above the leaf gutters."""
        height = 1
        node = self._root
        while node.children:
            height += 1
            node = node.children[0]
        return height

    def insert(self, u: int, v: int) -> List[Batch]:
        self._check_node(u)
        self._check_node(v)
        self._root.buffer.append((u, v))
        self._pending += 1
        if len(self._root.buffer) >= self._buffer_capacity:
            return self._flush_node(self._root)
        return []

    def insert_batch(self, dsts, neighbors) -> List[Batch]:
        """Buffer a whole update column at the root in one extend.

        The root buffer is the only structure the scalar path touches
        per update, so the batched path validates the columns
        vectorised, extends the root once, and flushes (recursively) if
        the extension crossed the capacity.
        """
        dst_array, neighbor_array = as_update_columns(dsts, neighbors, self.num_nodes)
        if dst_array.size == 0:
            return []
        self._root.buffer.extend(
            zip(dst_array.tolist(), neighbor_array.tolist())
        )
        self._pending += int(dst_array.size)
        if len(self._root.buffer) >= self._buffer_capacity:
            return self._flush_node(self._root)
        return []

    def flush_all(self) -> List[Union[Batch, PageBatch]]:
        batches = self._flush_node(self._root, force=True)
        for page in sorted(self._leaf_gutters):
            if self._leaf_gutters[page][0]:
                batches.append(self._emit_leaf(page))
        return batches

    def restore(self, batches: List[Union[Batch, PageBatch]]) -> None:
        # Restored updates go straight to the leaf gutters (the tree
        # stages above only exist to batch the journey down; these
        # updates already completed it once).
        for batch in batches:
            if isinstance(batch, PageBatch):
                page = batch.page
                dsts: List[int] = batch.dsts.tolist()
                neighbors: List[int] = batch.neighbors.tolist()
            else:
                page = batch.node
                neighbors = list(batch.neighbors)
                dsts = [batch.node] * len(neighbors)
            leaf_dsts, leaf_neighbors = self._leaf_gutters.setdefault(page, ([], []))
            leaf_dsts.extend(dsts)
            leaf_neighbors.extend(neighbors)
            self._pending += len(dsts)

    def pending_updates(self) -> int:
        return self._pending

    @property
    def page_mode(self) -> bool:
        return self._bounds is not None

    def _page_of(self, node: int) -> int:
        if self._bounds_list is None:
            return node
        return bisect_right(self._bounds_list, node) - 1

    def _leaf_capacity_for(self, page: int) -> int:
        if self._bounds is None:
            return self._leaf_capacity
        return self._leaf_capacity * int(self._bounds[page + 1] - self._bounds[page])

    # ------------------------------------------------------------------
    def _build_tree(self) -> _TreeNode:
        """Build the static tree over node-group leaves."""
        root = _TreeNode(depth=0, node_lo=0, node_hi=self.num_nodes)
        # Number of leaves needed if each internal vertex covers `fanout`
        # children; keep the tree shallow (the paper's trees have 2-3
        # levels for realistic V).
        levels = max(1, math.ceil(math.log(max(self.num_nodes, 2), self.fanout)))
        frontier = [root]
        for depth in range(1, levels):
            next_frontier: List[_TreeNode] = []
            for parent in frontier:
                span = parent.node_hi - parent.node_lo
                if span <= 1:
                    continue
                child_span = max(1, math.ceil(span / self.fanout))
                lo = parent.node_lo
                while lo < parent.node_hi:
                    hi = min(parent.node_hi, lo + child_span)
                    child = _TreeNode(depth=depth, node_lo=lo, node_hi=hi)
                    parent.children.append(child)
                    next_frontier.append(child)
                    lo = hi
            frontier = next_frontier
            if not frontier:
                break
        return root

    def _flush_node(self, node: _TreeNode, force: bool = False) -> List[Batch]:
        """Flush a vertex's buffer to its children (or leaf gutters)."""
        if not node.buffer:
            batches: List[Batch] = []
            if force:
                for child in node.children:
                    batches.extend(self._flush_node(child, force=True))
            return batches

        self.flush_count += 1
        flushed = node.buffer
        node.buffer = []
        self._charge_flush(len(flushed))

        batches = []
        if node.children:
            for u, v in flushed:
                child = self._child_for(node, u)
                child.buffer.append((u, v))
            for child in node.children:
                if force or len(child.buffer) >= self._buffer_capacity:
                    batches.extend(self._flush_node(child, force=force))
        else:
            for u, v in flushed:
                page = self._page_of(u)
                dsts, neighbors = self._leaf_gutters.setdefault(page, ([], []))
                dsts.append(u)
                neighbors.append(v)
                if len(dsts) >= self._leaf_capacity_for(page):
                    batches.append(self._emit_leaf(page))
        return batches

    def _child_for(self, node: _TreeNode, graph_node: int) -> _TreeNode:
        for child in node.children:
            if child.node_lo <= graph_node < child.node_hi:
                return child
        raise AssertionError(f"graph node {graph_node} not covered by tree vertex")

    def _emit_leaf(self, page: int) -> Union[Batch, PageBatch]:
        dsts, neighbors = self._leaf_gutters.pop(page, ([], []))
        self._pending -= len(dsts)
        if self._bounds is None:
            batch: Union[Batch, PageBatch] = Batch(node=page, neighbors=neighbors)
        else:
            batch = PageBatch(
                page=page,
                node_lo=int(self._bounds[page]),
                node_hi=int(self._bounds[page + 1]),
                dsts=np.asarray(dsts, dtype=np.int64),
                neighbors=np.asarray(neighbors, dtype=np.int64),
            )
        if self.memory is not None:
            # Reading the leaf gutter back from disk before applying it.
            self.memory.charge_read(batch.size_bytes, sequential=True)
        return batch

    def _charge_flush(self, num_updates: int) -> None:
        if self.memory is None:
            return
        nbytes = num_updates * BYTES_PER_BUFFERED_UPDATE
        # Flushes stream the buffer out in flush_block_bytes chunks.
        self.memory.charge_write(nbytes, sequential=True)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")

    def __repr__(self) -> str:
        return (
            f"GutterTree(num_nodes={self.num_nodes}, fanout={self.fanout}, "
            f"leaf_capacity={self._leaf_capacity}, pending={self._pending})"
        )
