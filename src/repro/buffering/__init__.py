"""Update buffering: work queue, leaf-only gutters, and the gutter tree.

GraphZeppelin never applies a stream update to a node sketch
immediately.  Updates are collected per destination node and applied in
batches, which (a) amortises the cost of bringing a node sketch into
cache or RAM, and (b) produces independent units of work that Graph
Workers can process in parallel (Sections 4 and 5.1 of the paper).

Two buffering structures are provided, matching the paper:

* :class:`repro.buffering.leaf_gutters.LeafGutters` -- one gutter per
  graph node, used when RAM is plentiful (``M > V * B``),
* :class:`repro.buffering.gutter_tree.GutterTree` -- a simplified
  buffer tree whose leaves are the gutters, used when even the gutters
  do not fit in RAM; parent-to-child flushes are charged to the
  simulated block device.

Both emit :class:`repro.buffering.base.Batch` objects into a
:class:`repro.buffering.work_queue.WorkQueue`.
"""

from repro.buffering.base import Batch, BufferingSystem
from repro.buffering.gutter_tree import GutterTree
from repro.buffering.leaf_gutters import LeafGutters
from repro.buffering.work_queue import WorkQueue

__all__ = ["Batch", "BufferingSystem", "GutterTree", "LeafGutters", "WorkQueue"]
