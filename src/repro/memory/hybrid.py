"""RAM budget + block device glued into one hybrid memory.

:class:`HybridMemory` is the substrate the rest of the system stores
its large objects through.  Payloads are kept in a byte-budgeted LRU
cache (the RAM tier); when the cache overflows, payloads spill to the
simulated :class:`~repro.memory.block_device.BlockDevice` and later
reads charge block I/Os and modelled latency.  With an unlimited RAM
budget the device is never touched, which is the "everything fits in
RAM" configuration of the experiments.

:class:`SketchStore` layers object (de)serialisation on top, so the
connectivity engine can address node sketches by node id without caring
where they currently live.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.exceptions import (
    CircuitOpenError,
    CorruptionError,
    DeadlineExceededError,
    StorageError,
)
from repro.integrity.digest import block_digests
from repro.memory.block_device import DEFAULT_BLOCK_SIZE, BlockDevice, DeviceProfile
from repro.memory.cache import LRUCache
from repro.memory.metrics import IOStats
from repro.observability.tracing import span

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Transient-``OSError`` retry with exponential backoff for device calls.

    Real storage fails transiently (a USB hiccup, an NFS timeout, a
    thin-provisioned volume briefly full); the hybrid memory retries
    the failed device call up to ``attempts`` total tries, sleeping
    ``backoff_seconds * multiplier**i`` between them, before letting
    the error surface.  Every failed try is counted in
    :class:`~repro.memory.metrics.IOStats` (``read_failures`` /
    ``write_failures``), retried or not, so a flaky device is visible
    even when every retry succeeds.
    """

    attempts: int = 3
    backoff_seconds: float = 0.01
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise StorageError("RetryPolicy needs at least one attempt")
        if self.backoff_seconds < 0:
            raise StorageError("backoff_seconds must be non-negative")

    def delay(self, failed_attempts: int) -> float:
        return self.backoff_seconds * self.multiplier ** max(failed_attempts - 1, 0)


class HybridMemory:
    """A keyed byte store with a RAM budget backed by a simulated disk.

    Parameters
    ----------
    ram_bytes:
        RAM budget for cached payloads.  ``None`` means unlimited (pure
        in-RAM operation, no device traffic ever).
    block_size:
        Device block size ``B``.
    profile:
        Latency model of the backing device.
    retry:
        Optional :class:`RetryPolicy` wrapping every device read/write
        in transient-``OSError`` retry with backoff.  ``None`` (the
        default) surfaces the first failure.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`; when set,
        the plan is consulted before every device call and may raise an
        injected ``OSError`` -- the deterministic-fault-injection hook
        of the resilience tests.  ``site="block"`` corruption specs are
        forwarded to the device, which flips bits in stored blocks.
    verify_checksums:
        When true (the default) every device block and every stored
        payload carries an xxHash64 digest; reads that pull spilled
        state back in raise :class:`~repro.exceptions.CorruptionError`
        on mismatch, and :meth:`scrub` audits everything at rest.
    deadline_seconds:
        Optional per-operation deadline on device calls: an attempt
        that ran longer (e.g. under an injected ``slow`` fault) raises
        :class:`~repro.exceptions.DeadlineExceededError` -- a
        ``TimeoutError``/``OSError``, so it composes with ``retry``
        like any transient failure and is counted in
        ``stats.deadline_misses``.
    breaker:
        Optional :class:`~repro.resilience.overload.CircuitBreaker`
        wrapping device I/O: it records whole-operation outcomes (after
        the retry budget, not per attempt), rejects calls with
        :class:`~repro.exceptions.CircuitOpenError` while open, and
        half-open-probes after its reset window.
        :class:`~repro.exceptions.CorruptionError` bypasses it
        entirely -- corruption is data damage, not device
        unavailability.
    """

    def __init__(
        self,
        ram_bytes: Optional[int] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        profile: Optional[DeviceProfile] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan=None,
        verify_checksums: bool = True,
        deadline_seconds: Optional[float] = None,
        breaker=None,
    ) -> None:
        if ram_bytes is not None and ram_bytes < 0:
            raise StorageError("ram_bytes must be non-negative or None")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise StorageError("deadline_seconds must be positive or None")
        self.ram_bytes = ram_bytes
        self.retry = retry
        self.deadline_seconds = deadline_seconds
        self.breaker = breaker
        self.verify_checksums = bool(verify_checksums)
        self.stats = IOStats()
        self.device = BlockDevice(
            block_size=block_size,
            profile=profile,
            stats=self.stats,
            verify_checksums=verify_checksums,
        )
        self.fault_plan = fault_plan
        capacity = ram_bytes if ram_bytes is not None else (1 << 62)
        self._cache = LRUCache(capacity, stats=self.stats, on_evict=self._write_back)
        self._dirty: set = set()
        self._allocations: Dict[Hashable, Tuple[int, int, int]] = {}
        #: Per-key *block* digest lists recorded at :meth:`store` time --
        #: the payload-level integrity record and, handed down to
        #: :meth:`BlockDevice.write_blob` at persist time, the write-time
        #: block digests, so the write path hashes every byte exactly
        #: once.
        self._payload_digests: Dict[Hashable, List[int]] = {}
        self._next_block = 0
        self._reserved_bytes = 0
        #: Callbacks fired on every memory-pressure event (refused
        #: reservation or injected allocation squeeze); the paged pool
        #: registers its degrade-to-floor handler here.
        self._pressure_listeners: List[Callable[[], None]] = []
        self._in_pressure_callback = False

    # ------------------------------------------------------------------
    @property
    def fault_plan(self):
        return self._fault_plan

    @fault_plan.setter
    def fault_plan(self, plan) -> None:
        # Keep the device's reference in sync so block-corruption specs
        # reach the write path even when a plan is attached after
        # construction (the distributed workers do exactly that).
        self._fault_plan = plan
        self.device.fault_plan = plan

    @property
    def is_unbounded(self) -> bool:
        """True when no RAM limit is in force (nothing ever spills)."""
        return self.ram_bytes is None

    @property
    def block_size(self) -> int:
        return self.device.block_size

    def store(self, key: Hashable, payload: bytes) -> None:
        """Store (or replace) the payload for ``key``.

        The per-block digests are taken *now*, while the bytes are
        authoritative: they verify the RAM-cached copy on demand
        (:meth:`verify_key`), travel down to the device when the
        payload is persisted (so write-back never re-hashes), and check
        the reassembled payload after every spilled :meth:`load`.
        """
        if self.verify_checksums:
            self._payload_digests[key] = block_digests(payload, self.block_size)
        if self.fault_plan is not None and self.fault_plan.on_memory_check():
            # Injected allocation squeeze: degrade (listeners shrink
            # their working sets), never refuse the bytes -- pressure
            # models load, and dropping a payload would lose data.
            self._note_pressure()
        self._dirty.add(key)
        self._cache.put(key, payload)

    def load(self, key: Hashable) -> bytes:
        """Load the payload for ``key``, reading from disk on a cache miss.

        A payload pulled back from the device is verified twice: every
        block against its write-time digest (inside the device) and the
        reassembled payload against the digest recorded at
        :meth:`store` time, so allocation bookkeeping bugs surface as
        :class:`~repro.exceptions.CorruptionError` too.
        """
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if key not in self._allocations:
            raise KeyError(key)
        start, _, length = self._allocations[key]
        if length == 0:
            return b""
        # Read only the blocks the *current* payload spans -- after a
        # smaller re-put the allocation keeps its original capacity, but
        # the stale tail blocks are never touched.
        payload = self._device_call(
            lambda: self.device.read_blob(start, -(-length // self.block_size)),
            is_write=False,
        )[:length]
        self._verify_payload(key, payload)
        self._cache.put(key, payload)
        return payload

    def _verify_payload(self, key: Hashable, payload: bytes) -> None:
        if not self.verify_checksums:
            return
        expected = self._payload_digests.get(key)
        if expected is not None and block_digests(payload, self.block_size) != expected:
            self.stats.checksum_failures += 1
            raise CorruptionError(
                f"payload for key {key!r} failed checksum verification "
                f"({len(payload)} bytes)"
            )

    def load_range(self, key: Hashable, offset: int, length: int) -> bytes:
        """Load ``length`` bytes at ``offset`` of ``key``'s payload.

        The paged tensor pool's query path: one Boruvka round occupies a
        contiguous byte range of a node-group page, so a spilled page
        only pays the block reads covering that range instead of the
        whole slab.  A RAM-cached payload is sliced for free (counted as
        a cache hit); a spilled one reads exactly the blocks
        ``[offset, offset + length)`` straddles and charges them to
        :class:`~repro.memory.metrics.IOStats`.  Partial reads do *not*
        populate the cache -- a fragment must never shadow the full
        payload on a later :meth:`load`.
        """
        if offset < 0 or length < 0:
            raise StorageError("offset and length must be non-negative")
        cached = self._cache.get(key)
        if cached is not None:
            return cached[offset : offset + length]
        if key not in self._allocations:
            raise KeyError(key)
        start, num_blocks, stored_length = self._allocations[key]
        if offset >= stored_length or length == 0:
            return b""
        stop = min(offset + length, stored_length)
        first = offset // self.block_size
        last = min(-(-stop // self.block_size), num_blocks)
        chunk = self._device_call(
            lambda: self.device.read_blob(start + first, last - first),
            is_write=False,
        )
        base = first * self.block_size
        return chunk[offset - base : stop - base]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._cache or key in self._allocations

    def keys(self) -> Iterator[Hashable]:
        seen = set()
        for key, _ in self._cache.items():
            seen.add(key)
            yield key
        for key in self._allocations:
            if key not in seen:
                yield key

    def flush(self) -> None:
        """Write every dirty cached payload back to the device."""
        for key, payload in self._cache.items():
            if key in self._dirty:
                self._persist(key, payload)

    # ------------------------------------------------------------------
    def verify_key(self, key: Hashable) -> int:
        """Verify one key's bytes wherever they live; returns blocks checked.

        RAM-cached payloads are verified against the digest recorded at
        :meth:`store` time; spilled payloads are read straight off the
        device (charging real I/O, bypassing the cache so a scrub never
        perturbs the working set) which verifies each block digest, then
        checked against the payload digest unless the cached copy is
        newer (dirty) than the spilled one.  Raises
        :class:`~repro.exceptions.CorruptionError` on the first
        mismatch.
        """
        if not self.verify_checksums:
            return 0
        blocks = 0
        cached = next(
            (payload for k, payload in self._cache.items() if k == key), None
        )
        if cached is not None:
            blocks += max(1, -(-len(cached) // self.block_size))
            self._verify_payload(key, cached)
        allocation = self._allocations.get(key)
        if allocation is not None:
            start, _, length = allocation
            if length > 0:
                num_blocks = -(-length // self.block_size)
                payload = self._device_call(
                    lambda: self.device.read_blob(start, num_blocks),
                    is_write=False,
                )[:length]
                blocks += num_blocks
                # A dirty cached copy makes the spilled bytes stale (but
                # still internally consistent): block digests above are
                # authoritative, the payload digest is not.
                if key not in self._dirty:
                    self._verify_payload(key, payload)
        if cached is None and allocation is None:
            raise KeyError(key)
        return blocks

    def scrub(self) -> list:
        """Audit every stored payload; returns the keys that failed.

        Walks all resident and spilled state, verifying block and
        payload digests, counting verified blocks in
        ``stats.blocks_scrubbed``.  Corruption does not stop the pass:
        each failing key is collected (its ``checksum_failures`` count
        still increments) so read-repair can heal them all in one go.
        """
        corrupt = []
        for key in list(self.keys()):
            try:
                self.stats.blocks_scrubbed += self.verify_key(key)
            except CorruptionError:
                corrupt.append(key)
        return corrupt

    def reserve(self, nbytes: int) -> int:
        """Carve ``nbytes`` of the RAM budget out of the byte cache.

        A component holding its own deserialised RAM claims it here, so
        the byte cache plus every reservation never exceed the
        configured budget.  Two callers today: the paged tensor pool's
        pinned page working set (at construction) and its query-side
        round-slab buffers (at the first query).  Shrinking evicts (and
        write-backs) any overflow immediately.  Returns the bytes
        actually reserved (clamped to what the cache still had); a
        no-op when unbounded.

        Under an injected memory-pressure fault the reservation is
        *refused* (returns 0, counts a ``pressure_events``, notifies
        the pressure listeners) -- callers already treat a partial
        reservation as budget truth, so a refusal degrades instead of
        raising.
        """
        if self.is_unbounded:
            return 0
        if self.fault_plan is not None and self.fault_plan.on_memory_check():
            self._note_pressure()
            return 0
        taken = min(max(int(nbytes), 0), self._cache.capacity_bytes)
        self._cache.resize(self._cache.capacity_bytes - taken)
        self._reserved_bytes += taken
        return taken

    def release(self, nbytes: int) -> int:
        """Return previously :meth:`reserve`-d bytes to the byte cache.

        The degradation path: a component shrinking its working set
        under pressure hands its reservation back so the cache can
        absorb payloads the smaller working set now spills.  Clamped to
        what is actually reserved; returns the bytes released.
        """
        if self.is_unbounded:
            return 0
        given = min(max(int(nbytes), 0), self._reserved_bytes)
        self._cache.resize(self._cache.capacity_bytes + given)
        self._reserved_bytes -= given
        return given

    @property
    def reserved_bytes(self) -> int:
        """Bytes currently carved out of the cache by :meth:`reserve`."""
        return self._reserved_bytes

    def add_pressure_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback fired on every memory-pressure event."""
        self._pressure_listeners.append(listener)

    def _note_pressure(self) -> None:
        self.stats.pressure_events += 1
        if self._in_pressure_callback:
            # A listener's own eviction/write-back traffic re-entered
            # store(); count the event but do not recurse.
            return
        self._in_pressure_callback = True
        try:
            for listener in self._pressure_listeners:
                listener()
        finally:
            self._in_pressure_callback = False

    # ------------------------------------------------------------------
    # explicit accounting hooks for components (e.g. the gutter tree)
    # that model their disk traffic without storing through this object
    # ------------------------------------------------------------------
    def charge_write(self, nbytes: int, sequential: bool = True) -> None:
        """Charge the cost of writing ``nbytes`` without storing them."""
        self._charge(nbytes, is_write=True, sequential=sequential)

    def charge_read(self, nbytes: int, sequential: bool = True) -> None:
        """Charge the cost of reading ``nbytes`` without loading them."""
        self._charge(nbytes, is_write=False, sequential=sequential)

    def _charge(self, nbytes: int, is_write: bool, sequential: bool) -> None:
        if nbytes <= 0:
            return
        num_blocks = -(-nbytes // self.block_size)
        profile = self.device.profile
        if sequential:
            self.stats.sequential_accesses += num_blocks
            self.stats.modelled_seconds += num_blocks * profile.sequential_seconds_per_block
        else:
            self.stats.random_accesses += num_blocks
            self.stats.modelled_seconds += num_blocks * profile.random_seconds_per_block
        if is_write:
            self.stats.block_writes += num_blocks
            self.stats.bytes_written += nbytes
        else:
            self.stats.block_reads += num_blocks
            self.stats.bytes_read += nbytes

    # ------------------------------------------------------------------
    def _device_call(self, call: Callable[[], T], is_write: bool) -> T:
        """Run one device read/write through breaker, faults, deadline, retry.

        Composition, outermost first: the circuit breaker admits or
        rejects the whole operation (an open breaker raises
        :class:`~repro.exceptions.CircuitOpenError` without touching
        the device or the retry budget); the fault plan (when present)
        is consulted before every try -- a retried call counts as a
        fresh device operation, so an injected fault at the k-th write
        is transient unless the plan also faults the (k+1)-th, and a
        ``slow`` fault stalls the attempt; the per-attempt deadline
        turns an over-long attempt into a
        :class:`~repro.exceptions.DeadlineExceededError` (an
        ``OSError``, so it retries like any transient failure).  Each
        ``OSError`` is counted in the failure stats; with a
        :class:`RetryPolicy` the call is retried with backoff and only
        the final failure propagates.  The breaker records the
        *operation's* outcome -- transient failures a retry absorbed
        never count toward its threshold, and
        :class:`~repro.exceptions.CorruptionError` (deterministic data
        damage, not device unavailability) bypasses it entirely.
        """
        if self.breaker is not None:
            try:
                self.breaker.allow()
            except CircuitOpenError:
                self.stats.breaker_rejections += 1
                raise
        # The span covers the full operation -- retries, backoff sleeps,
        # and injected latency included -- because that is the latency a
        # caller actually experienced.
        with span("device.write" if is_write else "device.read"):
            try:
                result = self._retried_call(call, is_write)
            except CorruptionError:
                raise
            except OSError:
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
        if self.breaker is not None:
            self.breaker.record_success()
        return result

    def _retried_call(self, call: Callable[[], T], is_write: bool) -> T:
        """The retry loop of :meth:`_device_call` (fault plan + deadline)."""
        attempts = self.retry.attempts if self.retry is not None else 1
        failed = 0
        while True:
            try:
                started = time.monotonic()
                if self.fault_plan is not None:
                    if is_write:
                        self.fault_plan.on_device_write()
                    else:
                        self.fault_plan.on_device_read()
                result = call()
                if (
                    self.deadline_seconds is not None
                    and time.monotonic() - started > self.deadline_seconds
                ):
                    self.stats.deadline_misses += 1
                    raise DeadlineExceededError(
                        f"device {'write' if is_write else 'read'} exceeded its "
                        f"{self.deadline_seconds}s deadline"
                    )
                return result
            except CorruptionError:
                raise
            except OSError:
                failed += 1
                if is_write:
                    self.stats.write_failures += 1
                else:
                    self.stats.read_failures += 1
                if failed >= attempts:
                    raise
                self.stats.io_retries += 1
                delay = self.retry.delay(failed)
                if delay > 0:
                    time.sleep(delay)

    def _write_back(self, key: Hashable, payload: bytes) -> None:
        if key in self._dirty:
            self._persist(key, payload)

    def _persist(self, key: Hashable, payload: bytes) -> None:
        num_blocks = max(1, -(-len(payload) // self.block_size))
        allocation = self._allocations.get(key)
        if allocation is None or allocation[1] < num_blocks:
            start = self._next_block
            fresh_allocation = True
            capacity = num_blocks
        else:
            # Re-put inside an existing allocation: keep its full block
            # capacity on record, so a payload that shrinks and later
            # regrows (e.g. a recompacted page) stays in place instead
            # of leaking a fresh allocation.
            start, capacity = allocation[0], allocation[1]
            fresh_allocation = False
        digests = self._payload_digests.get(key) if self.verify_checksums else None
        self._device_call(
            lambda: self.device.write_blob(start, payload, _digests=digests),
            is_write=True,
        )
        if fresh_allocation:
            self._next_block = start + num_blocks
        self._allocations[key] = (start, capacity, len(payload))
        self._dirty.discard(key)

    @property
    def cached_bytes(self) -> int:
        return self._cache.bytes_used

    @property
    def device_bytes(self) -> int:
        return self.device.bytes_in_use

    def __repr__(self) -> str:
        limit = "unbounded" if self.is_unbounded else f"{self.ram_bytes}B"
        return f"HybridMemory(ram={limit}, block_size={self.block_size})"


class SketchStore(Generic[T]):
    """Keyed store of (de)serialisable objects on top of a HybridMemory.

    The connectivity engine keeps one entry per graph node.  In the
    unbounded-RAM configuration objects are kept live in a dict and the
    hybrid memory is bypassed entirely; with a RAM budget, objects are
    serialised into the hybrid memory so that access patterns incur the
    same I/O a real out-of-core run would.
    """

    def __init__(
        self,
        serialize: Callable[[T], bytes],
        deserialize: Callable[[bytes], T],
        memory: Optional[HybridMemory] = None,
    ) -> None:
        self._serialize = serialize
        self._deserialize = deserialize
        self.memory = memory
        self._live: Dict[Hashable, T] = {}

    @property
    def uses_external_memory(self) -> bool:
        return self.memory is not None and not self.memory.is_unbounded

    def put(self, key: Hashable, obj: T) -> None:
        if self.uses_external_memory:
            assert self.memory is not None
            self.memory.store(key, self._serialize(obj))
        else:
            self._live[key] = obj

    def get(self, key: Hashable) -> T:
        if self.uses_external_memory:
            assert self.memory is not None
            return self._deserialize(self.memory.load(key))
        return self._live[key]

    def __contains__(self, key: Hashable) -> bool:
        if self.uses_external_memory:
            assert self.memory is not None
            return key in self.memory
        return key in self._live

    def keys(self) -> Iterator[Hashable]:
        if self.uses_external_memory:
            assert self.memory is not None
            yield from self.memory.keys()
        else:
            yield from self._live.keys()

    def flush(self) -> None:
        if self.uses_external_memory:
            assert self.memory is not None
            self.memory.flush()

    @property
    def stats(self) -> Optional[IOStats]:
        return self.memory.stats if self.memory is not None else None
