"""A simulated block-addressed storage device.

The device stores byte blocks in a Python dict (so contents are real
and round-trip exactly), while charging every access to an
:class:`~repro.memory.metrics.IOStats` instance according to a latency
profile.  Sequential accesses (the block following the previously
accessed block) are charged less than random accesses, mirroring how
SSD throughput differs between streaming and random 16 KB reads.

The default profile approximates the Samsung 870 EVO SATA SSD used in
the paper's evaluation: ~530 MB/s sequential, ~90 us random-access
latency per 16 KB block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import StorageError
from repro.memory.metrics import IOStats

#: Default block size: 16 KB, the write granularity GraphZeppelin uses
#: for its gutter tree (Section 5.1).
DEFAULT_BLOCK_SIZE = 16 * 1024


@dataclass(frozen=True)
class DeviceProfile:
    """Latency/throughput model of the simulated device."""

    #: Seconds to transfer one block when the access is sequential.
    sequential_seconds_per_block: float = DEFAULT_BLOCK_SIZE / (530 * 1024 * 1024)
    #: Seconds per random block access (seek + transfer).
    random_seconds_per_block: float = 90e-6
    #: Human-readable name for reports.
    name: str = "sata-ssd"

    @classmethod
    def nvme(cls) -> "DeviceProfile":
        """A faster NVMe-class profile for sensitivity experiments."""
        return cls(
            sequential_seconds_per_block=DEFAULT_BLOCK_SIZE / (3000 * 1024 * 1024),
            random_seconds_per_block=20e-6,
            name="nvme-ssd",
        )

    @classmethod
    def spinning_disk(cls) -> "DeviceProfile":
        """A hard-drive profile (large random penalty)."""
        return cls(
            sequential_seconds_per_block=DEFAULT_BLOCK_SIZE / (160 * 1024 * 1024),
            random_seconds_per_block=8e-3,
            name="hdd",
        )


class BlockDevice:
    """Block-addressed storage with I/O accounting.

    Parameters
    ----------
    block_size:
        Bytes per block (``B`` in the hybrid streaming model).
    profile:
        Latency model used to accumulate ``modelled_seconds``.
    stats:
        Optionally share an existing :class:`IOStats` (e.g. with a cache
        layered on top); a fresh one is created otherwise.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        profile: Optional[DeviceProfile] = None,
        stats: Optional[IOStats] = None,
    ) -> None:
        if block_size <= 0:
            raise StorageError("block_size must be positive")
        self.block_size = int(block_size)
        self.profile = profile or DeviceProfile()
        self.stats = stats if stats is not None else IOStats()
        self._blocks: Dict[int, bytes] = {}
        self._last_block_accessed: Optional[int] = None

    # ------------------------------------------------------------------
    def write_block(self, block_id: int, payload: bytes) -> None:
        """Write one block; payloads longer than ``block_size`` are rejected."""
        if block_id < 0:
            raise StorageError("block ids are non-negative")
        if len(payload) > self.block_size:
            raise StorageError(
                f"payload of {len(payload)} bytes exceeds block size {self.block_size}"
            )
        self._charge(block_id, is_write=True, nbytes=len(payload))
        self._blocks[block_id] = bytes(payload)

    def read_block(self, block_id: int) -> bytes:
        """Read one block; reading an unwritten block is an error."""
        if block_id not in self._blocks:
            raise StorageError(f"block {block_id} has never been written")
        payload = self._blocks[block_id]
        self._charge(block_id, is_write=False, nbytes=len(payload))
        return payload

    def has_block(self, block_id: int) -> bool:
        return block_id in self._blocks

    def delete_block(self, block_id: int) -> None:
        """Drop a block without charging an I/O (TRIM-style discard)."""
        self._blocks.pop(block_id, None)

    # ------------------------------------------------------------------
    def write_blob(self, start_block: int, payload: bytes) -> int:
        """Write an arbitrary-length blob across consecutive blocks.

        Returns the number of blocks used.  The first block of the blob
        is charged as a random access and the rest as sequential, which
        is how a contiguous node-group sketch read behaves on disk.
        """
        num_blocks = max(1, -(-len(payload) // self.block_size))
        for i in range(num_blocks):
            chunk = payload[i * self.block_size : (i + 1) * self.block_size]
            self.write_block(start_block + i, chunk)
        return num_blocks

    def read_blob(self, start_block: int, num_blocks: int) -> bytes:
        """Read ``num_blocks`` consecutive blocks back as one byte string."""
        parts = [self.read_block(start_block + i) for i in range(num_blocks)]
        return b"".join(parts)

    # ------------------------------------------------------------------
    @property
    def blocks_in_use(self) -> int:
        return len(self._blocks)

    @property
    def bytes_in_use(self) -> int:
        return sum(len(b) for b in self._blocks.values())

    def _charge(self, block_id: int, is_write: bool, nbytes: int) -> None:
        sequential = (
            self._last_block_accessed is not None
            and block_id == self._last_block_accessed + 1
        )
        if sequential:
            self.stats.sequential_accesses += 1
            self.stats.modelled_seconds += self.profile.sequential_seconds_per_block
        else:
            self.stats.random_accesses += 1
            self.stats.modelled_seconds += self.profile.random_seconds_per_block
        if is_write:
            self.stats.block_writes += 1
            self.stats.bytes_written += nbytes
        else:
            self.stats.block_reads += 1
            self.stats.bytes_read += nbytes
        self._last_block_accessed = block_id

    def __repr__(self) -> str:
        return (
            f"BlockDevice(block_size={self.block_size}, profile={self.profile.name}, "
            f"blocks_in_use={self.blocks_in_use})"
        )
