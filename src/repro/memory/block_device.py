"""A simulated block-addressed storage device.

The device stores byte blocks in a Python dict (so contents are real
and round-trip exactly), while charging every access to an
:class:`~repro.memory.metrics.IOStats` instance according to a latency
profile.  Sequential accesses (the block following the previously
accessed block) are charged less than random accesses, mirroring how
SSD throughput differs between streaming and random 16 KB reads.

The default profile approximates the Samsung 870 EVO SATA SSD used in
the paper's evaluation: ~530 MB/s sequential, ~90 us random-access
latency per 16 KB block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import CorruptionError, StorageError
from repro.integrity.digest import block_digests, payload_digest
from repro.memory.metrics import IOStats

#: Default block size: 16 KB, the write granularity GraphZeppelin uses
#: for its gutter tree (Section 5.1).
DEFAULT_BLOCK_SIZE = 16 * 1024


@dataclass(frozen=True)
class DeviceProfile:
    """Latency/throughput model of the simulated device."""

    #: Seconds to transfer one block when the access is sequential.
    sequential_seconds_per_block: float = DEFAULT_BLOCK_SIZE / (530 * 1024 * 1024)
    #: Seconds per random block access (seek + transfer).
    random_seconds_per_block: float = 90e-6
    #: Human-readable name for reports.
    name: str = "sata-ssd"

    @classmethod
    def nvme(cls) -> "DeviceProfile":
        """A faster NVMe-class profile for sensitivity experiments."""
        return cls(
            sequential_seconds_per_block=DEFAULT_BLOCK_SIZE / (3000 * 1024 * 1024),
            random_seconds_per_block=20e-6,
            name="nvme-ssd",
        )

    @classmethod
    def spinning_disk(cls) -> "DeviceProfile":
        """A hard-drive profile (large random penalty)."""
        return cls(
            sequential_seconds_per_block=DEFAULT_BLOCK_SIZE / (160 * 1024 * 1024),
            random_seconds_per_block=8e-3,
            name="hdd",
        )


class BlockDevice:
    """Block-addressed storage with I/O accounting.

    Parameters
    ----------
    block_size:
        Bytes per block (``B`` in the hybrid streaming model).
    profile:
        Latency model used to accumulate ``modelled_seconds``.
    stats:
        Optionally share an existing :class:`IOStats` (e.g. with a cache
        layered on top); a fresh one is created otherwise.
    verify_checksums:
        When true (the default) every written block carries an xxHash64
        digest and every read verifies it, raising
        :class:`~repro.exceptions.CorruptionError` on mismatch.  Turning
        it off skips checksumming entirely (the "unchecked" baseline the
        integrity benchmark measures overhead against).
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        profile: Optional[DeviceProfile] = None,
        stats: Optional[IOStats] = None,
        verify_checksums: bool = True,
    ) -> None:
        if block_size <= 0:
            raise StorageError("block_size must be positive")
        self.block_size = int(block_size)
        self.profile = profile or DeviceProfile()
        self.stats = stats if stats is not None else IOStats()
        self.verify_checksums = bool(verify_checksums)
        #: Consulted by :meth:`write_block` for injected bit rot
        #: (``site="block"`` specs); the hybrid layer keeps it in sync
        #: with its own plan.
        self.fault_plan = None
        self._blocks: Dict[int, bytes] = {}
        self._digests: Dict[int, int] = {}
        self._last_block_accessed: Optional[int] = None

    # ------------------------------------------------------------------
    def write_block(self, block_id: int, payload: bytes, _digest: Optional[int] = None) -> None:
        """Write one block; payloads longer than ``block_size`` are rejected."""
        if block_id < 0:
            raise StorageError("block ids are non-negative")
        if len(payload) > self.block_size:
            raise StorageError(
                f"payload of {len(payload)} bytes exceeds block size {self.block_size}"
            )
        self._charge(block_id, is_write=True, nbytes=len(payload))
        payload = bytes(payload)
        if self.verify_checksums:
            # Checksum what the caller handed us, then let the fault plan
            # model bit rot *after* the digest was taken -- that is the
            # silent-corruption ordering the read-side check defends.
            self._digests[block_id] = (
                payload_digest(payload) if _digest is None else _digest
            )
        if self.fault_plan is not None:
            payload = self.fault_plan.corrupt_block_write(payload)
        self._blocks[block_id] = payload

    def read_block(self, block_id: int) -> bytes:
        """Read one block, verifying its checksum when enabled."""
        if block_id not in self._blocks:
            raise StorageError(f"block {block_id} has never been written")
        payload = self._blocks[block_id]
        self._charge(block_id, is_write=False, nbytes=len(payload))
        if self.verify_checksums:
            expected = self._digests.get(block_id)
            if expected is not None and payload_digest(payload) != expected:
                self.stats.checksum_failures += 1
                raise CorruptionError(
                    f"block {block_id} failed checksum verification "
                    f"({len(payload)} bytes): stored content no longer "
                    f"matches its write-time digest"
                )
        return payload

    def has_block(self, block_id: int) -> bool:
        return block_id in self._blocks

    def delete_block(self, block_id: int) -> None:
        """Drop a block without charging an I/O (TRIM-style discard)."""
        self._blocks.pop(block_id, None)
        self._digests.pop(block_id, None)

    # ------------------------------------------------------------------
    def write_blob(
        self,
        start_block: int,
        payload: bytes,
        _digests: Optional[list] = None,
    ) -> int:
        """Write an arbitrary-length blob across consecutive blocks.

        Returns the number of blocks used.  The first block of the blob
        is charged as a random access and the rest as sequential, which
        is how a contiguous node-group sketch read behaves on disk.
        ``_digests`` lets a caller that already block-digested this
        payload (the hybrid memory does, at ``store`` time) hand the
        digests down instead of paying a second hashing pass.
        """
        num_blocks = max(1, -(-len(payload) // self.block_size))
        if not self.verify_checksums:
            digests = None
        elif _digests is not None and len(_digests) == num_blocks:
            digests = _digests
        else:
            digests = block_digests(payload, self.block_size)
        for i in range(num_blocks):
            chunk = payload[i * self.block_size : (i + 1) * self.block_size]
            self.write_block(
                start_block + i,
                chunk,
                _digest=None if digests is None else digests[i],
            )
        return num_blocks

    def read_blob(self, start_block: int, num_blocks: int) -> bytes:
        """Read ``num_blocks`` consecutive blocks back as one byte string."""
        parts = [self.read_block(start_block + i) for i in range(num_blocks)]
        return b"".join(parts)

    # ------------------------------------------------------------------
    @property
    def blocks_in_use(self) -> int:
        return len(self._blocks)

    @property
    def bytes_in_use(self) -> int:
        return sum(len(b) for b in self._blocks.values())

    def _charge(self, block_id: int, is_write: bool, nbytes: int) -> None:
        sequential = (
            self._last_block_accessed is not None
            and block_id == self._last_block_accessed + 1
        )
        if sequential:
            self.stats.sequential_accesses += 1
            self.stats.modelled_seconds += self.profile.sequential_seconds_per_block
        else:
            self.stats.random_accesses += 1
            self.stats.modelled_seconds += self.profile.random_seconds_per_block
        if is_write:
            self.stats.block_writes += 1
            self.stats.bytes_written += nbytes
        else:
            self.stats.block_reads += 1
            self.stats.bytes_read += nbytes
        self._last_block_accessed = block_id

    def __repr__(self) -> str:
        return (
            f"BlockDevice(block_size={self.block_size}, profile={self.profile.name}, "
            f"blocks_in_use={self.blocks_in_use})"
        )
