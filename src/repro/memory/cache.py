"""A byte-budgeted LRU cache used as the RAM tier of the hybrid model."""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Iterator, Optional, Tuple

from repro.exceptions import StorageError
from repro.memory.metrics import IOStats

EvictionCallback = Callable[[Hashable, bytes], None]


class LRUCache:
    """Least-recently-used cache of byte payloads with a byte budget.

    Parameters
    ----------
    capacity_bytes:
        Total budget.  Zero disables caching entirely (every lookup is a
        miss), which models the "no RAM left for sketches" regime.
    stats:
        Optional shared :class:`IOStats`; hit/miss counters accumulate
        there.
    on_evict:
        Callback invoked with ``(key, payload)`` when an entry is pushed
        out, used by the hybrid layer to write dirty entries back to the
        block device.
    """

    def __init__(
        self,
        capacity_bytes: int,
        stats: Optional[IOStats] = None,
        on_evict: Optional[EvictionCallback] = None,
    ) -> None:
        if capacity_bytes < 0:
            raise StorageError("capacity_bytes must be non-negative")
        self.capacity_bytes = int(capacity_bytes)
        self.stats = stats if stats is not None else IOStats()
        self._on_evict = on_evict
        self._entries: "OrderedDict[Hashable, bytes]" = OrderedDict()
        self._bytes_used = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[bytes]:
        """Return the cached payload or ``None`` (counting hit / miss)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.cache_hits += 1
            return self._entries[key]
        self.stats.cache_misses += 1
        return None

    def put(self, key: Hashable, payload: bytes) -> None:
        """Insert or refresh an entry, evicting LRU entries as needed."""
        if len(payload) > self.capacity_bytes:
            # The item can never fit; treat it as uncacheable but still
            # notify the eviction callback so it is not silently lost.
            if self._on_evict is not None:
                self._on_evict(key, payload)
            return
        if key in self._entries:
            self._bytes_used -= len(self._entries[key])
            del self._entries[key]
        self._entries[key] = payload
        self._bytes_used += len(payload)
        self._entries.move_to_end(key)
        self._evict_to_budget()

    def pop(self, key: Hashable) -> Optional[bytes]:
        """Remove and return an entry without invoking the callback."""
        payload = self._entries.pop(key, None)
        if payload is not None:
            self._bytes_used -= len(payload)
        return payload

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes_used(self) -> int:
        return self._bytes_used

    def items(self) -> Iterator[Tuple[Hashable, bytes]]:
        return iter(list(self._entries.items()))

    def flush(self) -> None:
        """Evict everything (invoking the callback for each entry)."""
        while self._entries:
            self._evict_one()

    def resize(self, capacity_bytes: int) -> None:
        """Change the byte budget, evicting immediately if it shrank."""
        if capacity_bytes < 0:
            raise StorageError("capacity_bytes must be non-negative")
        self.capacity_bytes = int(capacity_bytes)
        self._evict_to_budget()

    # ------------------------------------------------------------------
    def _evict_to_budget(self) -> None:
        while self._bytes_used > self.capacity_bytes and self._entries:
            self._evict_one()

    def _evict_one(self) -> None:
        key, payload = self._entries.popitem(last=False)
        self._bytes_used -= len(payload)
        if self._on_evict is not None:
            try:
                self._on_evict(key, payload)
            except Exception:
                # The write-back failed: the payload exists nowhere but
                # here, so losing the entry would be silent data loss.
                # Reinsert it at the MRU end (the next eviction sweep
                # picks a different victim) and let the error surface.
                self._entries[key] = payload
                self._bytes_used += len(payload)
                raise
