"""Hybrid-memory (RAM + simulated disk) substrate.

The paper's hybrid graph streaming model (Section 2.1) gives an
algorithm ``O(polylog V)`` RAM plus ``O(V polylog V)`` disk, where disk
is only accessible in blocks of ``B`` words.  The evaluation then runs
GraphZeppelin, Aspen and Terrace with artificially limited RAM so their
data structures spill to SSD.

This package simulates that environment deterministically:

* :class:`repro.memory.block_device.BlockDevice` -- a block-addressed
  store that counts reads/writes and models sequential vs random access
  latency,
* :class:`repro.memory.cache.LRUCache` -- a byte-budgeted page cache,
* :class:`repro.memory.hybrid.HybridMemory` -- RAM budget + device +
  cache glued together; objects stored through it report how many I/Os
  and how much modelled time their access pattern would cost on an SSD,
* :class:`repro.memory.metrics.IOStats` -- the counters every component
  shares.

Benchmarks that report "on-SSD" behaviour use the modelled time from
this substrate rather than wall-clock time, so results are reproducible
on any machine.
"""

from repro.memory.block_device import BlockDevice, DeviceProfile
from repro.memory.cache import LRUCache
from repro.memory.hybrid import HybridMemory, SketchStore
from repro.memory.metrics import IOStats

__all__ = [
    "BlockDevice",
    "DeviceProfile",
    "HybridMemory",
    "IOStats",
    "LRUCache",
    "SketchStore",
]
