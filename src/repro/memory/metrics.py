"""I/O statistics shared by the external-memory components."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Counters for block-device traffic plus a modelled elapsed time.

    ``modelled_seconds`` accumulates the latency model of the device
    that owns these counters; it is the number every "on-SSD" figure in
    the benchmark harness reports, so results do not depend on the host
    machine's actual storage.
    """

    block_reads: int = 0
    block_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    sequential_accesses: int = 0
    random_accesses: int = 0
    modelled_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Device reads/writes that raised ``OSError`` (each failed attempt
    #: counts once, whether or not a retry later succeeded).
    read_failures: int = 0
    write_failures: int = 0
    #: Failed device calls that were retried by the hybrid memory's
    #: transient-error policy (successful or not).
    io_retries: int = 0
    #: Payloads whose stored digest did not match on read or scrub.
    checksum_failures: int = 0
    #: Blocks whose checksums a ``scrub()`` pass verified.
    blocks_scrubbed: int = 0
    #: Corrupt pages healed from a checkpoint by read-repair.
    pages_repaired: int = 0
    #: Transient memory-pressure events (refused reservations or
    #: injected allocation pressure); the paged pool degrades its
    #: working set instead of raising.
    pressure_events: int = 0
    #: Device calls that completed past their per-operation deadline
    #: (each counts once; retried like any transient failure).
    deadline_misses: int = 0
    #: Device calls rejected without being attempted because the
    #: circuit breaker was open.
    breaker_rejections: int = 0

    @property
    def total_ios(self) -> int:
        return self.block_reads + self.block_writes

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def merged_with(self, other: "IOStats") -> "IOStats":
        """A new IOStats summing this one and ``other``."""
        return IOStats(
            block_reads=self.block_reads + other.block_reads,
            block_writes=self.block_writes + other.block_writes,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            sequential_accesses=self.sequential_accesses + other.sequential_accesses,
            random_accesses=self.random_accesses + other.random_accesses,
            modelled_seconds=self.modelled_seconds + other.modelled_seconds,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            read_failures=self.read_failures + other.read_failures,
            write_failures=self.write_failures + other.write_failures,
            io_retries=self.io_retries + other.io_retries,
            checksum_failures=self.checksum_failures + other.checksum_failures,
            blocks_scrubbed=self.blocks_scrubbed + other.blocks_scrubbed,
            pages_repaired=self.pages_repaired + other.pages_repaired,
            pressure_events=self.pressure_events + other.pressure_events,
            deadline_misses=self.deadline_misses + other.deadline_misses,
            breaker_rejections=self.breaker_rejections + other.breaker_rejections,
        )

    def reset(self) -> None:
        """Zero every counter in place."""
        self.block_reads = 0
        self.block_writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.sequential_accesses = 0
        self.random_accesses = 0
        self.modelled_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.read_failures = 0
        self.write_failures = 0
        self.io_retries = 0
        self.checksum_failures = 0
        self.blocks_scrubbed = 0
        self.pages_repaired = 0
        self.pressure_events = 0
        self.deadline_misses = 0
        self.breaker_rejections = 0

    def diff(self, earlier: dict) -> dict:
        """Per-counter deltas versus an earlier :meth:`snapshot` dict.

        The canonical way to report "what did this phase cost": take a
        snapshot before, run the phase, and ``stats.diff(before)``
        afterwards.  Keys absent from ``earlier`` are treated as zero,
        so a snapshot taken before a counter existed still diffs.
        """
        current = self.snapshot()
        return {key: value - earlier.get(key, 0) for key, value in current.items()}

    def snapshot(self) -> dict:
        """A plain-dict copy, convenient for result tables."""
        return {
            "block_reads": self.block_reads,
            "block_writes": self.block_writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "sequential_accesses": self.sequential_accesses,
            "random_accesses": self.random_accesses,
            "modelled_seconds": self.modelled_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "read_failures": self.read_failures,
            "write_failures": self.write_failures,
            "io_retries": self.io_retries,
            "checksum_failures": self.checksum_failures,
            "blocks_scrubbed": self.blocks_scrubbed,
            "pages_repaired": self.pages_repaired,
            "pressure_events": self.pressure_events,
            "deadline_misses": self.deadline_misses,
            "breaker_rejections": self.breaker_rejections,
        }
