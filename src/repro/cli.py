"""Command-line interface for the GraphZeppelin reproduction.

Four subcommands cover the everyday workflow:

``repro-graph datasets``
    List the Table-10 dataset registry (paper-scale and generated sizes).

``repro-graph generate <name> <out.stream>``
    Generate a dataset and write its dynamic stream to a file (binary by
    default, ``--text`` for the human-readable format).

``repro-graph validate <stream>``
    Check that a stream file obeys the dynamic-graph-stream rules and
    print its statistics.

``repro-graph components <stream>``
    Ingest a stream file with GraphZeppelin and print the connected
    components (optionally comparing against the exact in-memory
    reference with ``--verify``).  ``--distributed K`` splits the
    stream round-robin across K ingestor processes and XOR-merges
    their pool snapshots -- bit-identical to serial ingestion.

Three more cover the snapshot/merge plane:

``repro-graph snapshot <stream> <out.snap>``
    Ingest a stream (or its ``--up-to N`` prefix) and checkpoint the
    engine's pool to a snapshot file.

``repro-graph resume <snapshot> <stream>``
    Reload a checkpoint, continue ingesting the stream from the
    recorded offset, and print the components -- the crash-recovery
    path, bit-identical to an uninterrupted run.

``repro-graph merge <output> <input> [<input> ...]``
    XOR-combine snapshots of disjoint sub-streams into one snapshot
    (by sketch linearity, the snapshot of their union).

And one covers the integrity plane:

``repro-graph scrub <target>``
    Verify the payload digests of a snapshot file, or of every
    generation in a checkpoint directory, without loading any of them
    into a pool.  Exit code 1 when anything is corrupt.  During ingest,
    ``components --scrub-every N`` scrubs the engine's own storage
    every N updates (pairing it with ``--checkpoint-dir`` turns a
    detected corruption into an automatic read-repair), and
    ``--report`` prints the full I/O and integrity counter ledger.

The module is also importable: :func:`main` takes an ``argv`` list,
which is how the tests drive it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.tables import format_bytes, render_table
from repro.baselines.adjacency_matrix import AdjacencyMatrixGraph
from repro.core.config import BufferingMode, GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.generators.datasets import DATASET_SPECS, available_datasets, load_dataset
from repro.observability.log import configure_logging
from repro.streaming.io import (
    read_stream_binary,
    read_stream_text,
    write_stream_binary,
    write_stream_text,
)
from repro.streaming.validation import validate_stream
from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-graph",
        description="GraphZeppelin reproduction: streaming connected components tools",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="structured diagnostics on stderr (-v info, -vv debug)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets_parser = subparsers.add_parser(
        "datasets", help="list the dataset registry (paper Table 10)"
    )
    datasets_parser.add_argument(
        "--scale-reduction", type=int, default=6,
        help="powers of two to shrink each dataset by (default 6)",
    )

    generate_parser = subparsers.add_parser(
        "generate", help="generate a dataset's dynamic stream and write it to a file"
    )
    generate_parser.add_argument("name", choices=available_datasets())
    generate_parser.add_argument("output", type=Path)
    generate_parser.add_argument("--scale-reduction", type=int, default=6)
    generate_parser.add_argument("--seed", type=int, default=0)
    generate_parser.add_argument(
        "--text", action="store_true", help="write the text format instead of binary"
    )

    validate_parser = subparsers.add_parser(
        "validate", help="check a stream file against the dynamic-stream rules"
    )
    validate_parser.add_argument("stream", type=Path)
    validate_parser.add_argument(
        "--text", action="store_true", help="the file is in the text format"
    )

    components_parser = subparsers.add_parser(
        "components", help="compute connected components of a stream file"
    )
    components_parser.add_argument("stream", type=Path)
    components_parser.add_argument(
        "--text", action="store_true", help="the file is in the text format"
    )
    components_parser.add_argument("--seed", type=int, default=0)
    components_parser.add_argument(
        "--buffering", choices=[mode.value for mode in BufferingMode],
        default=BufferingMode.LEAF_GUTTERS.value,
    )
    components_parser.add_argument(
        "--ram-budget-mib", type=float, default=None,
        help="optional RAM budget; sketches beyond it page to the simulated SSD",
    )
    components_parser.add_argument(
        "--query-backend", choices=["vectorized", "scalar"], default="vectorized",
        help="whole-round vectorized Boruvka (default) or the per-component reference",
    )
    components_parser.add_argument(
        "--kernel-backend", choices=["numpy", "native", "auto"], default="numpy",
        help="hot-kernel implementation: pure numpy (default), a compiled "
             "native provider (numba/cc; errors when unavailable), or auto "
             "(native when available, numpy otherwise); bit-identical results",
    )
    components_parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel ingest workers; above 1 the stream is ingested through "
             "the sharded columnar pipeline (or the legacy worker pool)",
    )
    components_parser.add_argument(
        "--parallel-backend", choices=["threads", "processes", "legacy"],
        default="threads",
        help="execution backend of the parallel ingest layer (default threads)",
    )
    components_parser.add_argument(
        "--distributed", type=int, default=None, metavar="K",
        help="split the stream round-robin across K ingestor processes and "
             "XOR-merge their pool snapshots (bit-identical to serial ingest)",
    )
    components_parser.add_argument(
        "--verify", action="store_true",
        help="also ingest into an exact adjacency matrix and compare answers",
    )
    components_parser.add_argument(
        "--show", type=int, default=10, help="how many components to print (largest first)"
    )
    components_parser.add_argument(
        "--checkpoint-dir", type=Path, default=None, metavar="DIR",
        help="write rotating generation-numbered checkpoints into DIR during "
             "ingest; 'resume DIR <stream>' recovers from the newest valid one",
    )
    components_parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint every N ingested updates (default 250000); "
             "requires --checkpoint-dir",
    )
    components_parser.add_argument(
        "--scrub-every", type=int, default=None, metavar="N",
        help="verify all spilled/cached sketch checksums every N ingested "
             "updates (serial ingest only); with --checkpoint-dir a detected "
             "corruption is healed by read-repair instead of aborting",
    )
    components_parser.add_argument(
        "--report", action="store_true",
        help="print the I/O and integrity counter ledger after the run",
    )
    components_parser.add_argument(
        "--metrics-out", type=Path, default=None, metavar="FILE",
        help="write the run's metrics registry to FILE in Prometheus text "
             "exposition format ('-' for stdout)",
    )
    components_parser.add_argument(
        "--trace-out", type=Path, default=None, metavar="FILE",
        help="record spans into a bounded trace ring and write Chrome "
             "trace_event JSON to FILE (load via chrome://tracing)",
    )

    snapshot_parser = subparsers.add_parser(
        "snapshot", help="ingest a stream (prefix) and checkpoint the pool to a file"
    )
    snapshot_parser.add_argument("stream", type=Path)
    snapshot_parser.add_argument("output", type=Path)
    snapshot_parser.add_argument(
        "--text", action="store_true", help="the stream file is in the text format"
    )
    snapshot_parser.add_argument("--seed", type=int, default=0)
    snapshot_parser.add_argument(
        "--up-to", type=int, default=None, metavar="N",
        help="only ingest the first N updates (default: the whole stream); "
             "the snapshot records the offset so 'resume' continues there",
    )
    snapshot_parser.add_argument(
        "--ram-budget-mib", type=float, default=None,
        help="optional RAM budget; the checkpoint streams page by page",
    )
    # Engine flags the snapshot command does not expose follow the
    # components subcommand's defaults; set once so they cannot drift.
    snapshot_parser.set_defaults(
        buffering=BufferingMode.LEAF_GUTTERS.value, query_backend="vectorized",
        workers=1, parallel_backend="threads", kernel_backend="numpy",
    )

    resume_parser = subparsers.add_parser(
        "resume", help="reload a checkpoint, finish the stream, print components"
    )
    resume_parser.add_argument(
        "snapshot", type=Path,
        help="a snapshot file, or a checkpoint directory (the newest valid "
             "generation is recovered, falling back across corrupt ones)",
    )
    resume_parser.add_argument("stream", type=Path)
    resume_parser.add_argument(
        "--text", action="store_true", help="the stream file is in the text format"
    )
    resume_parser.add_argument(
        "--ram-budget-mib", type=float, default=None,
        help="optional RAM budget for the resumed engine",
    )
    resume_parser.add_argument(
        "--show", type=int, default=10, help="how many components to print (largest first)"
    )
    resume_parser.add_argument(
        "--report", action="store_true",
        help="print the I/O and integrity counter ledger after the run",
    )
    resume_parser.add_argument(
        "--metrics-out", type=Path, default=None, metavar="FILE",
        help="write the run's metrics registry to FILE in Prometheus text "
             "exposition format ('-' for stdout)",
    )
    resume_parser.add_argument(
        "--trace-out", type=Path, default=None, metavar="FILE",
        help="record spans into a bounded trace ring and write Chrome "
             "trace_event JSON to FILE (load via chrome://tracing)",
    )

    stats_parser = subparsers.add_parser(
        "stats",
        help="ingest a stream, query once, and print the metrics registry",
    )
    stats_parser.add_argument("stream", type=Path)
    stats_parser.add_argument(
        "--text", action="store_true", help="the file is in the text format"
    )
    stats_parser.add_argument("--seed", type=int, default=0)
    stats_parser.add_argument(
        "--ram-budget-mib", type=float, default=None,
        help="optional RAM budget; sketches beyond it page to the simulated SSD",
    )
    stats_parser.add_argument(
        "--format", choices=["prometheus", "json"], default="prometheus",
        help="exposition format (default prometheus text)",
    )
    stats_parser.set_defaults(
        buffering=BufferingMode.LEAF_GUTTERS.value, query_backend="vectorized",
        workers=1, parallel_backend="threads", kernel_backend="numpy",
    )

    scrub_parser = subparsers.add_parser(
        "scrub", help="verify the payload digests of snapshots/checkpoints"
    )
    scrub_parser.add_argument(
        "target", type=Path,
        help="a snapshot file, or a checkpoint directory (every generation "
             "is verified, newest first)",
    )

    merge_parser = subparsers.add_parser(
        "merge", help="XOR-combine pool snapshots of disjoint sub-streams"
    )
    merge_parser.add_argument("output", type=Path)
    merge_parser.add_argument("inputs", type=Path, nargs="+")
    merge_parser.add_argument(
        "--ram-budget-mib", type=float, default=None,
        help="merge through a RAM-budgeted paged pool instead of in RAM",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose)
    handlers = {
        "datasets": _cmd_datasets,
        "generate": _cmd_generate,
        "validate": _cmd_validate,
        "components": _cmd_components,
        "snapshot": _cmd_snapshot,
        "resume": _cmd_resume,
        "merge": _cmd_merge,
        "scrub": _cmd_scrub,
        "stats": _cmd_stats,
    }
    return handlers[args.command](args)


# ----------------------------------------------------------------------
def _cmd_datasets(args) -> int:
    rows = []
    for name in available_datasets():
        spec = DATASET_SPECS[name]
        shrink = 1 << args.scale_reduction
        rows.append(
            {
                "dataset": name,
                "family": spec.family,
                "paper_nodes": spec.paper_nodes,
                "paper_edges": spec.paper_edges,
                "generated_nodes": max(spec.paper_nodes // shrink, 1),
                "description": spec.description,
            }
        )
    print(render_table(rows, title=f"Dataset registry (scale reduction {args.scale_reduction})"))
    return 0


def _cmd_generate(args) -> int:
    dataset = load_dataset(args.name, scale_reduction=args.scale_reduction, seed=args.seed)
    writer = write_stream_text if args.text else write_stream_binary
    writer(dataset.stream, args.output)
    print(
        f"wrote {args.output}: {dataset.num_nodes} nodes, {dataset.num_edges} edges, "
        f"{len(dataset.stream)} updates"
    )
    return 0


def _read_stream(path: Path, text: bool):
    reader = read_stream_text if text else read_stream_binary
    return reader(path)


def _cmd_validate(args) -> int:
    stream = _read_stream(args.stream, args.text)
    report = validate_stream(stream)
    print(f"stream      : {args.stream}")
    print(f"nodes       : {stream.num_nodes}")
    print(f"updates     : {report.num_updates} "
          f"({report.num_insertions} insertions, {report.num_deletions} deletions)")
    print(f"final edges : {report.final_edge_count}")
    print(f"valid       : {report.valid}")
    if not report.valid:
        print(f"first violation: {report.first_violation}")
        return 1
    return 0


def _print_forest(engine, num_nodes: int, ingest_mode: str, show: int) -> None:
    """The shared tail of every component-printing command."""
    forest = engine.list_spanning_forest()
    components = sorted(forest.components(), key=len, reverse=True)
    print(f"nodes            : {num_nodes}")
    print(f"updates ingested : {engine.updates_processed} ({ingest_mode})")
    print(f"components       : {forest.num_components}")
    print(f"sketch space     : {format_bytes(engine.sketch_bytes())}")
    pool = engine.tensor_pool
    if pool is not None and pool.is_paged:
        page_info = pool.page_stats()
        print(f"page size        : {page_info['nodes_per_page']} nodes / "
              f"{format_bytes(page_info['page_payload_bytes'])} "
              f"({page_info['page_blocks']} blocks)")
        stats = engine.io_stats
        lookups = stats.cache_hits + stats.cache_misses
        print(f"RAM-tier hit rate: {stats.cache_hit_rate:.1%} "
              f"({stats.cache_hits}/{lookups} lookups, "
              f"{page_info['resident_pages']}/{page_info['num_pages']} pages resident)")
    if engine.io_stats is not None:
        print(f"modelled disk I/O: {engine.io_stats.total_ios} block accesses, "
              f"{engine.io_stats.modelled_seconds:.3f}s")
    for position, component in enumerate(components[:show], start=1):
        members = sorted(component)
        preview = ", ".join(map(str, members[:12]))
        suffix = ", ..." if len(members) > 12 else ""
        print(f"  component {position:3d} (size {len(members):5d}): {preview}{suffix}")


def _ram_budget_bytes(args) -> Optional[int]:
    """The --ram-budget-mib flag as bytes (None = everything in RAM)."""
    if args.ram_budget_mib is None:
        return None
    return int(args.ram_budget_mib * 1024 * 1024)


def _engine_config(args, **overrides) -> GraphZeppelinConfig:
    """Build an engine config from the flags shared by stream commands.

    Subcommands that do not expose every engine flag supply the shared
    defaults via ``parser.set_defaults`` at parser-construction time.
    """
    settings = dict(
        buffering=BufferingMode(args.buffering),
        ram_budget_bytes=_ram_budget_bytes(args),
        seed=args.seed,
        query_backend=args.query_backend,
        kernel_backend=getattr(args, "kernel_backend", "numpy"),
        num_workers=max(args.workers, 1),
        parallel_backend=args.parallel_backend,
    )
    settings.update(overrides)
    return GraphZeppelinConfig(**settings)


def _attach_cli_checkpointer(args, engine):
    """Wire --checkpoint-dir/--checkpoint-every onto an engine (or None)."""
    if args.checkpoint_dir is None:
        return None
    from repro.resilience.checkpoint import DEFAULT_EVERY_N_UPDATES, CheckpointPolicy

    every = args.checkpoint_every or DEFAULT_EVERY_N_UPDATES
    return engine.attach_checkpointer(
        args.checkpoint_dir, policy=CheckpointPolicy(every_n_updates=every)
    )


def _print_checkpointer(checkpointer) -> None:
    if checkpointer is None:
        return
    print(f"checkpoints      : {checkpointer.checkpoints_written} written to "
          f"{checkpointer.directory} (generation {checkpointer.generation}, "
          f"{checkpointer.checkpoint_failures} failed)")


#: Histograms the --report ledger summarises, in print order (any that
#: recorded nothing are skipped).
_REPORT_SPANS = (
    "ingest.batch",
    "ingest.fold",
    "query.round",
    "page.pin",
    "device.read",
    "device.write",
    "checkpoint.write",
    "scrub.pass",
)


def _print_io_report(engine, checkpointer=None) -> None:
    """The --report ledger: every fault and integrity counter in one place.

    Counters come from the same :class:`IOStats` snapshot and metrics
    registry that ``stats`` / ``--metrics-out`` expose, so the ledger
    and the exposition formats can never disagree.
    """
    health = engine.health()
    snap = engine.metrics()
    print(f"kernel backend   : {health['kernel_backend']} "
          f"(requested {engine.config.kernel_backend})")
    stats = engine.io_stats
    if stats is None:
        print("io report        : engine is fully in RAM (no byte tier)")
    else:
        counters = stats.snapshot()
        print(f"io failures      : {counters['read_failures']} read, "
              f"{counters['write_failures']} write, "
              f"{counters['io_retries']} retried")
        print(f"integrity        : {counters['checksum_failures']} checksum failures, "
              f"{counters['blocks_scrubbed']} blocks scrubbed, "
              f"{counters['pages_repaired']} pages repaired")
        print(f"overload         : {counters['pressure_events']} pressure events, "
              f"{counters['deadline_misses']} deadline misses, "
              f"{counters['breaker_rejections']} breaker rejections")
    breaker = health.get("breaker")
    if breaker is not None:
        print(f"circuit breaker  : {breaker['state']} "
              f"(opened {breaker['times_opened']}x, "
              f"{breaker['probes']} half-open probes)")
    page_stats = health.get("page_stats")
    if page_stats is not None and page_stats.get("pressure_degradations"):
        print(f"working set      : degraded {page_stats['pressure_degradations']}x "
              f"({page_stats['resident_pages']}/{page_stats['num_pages']} "
              f"pages resident)")
    if checkpointer is not None:
        print(f"checkpoint errors: {checkpointer.checkpoint_failures} writes "
              f"failed, {checkpointer.rotation_failures} rotations failed")
    for name in _REPORT_SPANS:
        hist = snap.histograms.get(name)
        if hist is None or hist.count == 0:
            continue
        print(f"span {name:<12}: {hist.count} x, "
              f"p50 {hist.quantile(0.50) * 1e3:.3f}ms, "
              f"p99 {hist.quantile(0.99) * 1e3:.3f}ms, "
              f"total {hist.sum:.3f}s")
    print(f"health           : {health['status']}")


def _install_cli_trace(args) -> None:
    """Install the process trace ring when --trace-out was requested."""
    if getattr(args, "trace_out", None) is not None:
        from repro.observability.tracing import install_trace_ring

        install_trace_ring()


def _write_observability_outputs(args, engine) -> None:
    """Honour --metrics-out / --trace-out after a run."""
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out is not None:
        text = engine.metrics("prometheus")
        if str(metrics_out) == "-":
            print(text, end="")
        else:
            metrics_out.write_text(text)
            print(f"metrics          : wrote {metrics_out}")
    trace_out = getattr(args, "trace_out", None)
    if trace_out is not None:
        import json

        from repro.observability.tracing import chrome_trace

        trace = chrome_trace()
        trace_out.write_text(json.dumps(trace))
        print(f"trace            : wrote {trace_out} "
              f"({len(trace['traceEvents'])} spans)")


def _cmd_components(args) -> int:
    stream = _read_stream(args.stream, args.text)
    config = _engine_config(args)
    _install_cli_trace(args)
    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        print("error: --checkpoint-every requires --checkpoint-dir")
        return 1
    if args.checkpoint_dir is not None and args.distributed is not None:
        print("error: --checkpoint-dir does not combine with --distributed "
              "(worker snapshots already checkpoint each slice)")
        return 1
    if args.scrub_every is not None:
        if args.scrub_every < 1:
            print("error: --scrub-every must be at least 1")
            return 1
        if args.distributed is not None or args.workers > 1:
            print("error: --scrub-every needs serial ingest (scrubbing pauses "
                  "the stream at exact update counts)")
            return 1
    if args.distributed is not None:
        from repro.distributed.multi_ingestor import distributed_ingest

        engine, report = distributed_ingest(
            stream.edge_array(),
            stream.num_nodes,
            config=config,
            num_ingestors=max(args.distributed, 1),
        )
        ingest_mode = (
            f"distributed x{report.num_ingestors} "
            f"(ingest {report.ingest_seconds:.2f}s, merge {report.merge_seconds:.2f}s, "
            f"snapshots {format_bytes(report.snapshot_bytes)})"
        )
        _print_forest(engine, stream.num_nodes, ingest_mode, args.show)
        if args.report:
            _print_io_report(engine)
        _write_observability_outputs(args, engine)
        return _verify_components(args, stream, engine)
    engine = GraphZeppelin(stream.num_nodes, config=config)
    checkpointer = _attach_cli_checkpointer(args, engine)
    if args.workers > 1:
        backend = args.parallel_backend
        pool = engine.tensor_pool
        if backend == "processes" and pool is not None and pool.is_paged:
            # Page-affine sharded ingest folds pages in place; pages
            # cannot migrate to shared memory, so workers are threads.
            print("note: paged out-of-core pool folds in place; "
                  "using the threads backend")
            backend = "threads"
        with engine.parallel_ingestor(backend=backend) as ingestor:
            if backend == "legacy":
                ingestor.ingest(stream)
            else:
                ingestor.ingest_stream(stream.edge_array_chunks())
        # Report what actually ran: the sharded backends clamp the
        # worker count to the usable cores.
        effective = getattr(ingestor, "effective_workers", args.workers)
        ingest_mode = f"{backend} x{effective}"
        if effective != args.workers:
            ingest_mode += f" (clamped from {args.workers})"
    elif args.scrub_every is not None:
        code = _ingest_with_scrubbing(args, stream, engine)
        if code != 0:
            return code
        ingest_mode = f"serial, scrubbed every {args.scrub_every} updates"
    else:
        engine.ingest(stream)
        ingest_mode = "serial"
    _print_forest(engine, stream.num_nodes, ingest_mode, args.show)
    _print_checkpointer(checkpointer)
    if args.report:
        _print_io_report(engine, checkpointer)
    _write_observability_outputs(args, engine)
    return _verify_components(args, stream, engine)


def _ingest_with_scrubbing(args, stream, engine) -> int:
    """Serial ingest punctuated by scrub passes every --scrub-every updates.

    A scrub that finds corrupt pages triggers read-repair when a
    checkpoint directory is available (the healed run continues, and by
    linearity finishes bit-identical to an unfaulted one); without one
    there is nothing to heal from, so the run aborts with exit code 1.
    """
    edges = stream.edge_array()
    for start in range(0, edges.shape[0], args.scrub_every):
        engine.ingest_batch(edges[start : start + args.scrub_every])
        corrupt = engine.scrub_storage()
        if not corrupt:
            continue
        print(f"scrub at update {engine.updates_processed}: "
              f"corrupt pages {corrupt}")
        if args.checkpoint_dir is None:
            print("error: corruption detected and no --checkpoint-dir to "
                  "repair from")
            return 1
        from repro.integrity.repair import repair_pages, find_valid_checkpoint

        path, meta, _ = find_valid_checkpoint(engine, args.checkpoint_dir)
        replayed = repair_pages(engine, corrupt, path, meta, edges)
        print(f"read-repair      : healed {len(corrupt)} page(s) from "
              f"{path.name}, replayed {replayed} suffix folds")
    return 0


def _verify_components(args, stream, engine) -> int:
    if not getattr(args, "verify", False):
        return 0
    reference = AdjacencyMatrixGraph(stream.num_nodes, strict=False)
    for update in stream:
        reference.apply_update(update)
    matches = (
        reference.spanning_forest().partition_signature()
        == engine.list_spanning_forest().partition_signature()
    )
    print(f"matches exact reference: {matches}")
    return 0 if matches else 2


def _cmd_snapshot(args) -> int:
    stream = _read_stream(args.stream, args.text)
    config = _engine_config(args)
    engine = GraphZeppelin(stream.num_nodes, config=config)
    limit = len(stream) if args.up_to is None else min(max(args.up_to, 0), len(stream))
    engine.ingest_batch(stream.edge_array()[:limit])
    meta = engine.save_snapshot(args.output, stream_offset=limit)
    print(f"wrote {args.output}: {meta.num_nodes} nodes, "
          f"{meta.pool_updates} folded updates, stream offset {meta.stream_offset}, "
          f"{format_bytes(args.output.stat().st_size)}")
    return 0


def _cmd_resume(args) -> int:
    from repro.distributed.snapshot import read_snapshot_meta
    from repro.exceptions import RecoveryError, StreamFormatError

    stream = _read_stream(args.stream, args.text)
    _install_cli_trace(args)
    ram_budget = _ram_budget_bytes(args)
    if args.snapshot.is_dir():
        # A checkpoint directory: auto-recover from the newest valid
        # generation, falling back across torn/corrupt ones.
        from repro.resilience.checkpoint import recover_latest

        memory = None
        if ram_budget is not None:
            from repro.memory.hybrid import HybridMemory

            memory = HybridMemory(ram_bytes=ram_budget)
        try:
            engine, snapshot_path, skipped = recover_latest(
                args.snapshot, memory=memory
            )
        except RecoveryError as exc:
            print(f"error: {exc}")
            return 1
        for rejected, reason in skipped:
            print(f"note: skipped {rejected.name}: {reason}")
        print(f"recovered from {snapshot_path}")
    else:
        snapshot_path = args.snapshot
        meta = read_snapshot_meta(snapshot_path)
        if meta.merged:
            # A merged snapshot holds a *union* of sub-streams, not a
            # stream prefix; re-ingesting a stream on top of it would
            # XOR-cancel the updates it already folded.
            print(f"error: {snapshot_path} is a merged snapshot, not a resumable "
                  "checkpoint (its state is a union of sub-streams, not a stream "
                  "prefix); query it via 'merge'/'components' instead")
            return 1
        config = None
        if ram_budget is not None:
            config = GraphZeppelinConfig(
                seed=meta.graph_seed, delta=meta.delta, ram_budget_bytes=ram_budget
            )
        engine = GraphZeppelin.load_snapshot(snapshot_path, config=config)

    # The checkpoint must actually belong to this stream: a recorded
    # offset past the end (or a node-count mismatch) means the stream
    # file is not the one the checkpoint was taken from -- silently
    # ingesting the empty suffix would "succeed" with wrong state.
    if engine.num_nodes != stream.num_nodes:
        raise StreamFormatError(
            f"checkpoint {snapshot_path} was taken over {engine.num_nodes} "
            f"nodes, but {args.stream} declares {stream.num_nodes}"
        )
    offset = engine.resume_offset
    if offset > len(stream):
        raise StreamFormatError(
            f"checkpoint {snapshot_path} records stream offset {offset}, but "
            f"{args.stream} holds only {len(stream)} updates; the stream file "
            "does not match the one the checkpoint was taken from"
        )
    if not read_snapshot_meta(snapshot_path).verified:
        print(f"note: {snapshot_path} is a pre-digest (version-1) snapshot; "
              "its payload loaded unverified")
    remaining = stream.edge_array(start=offset)
    engine.ingest_batch(remaining)
    mode = f"resumed at offset {offset} (+{remaining.shape[0]} updates)"
    _print_forest(engine, stream.num_nodes, mode, args.show)
    if args.report:
        _print_io_report(engine)
    _write_observability_outputs(args, engine)
    return 0


def _cmd_stats(args) -> int:
    """Ingest a stream, query once, and print the metrics exposition."""
    import json

    stream = _read_stream(args.stream, args.text)
    config = _engine_config(args)
    engine = GraphZeppelin(stream.num_nodes, config=config)
    engine.ingest_batch(stream.edge_array())
    engine.list_spanning_forest()
    if args.format == "json":
        print(json.dumps(engine.metrics("json"), indent=2, sort_keys=True))
    else:
        print(engine.metrics("prometheus"), end="")
    return 0


def _cmd_scrub(args) -> int:
    """Verify payload digests of a snapshot file or checkpoint directory."""
    from repro.distributed.snapshot import read_snapshot_meta, verify_snapshot_payload
    from repro.exceptions import CorruptionError, StreamFormatError

    if args.target.is_dir():
        from repro.resilience.checkpoint import list_checkpoints

        paths = [path for _, path in list_checkpoints(args.target)]
        if not paths:
            print(f"error: no checkpoints found in {args.target}")
            return 1
    else:
        paths = [args.target]
    corrupt = 0
    for path in paths:
        try:
            meta = verify_snapshot_payload(path, read_snapshot_meta(path))
        except CorruptionError as exc:
            print(f"{path}: CORRUPT ({exc})")
            corrupt += 1
            continue
        except (StreamFormatError, OSError) as exc:
            print(f"{path}: CORRUPT (unreadable: {exc})")
            corrupt += 1
            continue
        if meta.verified:
            print(f"{path}: ok ({len(meta.stripe_digests)} stripe digests verified)")
        else:
            print(f"{path}: unverified (pre-digest format, version {meta.version})")
    if corrupt:
        print(f"{corrupt}/{len(paths)} file(s) corrupt")
        return 1
    return 0


def _cmd_merge(args) -> int:
    from repro.distributed.snapshot import merge_snapshots, save_pool_snapshot

    ram_budget = _ram_budget_bytes(args)
    memory = None
    if ram_budget is not None:
        from repro.memory.hybrid import HybridMemory

        memory = HybridMemory(ram_bytes=ram_budget)
    pool, meta = merge_snapshots(args.inputs, memory=memory)
    save_pool_snapshot(
        pool,
        args.output,
        stream_offset=meta.stream_offset,
        engine_updates=meta.engine_updates,
        fingerprint=meta.fingerprint,
        merged=True,
    )
    print(f"merged {len(args.inputs)} snapshots -> {args.output}: "
          f"{meta.num_nodes} nodes, {meta.pool_updates} folded updates, "
          f"{format_bytes(args.output.stat().st_size)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
