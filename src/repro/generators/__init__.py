"""Graph and workload generators.

The paper's evaluation uses two families of inputs: dense synthetic
graphs from the Graph500 Kronecker generator (kron13 - kron18) and a
handful of sparse real-world graphs from SNAP / NetworkRepository.
This package regenerates both families -- the Kronecker graphs with the
same R-MAT specification (at configurable, laptop-friendly scales) and
the real-world graphs as synthetic stand-ins with matching size and
degree skew (see DESIGN.md for the substitution rationale).
"""

from repro.generators.erdos_renyi import erdos_renyi_gnm, erdos_renyi_gnp
from repro.generators.kronecker import KroneckerParameters, kronecker_graph
from repro.generators.random_graphs import (
    chung_lu_graph,
    preferential_attachment_graph,
    random_multigraph_edges,
    random_spanning_tree,
)
from repro.generators.datasets import (
    Dataset,
    DATASET_SPECS,
    available_datasets,
    load_dataset,
)

__all__ = [
    "DATASET_SPECS",
    "Dataset",
    "KroneckerParameters",
    "available_datasets",
    "chung_lu_graph",
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "kronecker_graph",
    "load_dataset",
    "preferential_attachment_graph",
    "random_multigraph_edges",
    "random_spanning_tree",
]
