"""Graph500-style Kronecker (R-MAT) graph generator.

The paper's dense inputs (kron13 - kron18) come from the Graph500
specification: a stochastic Kronecker generator parameterised by a
2x2 initiator matrix ``(A, B, C, D)``, with duplicate edges and self
loops pruned afterwards to obtain a simple undirected graph
(Section 6.1).  The same construction is implemented here; the *scale*
(log2 of the node count) and the target density are configurable so
experiments run at laptop scale while keeping the same degree
structure.

The paper's kron graphs are dense -- roughly half of all possible edges
-- which a sampling R-MAT cannot reach efficiently.  For densities
above ~10% of all slots the generator therefore switches to an exact
per-slot acceptance sweep (evaluating the Kronecker probability of
every edge slot), which is feasible at the scales this reproduction
targets and produces the intended "half of all possible edges" graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from repro.exceptions import GraphGenerationError
from repro.types import Edge

#: Default Graph500 initiator probabilities.
GRAPH500_INITIATOR = (0.57, 0.19, 0.19, 0.05)


@dataclass(frozen=True)
class KroneckerParameters:
    """Parameters of one Kronecker graph generation run.

    Attributes
    ----------
    scale:
        log2 of the number of nodes (kron13 has scale 13).
    edge_fraction:
        Target number of edges as a fraction of all ``V*(V-1)/2`` slots.
        The paper's kron graphs have roughly 0.5.
    initiator:
        The 2x2 initiator probabilities ``(A, B, C, D)``; they are
        normalised internally.
    seed:
        Randomness seed.
    """

    scale: int
    edge_fraction: float = 0.5
    initiator: Tuple[float, float, float, float] = GRAPH500_INITIATOR
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise GraphGenerationError("scale must be at least 1")
        if not 0 < self.edge_fraction <= 1:
            raise GraphGenerationError("edge_fraction must be in (0, 1]")
        if len(self.initiator) != 4 or any(p < 0 for p in self.initiator):
            raise GraphGenerationError("initiator must be 4 non-negative probabilities")

    @property
    def num_nodes(self) -> int:
        return 1 << self.scale

    @property
    def target_edges(self) -> int:
        slots = self.num_nodes * (self.num_nodes - 1) // 2
        return max(1, int(slots * self.edge_fraction))


def kronecker_graph(params: KroneckerParameters) -> Tuple[int, List[Edge]]:
    """Generate a simple undirected Kronecker graph.

    Returns ``(num_nodes, edges)`` with canonical (``u < v``) edges and
    no duplicates or self loops.
    """
    num_nodes = params.num_nodes
    slots = num_nodes * (num_nodes - 1) // 2
    rng = np.random.default_rng(params.seed)
    if params.target_edges >= slots:
        return num_nodes, _complete_graph_edges(num_nodes)
    if params.edge_fraction >= 0.1:
        edges = _dense_kronecker(params, rng)
    else:
        edges = _sampled_rmat(params, rng)
    return num_nodes, edges


# ----------------------------------------------------------------------
def _normalised_initiator(params: KroneckerParameters) -> Tuple[float, float, float, float]:
    a, b, c, d = params.initiator
    total = a + b + c + d
    if total <= 0:
        raise GraphGenerationError("initiator probabilities must not all be zero")
    return a / total, b / total, c / total, d / total


def _sampled_rmat(params: KroneckerParameters, rng: np.random.Generator) -> List[Edge]:
    """Classic R-MAT sampling with duplicate / self-loop pruning."""
    a, b, c, d = _normalised_initiator(params)
    scale = params.scale
    target = params.target_edges
    edges: Set[Edge] = set()
    # Oversample: pruning self loops, duplicates and the lower triangle
    # discards a large fraction of samples on skewed initiators.
    max_rounds = 60
    for _ in range(max_rounds):
        need = target - len(edges)
        if need <= 0:
            break
        batch = max(1024, int(need * 2.2))
        rows = np.zeros(batch, dtype=np.int64)
        cols = np.zeros(batch, dtype=np.int64)
        for level in range(scale):
            draws = rng.random(batch)
            # Quadrant choice: A (top-left), B (top-right), C (bottom-left),
            # D (bottom-right).
            right = ((draws >= a) & (draws < a + b)) | (draws >= a + b + c)
            bottom = draws >= a + b
            rows |= bottom.astype(np.int64) << level
            cols |= right.astype(np.int64) << level
        mask = rows != cols
        lo = np.minimum(rows[mask], cols[mask])
        hi = np.maximum(rows[mask], cols[mask])
        for u, v in zip(lo.tolist(), hi.tolist()):
            edges.add((u, v))
            if len(edges) >= target:
                break
    return sorted(edges)


def _dense_kronecker(params: KroneckerParameters, rng: np.random.Generator) -> List[Edge]:
    """Exact per-slot sweep for dense targets.

    Computes the Kronecker edge probability of every slot ``(u, v)`` with
    ``u < v``, scales probabilities so the expected edge count matches
    the target, and accepts each slot independently.
    """
    num_nodes = params.num_nodes
    a, b, c, d = _normalised_initiator(params)
    scale = params.scale

    # log-probability of cell (u, v) = sum over bit positions of the
    # log initiator entry selected by (bit of u, bit of v).
    log_init = np.log(np.array([[a, b], [c, d]], dtype=np.float64) + 1e-300)
    log_probs = np.zeros((num_nodes, num_nodes), dtype=np.float64)
    node_bits = np.arange(num_nodes)
    for level in range(scale):
        row_bit = (node_bits >> level) & 1
        col_bit = (node_bits >> level) & 1
        log_probs += log_init[np.ix_(row_bit, col_bit)]

    upper = np.triu_indices(num_nodes, k=1)
    weights = np.exp(log_probs[upper])
    weights_sum = weights.sum()
    if weights_sum <= 0:
        raise GraphGenerationError("degenerate initiator: all edge probabilities are zero")
    # Scale so the expected number of accepted slots equals the target,
    # clamping individual probabilities at 1.
    probabilities = np.minimum(1.0, weights * (params.target_edges / weights_sum))
    # One correction pass: clamping loses mass, so rescale the unclamped part.
    deficit = params.target_edges - probabilities.sum()
    if deficit > 1:
        unclamped = probabilities < 1.0
        mass = probabilities[unclamped].sum()
        if mass > 0:
            probabilities[unclamped] = np.minimum(
                1.0, probabilities[unclamped] * (1 + deficit / mass)
            )
    accepted = rng.random(probabilities.shape) < probabilities
    lo = upper[0][accepted]
    hi = upper[1][accepted]
    return list(zip(lo.tolist(), hi.tolist()))


def _complete_graph_edges(num_nodes: int) -> List[Edge]:
    return [(u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)]
