"""Skewed random graphs used as stand-ins for the real-world datasets.

The paper's correctness experiments use four sparse real-world graphs
(a peer-to-peer network, a co-purchase graph, a social network and a
web graph).  Without network access those exact datasets cannot be
downloaded, so the dataset registry substitutes graphs with matching
node/edge counts and heavy-tailed degree distributions, produced by the
generators in this module.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from repro.exceptions import GraphGenerationError
from repro.types import Edge, canonical_edge


def chung_lu_graph(
    num_nodes: int,
    num_edges: int,
    exponent: float = 2.5,
    seed: int = 0,
) -> Tuple[int, List[Edge]]:
    """A Chung–Lu style power-law graph with roughly ``num_edges`` edges.

    Node weights follow ``w_i ~ (i + 1)^(-1/(exponent - 1))``; edges are
    sampled by picking both endpoints proportionally to weight, which
    yields an expected degree sequence with a power-law tail.
    """
    if num_nodes < 2:
        raise GraphGenerationError("num_nodes must be at least 2")
    if exponent <= 1:
        raise GraphGenerationError("exponent must be greater than 1")
    max_edges = num_nodes * (num_nodes - 1) // 2
    num_edges = min(num_edges, max_edges)
    rng = np.random.default_rng(seed)

    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    probabilities = weights / weights.sum()

    edges: Set[Edge] = set()
    attempts = 0
    max_attempts = 40 * max(num_edges, 1)
    while len(edges) < num_edges and attempts < max_attempts:
        remaining = num_edges - len(edges)
        batch = max(256, int(remaining * 1.6))
        us = rng.choice(num_nodes, size=batch, p=probabilities)
        vs = rng.choice(num_nodes, size=batch, p=probabilities)
        for u, v in zip(us.tolist(), vs.tolist()):
            attempts += 1
            if u == v:
                continue
            edges.add(canonical_edge(u, v))
            if len(edges) >= num_edges:
                break
    return num_nodes, sorted(edges)


def preferential_attachment_graph(
    num_nodes: int,
    edges_per_node: int = 4,
    seed: int = 0,
) -> Tuple[int, List[Edge]]:
    """A Barabási–Albert style preferential-attachment graph."""
    if num_nodes < 2:
        raise GraphGenerationError("num_nodes must be at least 2")
    if edges_per_node < 1:
        raise GraphGenerationError("edges_per_node must be at least 1")
    rng = np.random.default_rng(seed)
    edges: Set[Edge] = set()
    # Repeated-endpoint list: picking uniformly from it is equivalent to
    # degree-proportional sampling.
    endpoint_pool: List[int] = [0]
    for node in range(1, num_nodes):
        targets: Set[int] = set()
        wanted = min(edges_per_node, node)
        while len(targets) < wanted:
            target = endpoint_pool[int(rng.integers(0, len(endpoint_pool)))]
            if target != node:
                targets.add(target)
        for target in targets:
            edges.add(canonical_edge(node, target))
            endpoint_pool.append(target)
            endpoint_pool.append(node)
        if not targets:
            endpoint_pool.append(node)
    return num_nodes, sorted(edges)


def random_multigraph_edges(num_nodes: int, count: int, seed: int = 0) -> np.ndarray:
    """Up to ``count`` uniform random edges as an ``(N, 2)`` int64 array.

    The standard workload of the ingest benchmarks and the sharded
    parallel-ingest tests: endpoints drawn independently (so repeated
    edges -- Z_2 toggles -- occur naturally), self loops dropped, no
    canonicalisation.  Feed it straight to
    :meth:`~repro.core.graph_zeppelin.GraphZeppelin.ingest_batch`.
    """
    if num_nodes < 2:
        raise GraphGenerationError("a graph needs at least two nodes")
    rng = np.random.default_rng(seed)
    u = rng.integers(0, num_nodes, count)
    v = rng.integers(0, num_nodes, count)
    keep = u != v
    return np.stack([u[keep], v[keep]], axis=1).astype(np.int64)


def random_spanning_tree(num_nodes: int, seed: int = 0) -> Tuple[int, List[Edge]]:
    """A uniformly-random-ish spanning tree (random attachment order).

    Useful in tests: the result is guaranteed connected with exactly
    ``num_nodes - 1`` edges.
    """
    if num_nodes < 1:
        raise GraphGenerationError("num_nodes must be at least 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_nodes)
    edges = []
    for position in range(1, num_nodes):
        parent_position = int(rng.integers(0, position))
        edges.append(canonical_edge(int(order[position]), int(order[parent_position])))
    return num_nodes, edges
