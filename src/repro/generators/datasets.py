"""The dataset registry: Table 10 workloads at reproducible scales.

Each entry mirrors one row of Figure 10 in the paper.  The Kronecker
entries use the Graph500 generator at a configurable scale factor
(paper scale minus ``scale_reduction``), because the full kron17/kron18
streams contain billions of updates -- far beyond what a pure-Python
single-machine run can ingest in reasonable time.  The real-world
datasets are replaced by synthetic graphs with the same shape (node
count, edge count, heavy-tailed degrees), scaled by the same factor.

The registry produces both the static graph and the insert/delete
stream obtained through the paper's conversion procedure
(:func:`repro.streaming.generator.graph_to_stream`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.exceptions import GraphGenerationError
from repro.generators.erdos_renyi import erdos_renyi_gnm
from repro.generators.kronecker import KroneckerParameters, kronecker_graph
from repro.generators.random_graphs import chung_lu_graph, preferential_attachment_graph
from repro.streaming.generator import StreamConversionSettings, graph_to_stream
from repro.streaming.stream import GraphStream
from repro.types import Edge

#: Default number of scale steps to shrink the paper's kron graphs by.
DEFAULT_SCALE_REDUCTION = 6


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one dataset in the registry."""

    name: str
    #: 'kronecker' or 'real-world-standin'.
    family: str
    #: Node count in the paper (for the EXPERIMENTS.md comparison).
    paper_nodes: int
    #: Edge count in the paper.
    paper_edges: int
    #: Stream length in the paper.
    paper_stream_updates: int
    #: Short description used in tables.
    description: str = ""


@dataclass
class Dataset:
    """A generated dataset: the static graph plus its update stream."""

    spec: DatasetSpec
    num_nodes: int
    edges: List[Edge]
    stream: GraphStream

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def num_stream_updates(self) -> int:
        return len(self.stream)

    def density(self) -> float:
        """Fraction of all possible edges present in the final graph."""
        slots = self.num_nodes * (self.num_nodes - 1) / 2
        return self.num_edges / slots if slots else 0.0


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "kron13": DatasetSpec(
        "kron13", "kronecker", 2**13, int(1.7e7), int(1.8e7), "Graph500 scale-13 dense graph"
    ),
    "kron15": DatasetSpec(
        "kron15", "kronecker", 2**15, int(2.7e8), int(2.8e8), "Graph500 scale-15 dense graph"
    ),
    "kron16": DatasetSpec(
        "kron16", "kronecker", 2**16, int(1.1e9), int(1.1e9), "Graph500 scale-16 dense graph"
    ),
    "kron17": DatasetSpec(
        "kron17", "kronecker", 2**17, int(4.3e9), int(4.5e9), "Graph500 scale-17 dense graph"
    ),
    "kron18": DatasetSpec(
        "kron18", "kronecker", 2**18, int(1.7e10), int(1.8e10), "Graph500 scale-18 dense graph"
    ),
    "p2p-gnutella": DatasetSpec(
        "p2p-gnutella", "real-world-standin", 63_000, 150_000, 290_000,
        "Gnutella peer-to-peer network stand-in",
    ),
    "rec-amazon": DatasetSpec(
        "rec-amazon", "real-world-standin", 92_000, 130_000, 250_000,
        "Amazon co-purchase graph stand-in",
    ),
    "google-plus": DatasetSpec(
        "google-plus", "real-world-standin", 110_000, 14_000_000, 27_000_000,
        "Google Plus social network stand-in",
    ),
    "web-uk": DatasetSpec(
        "web-uk", "real-world-standin", 130_000, 12_000_000, 23_000_000,
        "UK web graph stand-in",
    ),
}


def available_datasets() -> List[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(DATASET_SPECS)


def load_dataset(
    name: str,
    scale_reduction: int = DEFAULT_SCALE_REDUCTION,
    seed: int = 0,
    stream_settings: StreamConversionSettings | None = None,
) -> Dataset:
    """Generate a dataset (graph + stream) from the registry.

    Parameters
    ----------
    name:
        One of :func:`available_datasets`.
    scale_reduction:
        How many powers of two to shrink the dataset by relative to the
        paper (both node and edge counts); 0 reproduces the paper's
        sizes, the default of 6 shrinks kron13 from 8192 to 128 nodes.
    seed:
        Seed for both graph generation and stream conversion.
    stream_settings:
        Overrides for the graph-to-stream conversion.
    """
    if name not in DATASET_SPECS:
        raise GraphGenerationError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    if scale_reduction < 0:
        raise GraphGenerationError("scale_reduction must be non-negative")
    spec = DATASET_SPECS[name]
    settings = stream_settings or StreamConversionSettings(
        seed=seed, disconnect_nodes=min(8, max(2, spec.paper_nodes >> (scale_reduction + 4)))
    )

    if spec.family == "kronecker":
        scale = int(math.log2(spec.paper_nodes)) - scale_reduction
        if scale < 3:
            raise GraphGenerationError(
                f"scale_reduction={scale_reduction} shrinks {name} below 8 nodes"
            )
        params = KroneckerParameters(scale=scale, edge_fraction=0.5, seed=seed)
        num_nodes, edges = kronecker_graph(params)
    else:
        shrink = 1 << scale_reduction
        num_nodes = max(64, spec.paper_nodes // shrink)
        num_edges = max(num_nodes, spec.paper_edges // shrink)
        num_nodes, edges = _real_world_standin(name, num_nodes, num_edges, seed)

    stream = graph_to_stream(num_nodes, edges, settings=settings, name=name)
    return Dataset(spec=spec, num_nodes=num_nodes, edges=edges, stream=stream)


def _real_world_standin(
    name: str, num_nodes: int, num_edges: int, seed: int
) -> Tuple[int, List[Edge]]:
    """Pick a generator whose structure matches the named dataset."""
    generators: Dict[str, Callable[[], Tuple[int, List[Edge]]]] = {
        # Peer-to-peer: near-uniform sparse random graph.
        "p2p-gnutella": lambda: erdos_renyi_gnm(num_nodes, num_edges, seed=seed),
        # Co-purchase graph: sparse, low average degree, mild skew.
        "rec-amazon": lambda: preferential_attachment_graph(
            num_nodes, edges_per_node=max(1, num_edges // max(num_nodes, 1)), seed=seed
        ),
        # Social network: heavy-tailed degrees, denser.
        "google-plus": lambda: chung_lu_graph(num_nodes, num_edges, exponent=2.2, seed=seed),
        # Web graph: heavy-tailed, denser still.
        "web-uk": lambda: chung_lu_graph(num_nodes, num_edges, exponent=2.0, seed=seed),
    }
    if name not in generators:
        raise GraphGenerationError(f"no stand-in generator registered for {name!r}")
    return generators[name]()
