"""Erdős–Rényi random graphs (G(n, p) and G(n, m))."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import GraphGenerationError
from repro.types import Edge


def erdos_renyi_gnp(num_nodes: int, probability: float, seed: int = 0) -> Tuple[int, List[Edge]]:
    """G(n, p): every possible edge is present independently with ``p``.

    Vectorised over the upper triangle, so dense graphs on a few
    thousand nodes generate in milliseconds.
    """
    if num_nodes < 1:
        raise GraphGenerationError("num_nodes must be at least 1")
    if not 0 <= probability <= 1:
        raise GraphGenerationError("probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    rows, cols = np.triu_indices(num_nodes, k=1)
    mask = rng.random(rows.shape) < probability
    edges = list(zip(rows[mask].tolist(), cols[mask].tolist()))
    return num_nodes, edges


def erdos_renyi_gnm(num_nodes: int, num_edges: int, seed: int = 0) -> Tuple[int, List[Edge]]:
    """G(n, m): exactly ``num_edges`` distinct edges chosen uniformly."""
    if num_nodes < 1:
        raise GraphGenerationError("num_nodes must be at least 1")
    max_edges = num_nodes * (num_nodes - 1) // 2
    if not 0 <= num_edges <= max_edges:
        raise GraphGenerationError(
            f"num_edges must be in [0, {max_edges}] for {num_nodes} nodes"
        )
    rng = np.random.default_rng(seed)
    # Sample distinct edge slots by index into the upper triangle.
    slots = rng.choice(max_edges, size=num_edges, replace=False)
    edges = [_slot_to_edge(int(slot), num_nodes) for slot in slots]
    return num_nodes, edges


def _slot_to_edge(slot: int, num_nodes: int) -> Edge:
    """Map a triangular slot index to its ``(u, v)`` edge (u < v)."""
    # Row u owns (num_nodes - 1 - u) slots; walk rows until the slot fits.
    u = 0
    remaining = slot
    row_size = num_nodes - 1
    while remaining >= row_size:
        remaining -= row_size
        u += 1
        row_size -= 1
    v = u + 1 + remaining
    return (u, v)
