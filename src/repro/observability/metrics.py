"""Low-overhead metrics primitives and the process-wide registry.

Three instrument kinds, all ``__slots__`` objects so the hot path is a
couple of attribute loads:

* :class:`Counter` -- monotonically increasing event total.
* :class:`Gauge` -- point-in-time level (set/add); merges take the max.
* :class:`Histogram` -- fixed log-spaced latency buckets (seconds) with
  running sum and count; buckets add under merge, so merge is
  associative and commutative like the XOR sketches themselves.

The :class:`MetricsRegistry` hands out instruments by name
(create-or-get under a lock, lock-free thereafter) and turns into a
picklable :class:`MetricsSnapshot` on demand.  One process-wide default
registry exists per process; it is *never replaced*, only enabled or
disabled, so instrumentation sites may safely cache instrument handles.

Thread-safety note: increments are plain ``+=`` on purpose.  Under
free-threading two racing increments may lose one -- acceptable for
telemetry -- while cross-process aggregation is exact because each
worker process owns a private registry whose snapshot is merged once.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "counter",
    "default_registry",
    "disable",
    "enable",
    "enabled",
    "gauge",
]

# Log-spaced seconds: 1us .. 10s, four buckets per decade.  Wide enough
# for a single page pin and a whole chaos soak in the same histogram.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (exp / 4.0), 12) for exp in range(-24, 5)
)


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time level; merged snapshots keep the max."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket latency histogram over seconds.

    ``counts`` has ``len(bounds) + 1`` slots; the final slot is the
    +Inf overflow bucket.  ``observe`` is a single bisect plus three
    in-place updates.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    def __init__(
        self, name: str, bounds: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable, picklable view of one histogram."""

    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]
    sum: float
    count: int

    def merged_with(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            sum=self.sum + other.sum,
            count=self.count + other.count,
        )

    def quantile(self, q: float) -> float:
        """Upper bucket bound at quantile ``q`` (0..1); 0.0 when empty."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")


@dataclass
class MetricsSnapshot:
    """Picklable point-in-time copy of a registry.

    Merges associatively: counters add, gauges take the max (levels,
    not totals), histogram buckets add.  Travels through
    ``DistributedReport`` / ``ChaosReport`` exactly like pool
    snapshots travel through the distributed merge.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)

    def merged_with(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges.get(name, value), value)
        histograms = dict(self.histograms)
        for name, hist in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = hist if mine is None else mine.merged_with(hist)
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)


class MetricsRegistry:
    """Named instrument store with a disabled fast path.

    ``enabled`` gates the tracing layer: :func:`repro.observability.tracing.span`
    checks it once and returns a shared no-op timer when false, so a
    disabled registry costs one attribute read per hot site.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms", "_lock")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(name, Counter(name))
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(name, Gauge(name))
        return inst

    def histogram(
        self, name: str, bounds: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(name, Histogram(name, bounds))
        return inst

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                counters={n: c.value for n, c in self._counters.items()},
                gauges={n: g.value for n, g in self._gauges.items()},
                histograms={
                    n: HistogramSnapshot(
                        bounds=h.bounds,
                        counts=tuple(h.counts),
                        sum=h.sum,
                        count=h.count,
                    )
                    for n, h in self._histograms.items()
                },
            )

    def absorb(self, snap: MetricsSnapshot) -> None:
        """Merge a snapshot (e.g. from a worker process) into live state."""
        for name, value in snap.counters.items():
            self.counter(name).inc(value)
        for name, value in snap.gauges.items():
            g = self.gauge(name)
            g.value = max(g.value, value)
        for name, hist in snap.histograms.items():
            mine = self.histogram(name, hist.bounds)
            if mine.bounds != hist.bounds:
                raise ValueError("cannot absorb histogram with different buckets")
            for i, c in enumerate(hist.counts):
                mine.counts[i] += c
            mine.sum += hist.sum
            mine.count += hist.count

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_default = MetricsRegistry(enabled=True)


def default_registry() -> MetricsRegistry:
    """The process-wide registry.  Identity is stable for the process
    lifetime -- instrumentation sites may cache instrument handles."""
    return _default


def enable() -> None:
    _default.enabled = True


def disable() -> None:
    _default.enabled = False


def enabled() -> bool:
    return _default.enabled


def counter(name: str) -> Counter:
    """Shorthand for ``default_registry().counter(name)``."""
    return _default.counter(name)


def gauge(name: str) -> Gauge:
    """Shorthand for ``default_registry().gauge(name)``."""
    return _default.gauge(name)
