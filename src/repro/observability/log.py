"""Structured logging for the repro engine.

Thin veneer over stdlib ``logging`` (and *only* stdlib -- this module
must stay import-cycle-free because ``repro.kernels`` loads it during
backend resolution, before the rest of the package exists).

All engine diagnostics flow through loggers under the ``repro`` root;
:func:`configure_logging` maps the CLI ``-v/--verbose`` count onto
levels (0 = WARNING, 1 = INFO, 2+ = DEBUG) with a single structured
``key=value`` line format.  :func:`log_event` renders ``fields`` in
deterministic order so log lines are greppable and diffable.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["configure_logging", "get_logger", "log_event"]

_ROOT = "repro"
_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"
_configured = False


def get_logger(name: str) -> logging.Logger:
    """Logger under the ``repro`` hierarchy; ``name`` may already start
    with ``repro`` (e.g. ``__name__`` inside the package)."""
    if name != _ROOT and not name.startswith(_ROOT + "."):
        name = f"{_ROOT}.{name}"
    return logging.getLogger(name)


def configure_logging(verbosity: int = 0, stream=None) -> None:
    """Attach one stderr handler to the ``repro`` root logger.

    Idempotent: calling again only adjusts the level, so repeated CLI
    invocations in one process (tests) don't stack handlers.
    """
    global _configured
    root = logging.getLogger(_ROOT)
    level = logging.WARNING
    if verbosity == 1:
        level = logging.INFO
    elif verbosity >= 2:
        level = logging.DEBUG
    if not _configured:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    root.setLevel(level)


def log_event(logger: logging.Logger, level: int, event: str, **fields) -> None:
    """Emit ``event key=value ...`` with fields in insertion order."""
    if not logger.isEnabledFor(level):
        return
    if fields:
        rendered = " ".join(f"{k}={v}" for k, v in fields.items())
        logger.log(level, "%s %s", event, rendered)
    else:
        logger.log(level, "%s", event)
