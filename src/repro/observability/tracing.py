"""Span-based tracing feeding latency histograms and a trace ring.

:func:`span` is the single instrumentation primitive used across the
codebase::

    with span("ingest.fold"):
        ... hot work ...

When the default registry is disabled it returns a shared no-op
context manager -- no allocation, no clock read.  When enabled it
records the wall duration into ``registry.histogram(name)`` and, if a
:class:`TraceRing` is installed, appends a complete-event record that
:func:`chrome_trace` exports as Chrome ``trace_event`` JSON
(load via ``chrome://tracing`` or Perfetto).
"""

from __future__ import annotations

import os
import threading
from collections import deque
from time import perf_counter
from typing import Deque, List, Optional, Tuple

from repro.observability.metrics import MetricsRegistry, default_registry

__all__ = [
    "TraceRing",
    "chrome_trace",
    "install_trace_ring",
    "span",
    "trace_ring",
]


class TraceRing:
    """Bounded in-memory ring of completed spans.

    Entries are ``(name, start_seconds, duration_seconds, thread_id)``
    tuples; the deque drops the oldest once ``capacity`` is reached, so
    memory stays bounded no matter how long the stream runs.
    """

    __slots__ = ("capacity", "_events")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("trace ring capacity must be positive")
        self.capacity = capacity
        self._events: Deque[Tuple[str, float, float, int]] = deque(maxlen=capacity)

    def record(self, name: str, start: float, duration: float) -> None:
        self._events.append((name, start, duration, threading.get_ident()))

    def events(self) -> List[Tuple[str, float, float, int]]:
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


_ring: Optional[TraceRing] = None


def install_trace_ring(capacity: int = 4096) -> TraceRing:
    """Install (or replace) the process-wide trace ring and return it.

    Pass ``capacity=0``-like removal via :func:`remove_trace_ring`.
    """
    global _ring
    _ring = TraceRing(capacity)
    return _ring


def remove_trace_ring() -> None:
    global _ring
    _ring = None


def trace_ring() -> Optional[TraceRing]:
    return _ring


class _NopTimer:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NopTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NOP = _NopTimer()


class _Span:
    __slots__ = ("_name", "_registry", "_start")

    def __init__(self, name: str, registry: MetricsRegistry) -> None:
        self._name = name
        self._registry = registry

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        start = self._start
        duration = perf_counter() - start
        self._registry.histogram(self._name).observe(duration)
        ring = _ring
        if ring is not None:
            ring.record(self._name, start, duration)


def span(name: str, registry: Optional[MetricsRegistry] = None):
    """Time a block into ``histogram(name)``; no-op when disabled."""
    reg = registry if registry is not None else default_registry()
    if not reg.enabled:
        return _NOP
    return _Span(name, reg)


def chrome_trace(ring: Optional[TraceRing] = None) -> dict:
    """Export a trace ring as Chrome ``trace_event`` JSON (dict form).

    Timestamps are microseconds relative to the earliest span in the
    ring, which is what the Chrome/Perfetto viewers expect.
    """
    ring = ring if ring is not None else _ring
    events = ring.events() if ring is not None else []
    base = min((start for _, start, _, _ in events), default=0.0)
    pid = os.getpid()
    return {
        "displayTimeUnit": "ms",
        "traceEvents": [
            {
                "name": name,
                "ph": "X",
                "ts": (start - base) * 1e6,
                "dur": duration * 1e6,
                "pid": pid,
                "tid": tid,
            }
            for name, start, duration, tid in events
        ],
    }
