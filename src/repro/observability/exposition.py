"""Render a :class:`MetricsSnapshot` for humans and scrapers.

Two formats:

* :func:`prometheus_text` -- Prometheus text exposition (0.0.4): one
  ``# TYPE`` line per metric, cumulative ``_bucket{le=...}`` series
  plus ``_sum`` / ``_count`` for histograms.  Dots in metric names
  become underscores (Prometheus identifier rules).
* :func:`metrics_json` -- plain-dict form for ``--metrics-out`` files
  and the ``stats`` subcommand, stable enough to diff across runs.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.observability.metrics import MetricsSnapshot

__all__ = ["metrics_json", "prometheus_text"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    lines: List[str] = []
    for name in sorted(snapshot.counters):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {snapshot.counters[name]}")
    for name in sorted(snapshot.gauges):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        hist = snapshot.histograms[name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{prom}_sum {repr(hist.sum)}")
        lines.append(f"{prom}_count {hist.count}")
    return "\n".join(lines) + "\n"


def metrics_json(snapshot: MetricsSnapshot) -> Dict[str, object]:
    return {
        "counters": dict(sorted(snapshot.counters.items())),
        "gauges": dict(sorted(snapshot.gauges.items())),
        "histograms": {
            name: {
                "count": hist.count,
                "sum": hist.sum,
                "p50": hist.quantile(0.50),
                "p99": hist.quantile(0.99),
                "buckets": [
                    {"le": bound, "count": count}
                    for bound, count in zip(hist.bounds, hist.counts)
                    if count
                ],
                "overflow": hist.counts[-1],
            }
            for name, hist in sorted(snapshot.histograms.items())
        },
    }
