"""Unified observability plane: metrics, tracing, exposition, logging.

Every subsystem of the engine records into one process-wide
:class:`~repro.observability.metrics.MetricsRegistry` -- counters for
event totals, gauges for point-in-time levels, and fixed-bucket latency
histograms fed by the :func:`~repro.observability.tracing.span` timers
wrapped around every hot site (ingest folds, Boruvka query rounds, page
pin/evict/write-back, device calls, checkpoint writes, scrub/repair,
snapshot save/load/merge, and the distributed worker lifecycle).

Design constraints, in order:

1. **Off is free.**  When the registry is disabled,
   :func:`~repro.observability.tracing.span` returns a shared no-op
   context manager -- no allocation, no clock read -- so the fold hot
   loop pays one attribute check (property-tested zero-allocation).
2. **On is cheap.**  Instrumentation sits at batch/round/page
   granularity, never per edge; the ledgered full-instrumentation
   overhead bound is <= 3% on serial columnar ingest and whole-round
   queries (``benchmarks/bench_observability.py``).
3. **Snapshots merge like pool snapshots.**  A
   :class:`~repro.observability.metrics.MetricsSnapshot` is a picklable
   value object; per-worker registries travel back through
   ``DistributedReport`` / ``ChaosReport`` and merge associatively
   (counters and histogram buckets add, gauges take the max), so the
   merged two-worker totals equal a serial run's -- the same linearity
   story the sketches themselves tell.

Registry state is pure telemetry: it never enters
:meth:`~repro.core.config.GraphZeppelinConfig.sketch_fingerprint` and
never perturbs sketch state (forests are bit-identical with
observability on, off, or merged -- property-tested).
"""

from __future__ import annotations

from repro.observability.exposition import metrics_json, prometheus_text
from repro.observability.log import configure_logging, get_logger, log_event
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    counter,
    default_registry,
    disable,
    enable,
    enabled,
    gauge,
)
from repro.observability.tracing import (
    TraceRing,
    chrome_trace,
    install_trace_ring,
    span,
    trace_ring,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "TraceRing",
    "chrome_trace",
    "configure_logging",
    "counter",
    "default_registry",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_logger",
    "install_trace_ring",
    "log_event",
    "metrics_json",
    "prometheus_text",
    "span",
    "trace_ring",
]
