"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class.  Sketch-specific failures carry
enough context (which sketch, which bucket configuration) to debug the
probabilistic data structures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid or inconsistent parameters."""


class SketchError(ReproError):
    """Base class for sketch-related errors."""


class SketchFailureError(SketchError):
    """A sketch query failed to recover a sample.

    l0-samplers are probabilistic; with probability at most ``delta`` a
    query on a non-zero vector returns no sample.  The connectivity
    algorithm normally tolerates individual failures, but raises this
    error if the overall computation cannot complete.
    """


class IncompatibleSketchError(SketchError, ValueError):
    """Two sketches with different shapes or seeds were combined.

    Linearity (``S(x) + S(y) = S(x + y)``) only holds for sketches built
    with identical hash functions and dimensions.
    """


class StreamFormatError(ReproError, ValueError):
    """A stream file or update sequence is malformed."""


class InvalidStreamError(ReproError, ValueError):
    """A stream violated the dynamic-graph-stream rules.

    The semi-streaming model only allows inserting an edge that is absent
    and deleting an edge that is present (Section 2.1 of the paper).
    """


class StorageError(ReproError):
    """The simulated external-memory substrate was used incorrectly."""


class CorruptionError(StorageError):
    """Stored bytes failed checksum verification (silent data corruption).

    Deliberately not an :class:`OSError`: a checksum mismatch is
    deterministic, so the hybrid memory's transient-error retry policy
    must not retry it — detection propagates immediately so scrub /
    read-repair can heal from a checkpoint instead.
    """


class OverloadError(StorageError):
    """Base class for overload-plane failures (deadlines, circuit breaking)."""


class DeadlineExceededError(OverloadError, TimeoutError):
    """A device operation completed (or failed) past its deadline.

    ``TimeoutError`` is an ``OSError``, so the hybrid memory's
    transient-error retry policy treats a missed deadline like any
    other transient device failure: the operation is retried with
    backoff and only a persistently slow device surfaces the error.
    """


class CircuitOpenError(OverloadError):
    """The device-I/O circuit breaker is open; the call was not attempted.

    Deliberately *not* an ``OSError``: the breaker exists to stop
    hammering a failing device, so the retry policy must not spin on
    rejections -- they propagate immediately and callers degrade
    (policy-driven checkpoints absorb them; ingest surfaces them so the
    caller can back off or recover from a checkpoint).
    """


class WorkerFailure(ReproError, RuntimeError):
    """A distributed ingest worker died and could not be recovered.

    Carries the worker's round-robin index and the size of its stream
    slice so the coordinator's error names exactly which part of the
    stream is unaccounted for.  Built from positional arguments only,
    so instances survive the pickling a process boundary imposes.
    """

    def __init__(self, message: str, worker_index: int = -1, slice_size: int = 0):
        super().__init__(message, worker_index, slice_size)
        self.message = message
        self.worker_index = worker_index
        self.slice_size = slice_size

    def __str__(self) -> str:
        return self.message


class RecoveryError(ReproError):
    """Automatic crash recovery found no usable checkpoint."""


class ConnectivityError(ReproError):
    """The connectivity computation could not produce an answer."""


class GraphGenerationError(ReproError, ValueError):
    """A graph or stream generator was asked for an impossible output."""
