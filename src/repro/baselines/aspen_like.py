"""A simplified Aspen-style dynamic graph store.

Aspen (Dhulipala et al., PLDI 2019) keeps the graph in compressed
purely-functional trees and applies updates in batches that contain
only insertions or only deletions.  This stand-in reproduces the parts
of that design the paper's evaluation depends on:

* a batch-update API (``batch_insert`` / ``batch_delete``) -- the paper
  feeds Aspen batches of 10^6 updates of a single type,
* a compressed in-RAM representation costing a handful of bytes per
  directed edge (sorted numpy arrays of neighbor ids, delta-encoded for
  the space accounting),
* exact connectivity queries (BFS over the adjacency structure),
* out-of-core behaviour: when the structure grows past its RAM budget,
  every touched vertex list is charged random block I/O against the
  hybrid-memory substrate, which is what makes the real system's
  ingestion collapse once it no longer fits in RAM (Figure 12).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.baselines.space_models import ASPEN_BYTES_PER_DIRECTED_EDGE, ASPEN_BYTES_PER_VERTEX
from repro.core.dsu import DisjointSetUnion
from repro.core.spanning_forest import SpanningForest
from repro.exceptions import ConfigurationError
from repro.memory.hybrid import HybridMemory
from repro.types import Edge, canonical_edge


class AspenLike:
    """Batch-parallel dynamic graph store with Aspen's space profile.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    ram_budget_bytes:
        Optional RAM budget; once the structure's modelled size exceeds
        it, vertex accesses are charged random I/O on ``memory``.
    memory:
        Hybrid memory used for the out-of-core accounting (created on
        demand if a budget is given without one).
    """

    def __init__(
        self,
        num_nodes: int,
        ram_budget_bytes: Optional[int] = None,
        memory: Optional[HybridMemory] = None,
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be at least 1")
        self.num_nodes = int(num_nodes)
        self.ram_budget_bytes = ram_budget_bytes
        if memory is not None:
            self.memory = memory
        elif ram_budget_bytes is not None:
            self.memory = HybridMemory(ram_bytes=ram_budget_bytes)
        else:
            self.memory = None
        self._adjacency: Dict[int, Set[int]] = {}
        self._num_edges = 0
        self.batches_applied = 0

    # ------------------------------------------------------------------
    # batch updates (the native Aspen interface)
    # ------------------------------------------------------------------
    def batch_insert(self, edges: Sequence[Edge]) -> int:
        """Insert a batch of edges; duplicates are ignored. Returns #applied."""
        applied = 0
        touched: Set[int] = set()
        for u, v in edges:
            u, v = canonical_edge(u, v)
            self._check_node(v)
            if v in self._adjacency.get(u, ()):
                continue
            self._adjacency.setdefault(u, set()).add(v)
            self._adjacency.setdefault(v, set()).add(u)
            self._num_edges += 1
            applied += 1
            touched.add(u)
            touched.add(v)
        self._charge_batch(touched)
        self.batches_applied += 1
        return applied

    def batch_delete(self, edges: Sequence[Edge]) -> int:
        """Delete a batch of edges; absent edges are ignored. Returns #applied."""
        applied = 0
        touched: Set[int] = set()
        for u, v in edges:
            u, v = canonical_edge(u, v)
            self._check_node(v)
            if v not in self._adjacency.get(u, ()):
                continue
            self._adjacency[u].discard(v)
            self._adjacency[v].discard(u)
            self._num_edges -= 1
            applied += 1
            touched.add(u)
            touched.add(v)
        self._charge_batch(touched)
        self.batches_applied += 1
        return applied

    def insert(self, u: int, v: int) -> None:
        self.batch_insert([(u, v)])

    def delete(self, u: int, v: int) -> None:
        self.batch_delete([(u, v)])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        u, v = canonical_edge(u, v)
        return v in self._adjacency.get(u, ())

    def degree(self, node: int) -> int:
        return len(self._adjacency.get(node, ()))

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def neighbors(self, node: int) -> List[int]:
        return sorted(self._adjacency.get(node, ()))

    def connected_components(self) -> List[Set[int]]:
        return self.spanning_forest().components()

    def spanning_forest(self) -> SpanningForest:
        """Exact spanning forest via BFS from every unvisited node."""
        if self.memory is not None and self._oversubscribed():
            # A full traversal touches every vertex list; charge one
            # random read per vertex whose list lives on disk.
            self.memory.charge_read(self.size_bytes(), sequential=False)
        visited = [False] * self.num_nodes
        forest_edges: List[Edge] = []
        for start in range(self.num_nodes):
            if visited[start]:
                continue
            visited[start] = True
            queue = deque([start])
            while queue:
                node = queue.popleft()
                for neighbor in self._adjacency.get(node, ()):
                    if not visited[neighbor]:
                        visited[neighbor] = True
                        forest_edges.append(canonical_edge(node, neighbor))
                        queue.append(neighbor)
        return SpanningForest.from_edges(self.num_nodes, forest_edges, complete=True)

    def list_spanning_forest(self) -> SpanningForest:
        return self.spanning_forest()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Modelled size: Aspen's compressed-tree space profile."""
        return int(
            self.num_nodes * ASPEN_BYTES_PER_VERTEX
            + 2 * self._num_edges * ASPEN_BYTES_PER_DIRECTED_EDGE
        )

    @property
    def io_stats(self):
        return self.memory.stats if self.memory is not None else None

    def __repr__(self) -> str:
        return f"AspenLike(num_nodes={self.num_nodes}, edges={self._num_edges})"

    # ------------------------------------------------------------------
    def _oversubscribed(self) -> bool:
        return (
            self.ram_budget_bytes is not None
            and self.size_bytes() > self.ram_budget_bytes
        )

    def _charge_batch(self, touched: Iterable[int]) -> None:
        """Charge I/O for the vertex lists a batch touched when out of core."""
        if self.memory is None or not self._oversubscribed():
            return
        overflow_fraction = 1.0 - self.ram_budget_bytes / max(self.size_bytes(), 1)
        for node in touched:
            # Each touched vertex list is read and rewritten; only the
            # fraction of the structure that no longer fits in RAM pays.
            nbytes = ASPEN_BYTES_PER_VERTEX + self.degree(node) * ASPEN_BYTES_PER_DIRECTED_EDGE
            charged = int(nbytes * overflow_fraction)
            if charged <= 0:
                continue
            self.memory.charge_read(charged, sequential=False)
            self.memory.charge_write(charged, sequential=False)

    def _check_node(self, node: int) -> None:
        if node >= self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")
