"""A simplified Terrace-style hierarchical dynamic graph container.

Terrace (Pandey et al., SIGMOD 2021) stores each vertex's neighbors in
a hierarchy chosen by degree: a small inline buffer inside the vertex
record, then a shared packed-memory-array level, then per-vertex
B-trees for very high degrees.  This stand-in keeps that three-level
shape (inline list -> sorted overflow array -> dict "tree"), exposes
batch insertion and *individual* deletion (the paper notes Terrace does
not support batch deletes), and reproduces Terrace's space profile,
which is several times larger per edge than Aspen's.

As with :class:`~repro.baselines.aspen_like.AspenLike`, exceeding the
RAM budget charges random I/O per touched vertex against the hybrid
memory substrate, modelling the paging collapse of Figure 12.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set

from repro.baselines.space_models import (
    TERRACE_BYTES_PER_EDGE,
    TERRACE_BYTES_PER_VERTEX,
    TERRACE_INLINE_SLOTS,
)
from repro.core.spanning_forest import SpanningForest
from repro.exceptions import ConfigurationError
from repro.memory.hybrid import HybridMemory
from repro.types import Edge, canonical_edge


class _VertexContainer:
    """Per-vertex hierarchical neighbor storage."""

    __slots__ = ("inline", "overflow", "tree")

    def __init__(self) -> None:
        self.inline: List[int] = []
        self.overflow: List[int] = []
        self.tree: Optional[Set[int]] = None

    def add(self, neighbor: int) -> bool:
        if self.contains(neighbor):
            return False
        if len(self.inline) < TERRACE_INLINE_SLOTS:
            self.inline.append(neighbor)
            return True
        if self.tree is None and len(self.overflow) < 4 * TERRACE_INLINE_SLOTS:
            # Keep the overflow level sorted (packed-memory-array style).
            self.overflow.append(neighbor)
            self.overflow.sort()
            return True
        if self.tree is None:
            self.tree = set(self.overflow)
            self.overflow = []
        self.tree.add(neighbor)
        return True

    def remove(self, neighbor: int) -> bool:
        if neighbor in self.inline:
            self.inline.remove(neighbor)
            return True
        if neighbor in self.overflow:
            self.overflow.remove(neighbor)
            return True
        if self.tree is not None and neighbor in self.tree:
            self.tree.remove(neighbor)
            return True
        return False

    def contains(self, neighbor: int) -> bool:
        return (
            neighbor in self.inline
            or neighbor in self.overflow
            or (self.tree is not None and neighbor in self.tree)
        )

    def neighbors(self) -> List[int]:
        result = list(self.inline) + list(self.overflow)
        if self.tree is not None:
            result.extend(self.tree)
        return sorted(result)

    def degree(self) -> int:
        return len(self.inline) + len(self.overflow) + (len(self.tree) if self.tree else 0)


class TerraceLike:
    """Hierarchical per-vertex dynamic graph with Terrace's space profile."""

    def __init__(
        self,
        num_nodes: int,
        ram_budget_bytes: Optional[int] = None,
        memory: Optional[HybridMemory] = None,
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be at least 1")
        self.num_nodes = int(num_nodes)
        self.ram_budget_bytes = ram_budget_bytes
        if memory is not None:
            self.memory = memory
        elif ram_budget_bytes is not None:
            self.memory = HybridMemory(ram_bytes=ram_budget_bytes)
        else:
            self.memory = None
        self._vertices: Dict[int, _VertexContainer] = {}
        self._num_edges = 0
        self.batches_applied = 0

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def batch_insert(self, edges: Sequence[Edge]) -> int:
        """Insert a batch of edges (Terrace's native update path)."""
        applied = 0
        touched: Set[int] = set()
        for u, v in edges:
            u, v = canonical_edge(u, v)
            self._check_node(v)
            container_u = self._vertices.setdefault(u, _VertexContainer())
            if container_u.contains(v):
                continue
            container_u.add(v)
            self._vertices.setdefault(v, _VertexContainer()).add(u)
            self._num_edges += 1
            applied += 1
            touched.update((u, v))
        self._charge(touched)
        self.batches_applied += 1
        return applied

    def delete(self, u: int, v: int) -> bool:
        """Delete a single edge (Terrace has no batch-delete path)."""
        u, v = canonical_edge(u, v)
        self._check_node(v)
        container = self._vertices.get(u)
        if container is None or not container.contains(v):
            return False
        container.remove(v)
        self._vertices[v].remove(u)
        self._num_edges -= 1
        self._charge({u, v})
        return True

    def insert(self, u: int, v: int) -> None:
        self.batch_insert([(u, v)])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        u, v = canonical_edge(u, v)
        container = self._vertices.get(u)
        return container is not None and container.contains(v)

    def degree(self, node: int) -> int:
        container = self._vertices.get(node)
        return container.degree() if container else 0

    def neighbors(self, node: int) -> List[int]:
        container = self._vertices.get(node)
        return container.neighbors() if container else []

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def spanning_forest(self) -> SpanningForest:
        if self.memory is not None and self._oversubscribed():
            self.memory.charge_read(self.size_bytes(), sequential=False)
        visited = [False] * self.num_nodes
        forest_edges: List[Edge] = []
        for start in range(self.num_nodes):
            if visited[start]:
                continue
            visited[start] = True
            queue = deque([start])
            while queue:
                node = queue.popleft()
                for neighbor in self.neighbors(node):
                    if not visited[neighbor]:
                        visited[neighbor] = True
                        forest_edges.append(canonical_edge(node, neighbor))
                        queue.append(neighbor)
        return SpanningForest.from_edges(self.num_nodes, forest_edges, complete=True)

    def list_spanning_forest(self) -> SpanningForest:
        return self.spanning_forest()

    def connected_components(self) -> List[Set[int]]:
        return self.spanning_forest().components()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Modelled size using Terrace's per-vertex + per-edge constants."""
        return int(
            self.num_nodes * TERRACE_BYTES_PER_VERTEX
            + 2 * self._num_edges * TERRACE_BYTES_PER_EDGE
        )

    @property
    def io_stats(self):
        return self.memory.stats if self.memory is not None else None

    def __repr__(self) -> str:
        return f"TerraceLike(num_nodes={self.num_nodes}, edges={self._num_edges})"

    # ------------------------------------------------------------------
    def _oversubscribed(self) -> bool:
        return (
            self.ram_budget_bytes is not None
            and self.size_bytes() > self.ram_budget_bytes
        )

    def _charge(self, touched) -> None:
        if self.memory is None or not self._oversubscribed():
            return
        overflow_fraction = 1.0 - self.ram_budget_bytes / max(self.size_bytes(), 1)
        for node in touched:
            nbytes = TERRACE_BYTES_PER_VERTEX + self.degree(node) * TERRACE_BYTES_PER_EDGE
            charged = int(nbytes * overflow_fraction)
            if charged <= 0:
                continue
            self.memory.charge_read(charged, sequential=False)
            self.memory.charge_write(charged, sequential=False)

    def _check_node(self, node: int) -> None:
        if node >= self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")
