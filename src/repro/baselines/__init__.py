"""Baseline systems used by the evaluation harness.

* :class:`repro.baselines.adjacency_matrix.AdjacencyMatrixGraph` -- an
  exact in-memory bit-matrix graph with Kruskal/BFS connectivity; the
  ground truth of the reliability experiment (Section 6.3).
* :class:`repro.baselines.aspen_like.AspenLike` -- a simplified
  compressed dynamic-graph store with Aspen's batch-update API and
  space profile (~a few bytes per directed edge).
* :class:`repro.baselines.terrace_like.TerraceLike` -- a simplified
  hierarchical per-vertex container with Terrace's space profile
  (inline buffer + sorted overflow levels).
* :mod:`repro.baselines.space_models` -- closed-form space accounting
  for every system, used to reproduce the Figure 11 crossover at the
  paper's full scales without materialising terabyte graphs.

The Aspen-like and Terrace-like classes are *stand-ins* (see DESIGN.md):
they reproduce the comparators' space footprints, batch-oriented APIs
and in-RAM/out-of-core behaviour, not their internal engineering.
"""

from repro.baselines.adjacency_matrix import AdjacencyMatrixGraph
from repro.baselines.aspen_like import AspenLike
from repro.baselines.space_models import (
    adjacency_list_bytes,
    adjacency_matrix_bytes,
    aspen_bytes,
    graphzeppelin_bytes,
    space_crossover_table,
    terrace_bytes,
)
from repro.baselines.terrace_like import TerraceLike

__all__ = [
    "AdjacencyMatrixGraph",
    "AspenLike",
    "TerraceLike",
    "adjacency_list_bytes",
    "adjacency_matrix_bytes",
    "aspen_bytes",
    "graphzeppelin_bytes",
    "space_crossover_table",
    "terrace_bytes",
]
