"""Closed-form space models for every system in the evaluation.

Figure 11 of the paper compares the memory footprint of Aspen, Terrace
and GraphZeppelin on the kron13 - kron18 streams, whose full-scale
versions would occupy tens of gigabytes.  Those absolute sizes are a
deterministic function of the node and edge counts, so this module
captures each system's space profile as a formula:

* lossless representations (adjacency list / matrix),
* Aspen's compressed trees (the paper measures ~4-6 bytes per directed
  edge plus small per-vertex overhead),
* Terrace's hierarchical containers (several times larger per edge,
  dominated by per-vertex inline buffers on dense graphs),
* GraphZeppelin's sketches (``~168 * log2(V)^2`` bytes per node plus
  buffering), taken from :mod:`repro.sketch.sizes` so the formula and
  the implementation agree.

The constants are calibrated against the paper's Figure 11a table so
the crossover analysis lands where the paper reports it (between 32 GB
and 64 GB budgets for dense graphs on a few hundred thousand nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.sketch.sizes import graph_sketch_size_bytes, node_sketch_size_bytes

#: Aspen: compressed purely-functional trees; bytes per *directed* edge.
ASPEN_BYTES_PER_DIRECTED_EDGE = 3.0
#: Aspen per-vertex overhead (tree nodes, vertex records).
ASPEN_BYTES_PER_VERTEX = 24.0

#: Terrace: per-edge cost across its PMA / B-tree levels.
TERRACE_BYTES_PER_EDGE = 10.0
#: Terrace per-vertex overhead: the inline buffer lives inside the
#: vertex record (13 inline slots of 4 bytes plus bookkeeping).
TERRACE_BYTES_PER_VERTEX = 72.0
#: Inline neighbor slots per vertex record (Terrace's design constant).
TERRACE_INLINE_SLOTS = 13

#: Adjacency list: 4-byte neighbor ids, both directions, plus pointers.
ADJ_LIST_BYTES_PER_DIRECTED_EDGE = 4.0
ADJ_LIST_BYTES_PER_VERTEX = 8.0


def adjacency_list_bytes(num_nodes: int, num_edges: int) -> int:
    """Lossless adjacency-list representation (the Figure 1 line)."""
    return int(
        num_nodes * ADJ_LIST_BYTES_PER_VERTEX
        + 2 * num_edges * ADJ_LIST_BYTES_PER_DIRECTED_EDGE
    )


def adjacency_matrix_bytes(num_nodes: int) -> int:
    """Lossless bit-matrix representation (1 bit per ordered pair)."""
    return num_nodes * ((num_nodes + 7) // 8)


def aspen_bytes(num_nodes: int, num_edges: int) -> int:
    """Aspen's modelled footprint."""
    return int(
        num_nodes * ASPEN_BYTES_PER_VERTEX
        + 2 * num_edges * ASPEN_BYTES_PER_DIRECTED_EDGE
    )


def terrace_bytes(num_nodes: int, num_edges: int) -> int:
    """Terrace's modelled footprint."""
    return int(
        num_nodes * TERRACE_BYTES_PER_VERTEX + 2 * num_edges * TERRACE_BYTES_PER_EDGE
    )


def graphzeppelin_bytes(num_nodes: int, delta: float = 0.01, buffer_fraction: float = 0.5) -> int:
    """GraphZeppelin's modelled footprint: sketches plus leaf gutters."""
    sketches = graph_sketch_size_bytes(num_nodes, delta)
    buffers = int(num_nodes * node_sketch_size_bytes(num_nodes, delta) * buffer_fraction)
    return sketches + buffers


@dataclass(frozen=True)
class SpaceComparison:
    """One row of the Figure 11-style space table."""

    name: str
    num_nodes: int
    num_edges: int
    aspen: int
    terrace: int
    graphzeppelin: int

    @property
    def graphzeppelin_vs_aspen(self) -> float:
        """GraphZeppelin size as a fraction of Aspen's (< 1 means smaller)."""
        return self.graphzeppelin / self.aspen if self.aspen else float("inf")

    @property
    def graphzeppelin_vs_terrace(self) -> float:
        return self.graphzeppelin / self.terrace if self.terrace else float("inf")


def space_crossover_table(
    workloads: Sequence[Dict],
    delta: float = 0.01,
) -> List[SpaceComparison]:
    """Space comparison rows for a list of ``{name, num_nodes, num_edges}``.

    Used by the Figure 11 benchmark both at the paper's full scales
    (from the dataset specs) and at the scaled-down sizes that are
    actually ingested.
    """
    rows = []
    for workload in workloads:
        num_nodes = int(workload["num_nodes"])
        num_edges = int(workload["num_edges"])
        rows.append(
            SpaceComparison(
                name=str(workload.get("name", f"V={num_nodes}")),
                num_nodes=num_nodes,
                num_edges=num_edges,
                aspen=aspen_bytes(num_nodes, num_edges),
                terrace=terrace_bytes(num_nodes, num_edges),
                graphzeppelin=graphzeppelin_bytes(num_nodes, delta),
            )
        )
    return rows
