"""An exact adjacency-matrix graph: the ground truth for correctness.

Section 6.3 of the paper checks GraphZeppelin's answers against an
in-memory adjacency matrix stored as a bit vector, running Kruskal's
algorithm for the reference spanning forest.  This class is that
reference implementation: a packed bit matrix plus exact connectivity
via union-find (Kruskal) or BFS.
"""

from __future__ import annotations

from typing import Iterable, List, Set

import numpy as np

from repro.core.dsu import DisjointSetUnion
from repro.core.spanning_forest import SpanningForest
from repro.exceptions import ConfigurationError, InvalidStreamError
from repro.types import Edge, EdgeUpdate, UpdateType, canonical_edge


class AdjacencyMatrixGraph:
    """A dynamic graph stored as a packed boolean adjacency matrix."""

    def __init__(self, num_nodes: int, strict: bool = True) -> None:
        if num_nodes < 1:
            raise ConfigurationError("num_nodes must be at least 1")
        self.num_nodes = int(num_nodes)
        self.strict = bool(strict)
        # Upper-triangular packed bit matrix: bit (u, v) for u < v only.
        self._bits = np.zeros((num_nodes, (num_nodes + 7) // 8), dtype=np.uint8)
        self._num_edges = 0

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, u: int, v: int) -> None:
        u, v = canonical_edge(u, v)
        self._check_node(v)
        if self.has_edge(u, v):
            if self.strict:
                raise InvalidStreamError(f"edge ({u}, {v}) inserted while present")
            return
        self._set_bit(u, v, True)
        self._num_edges += 1

    def delete(self, u: int, v: int) -> None:
        u, v = canonical_edge(u, v)
        self._check_node(v)
        if not self.has_edge(u, v):
            if self.strict:
                raise InvalidStreamError(f"edge ({u}, {v}) deleted while absent")
            return
        self._set_bit(u, v, False)
        self._num_edges -= 1

    def edge_update(self, u: int, v: int) -> None:
        """Toggle an edge (the non-validating ingestion path)."""
        u, v = canonical_edge(u, v)
        self._check_node(v)
        if self.has_edge(u, v):
            self._set_bit(u, v, False)
            self._num_edges -= 1
        else:
            self._set_bit(u, v, True)
            self._num_edges += 1

    def apply_update(self, update: EdgeUpdate) -> None:
        if update.kind is UpdateType.INSERT:
            self.insert(update.u, update.v)
        else:
            self.delete(update.u, update.v)

    def ingest(self, updates: Iterable[EdgeUpdate]) -> int:
        count = 0
        for update in updates:
            self.apply_update(update)
            count += 1
        return count

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        u, v = canonical_edge(u, v)
        if v >= self.num_nodes:
            return False
        return bool((self._bits[u, v // 8] >> (v % 8)) & 1)

    def edges(self) -> List[Edge]:
        """All current edges in canonical order."""
        result: List[Edge] = []
        for u in range(self.num_nodes):
            row = np.unpackbits(self._bits[u], bitorder="little")[: self.num_nodes]
            for v in np.nonzero(row)[0]:
                if v > u:
                    result.append((u, int(v)))
        return result

    def neighbors(self, node: int) -> List[int]:
        """Neighbors of ``node`` (both orientations of the bit matrix)."""
        self._check_node(node)
        row = np.unpackbits(self._bits[node], bitorder="little")[: self.num_nodes]
        higher = [int(v) for v in np.nonzero(row)[0] if v > node]
        lower = [
            u
            for u in range(node)
            if (self._bits[u, node // 8] >> (node % 8)) & 1
        ]
        return lower + higher

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def spanning_forest(self) -> SpanningForest:
        """Exact spanning forest via Kruskal (scan edges, union-find)."""
        dsu = DisjointSetUnion(self.num_nodes)
        forest_edges: List[Edge] = []
        for u, v in self.edges():
            if dsu.union(u, v):
                forest_edges.append((u, v))
        return SpanningForest.from_edges(self.num_nodes, forest_edges, complete=True)

    def list_spanning_forest(self) -> SpanningForest:
        """Alias matching the GraphZeppelin API."""
        return self.spanning_forest()

    def connected_components(self) -> List[Set[int]]:
        return self.spanning_forest().components()

    def num_connected_components(self) -> int:
        return self.spanning_forest().num_components

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Bit-matrix size: one bit per (ordered) node pair."""
        return self._bits.size

    def __repr__(self) -> str:
        return (
            f"AdjacencyMatrixGraph(num_nodes={self.num_nodes}, edges={self._num_edges})"
        )

    # ------------------------------------------------------------------
    def _set_bit(self, u: int, v: int, value: bool) -> None:
        mask = np.uint8(1 << (v % 8))
        if value:
            self._bits[u, v // 8] |= mask
        else:
            self._bits[u, v // 8] &= np.uint8(~mask & 0xFF)

    def _check_node(self, node: int) -> None:
        if node >= self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")
