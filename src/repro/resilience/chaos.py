"""Chaos soak: composite fault schedules over full engine lifecycles.

The previous resilience planes each test one fault family in isolation
-- a killed worker here, a torn checkpoint there, one rotten block.
Production failures compose: a slow device makes a checkpoint miss its
deadline while a worker hangs and the RAM budget is squeezed.  This
module is the harness that soaks the whole stack in that composition:

* a :class:`ChaosSchedule` is a seeded, deterministic list of
  **cycles**, each pairing an ingest kind (``"serial"`` or
  ``"distributed"``) with a :class:`~repro.resilience.faults.FaultPlan`
  drawn from a rotating menu spanning *every* fault family -- device
  raises, latency stalls (``slow``), memory pressure, torn and
  silently corrupted snapshots, rotten device blocks, and worker
  kills/hangs/raises;

* :func:`run_chaos_soak` drives one engine through the schedule:
  ingest a stream chunk (recovering from the newest valid checkpoint
  and re-ingesting the suffix whenever a fault surfaces), scrub and
  read-repair when the cycle planted silent corruption, and query the
  spanning forest every cycle -- the full
  ingest -> query -> checkpoint -> scrub -> recover loop, over and
  over, under fire.

The invariants the property tests and ``benchmarks/bench_chaos.py``
assert on the resulting :class:`ChaosReport`:

1. **bit-identity** -- the surviving engine's tensors and forest
   partition match a fault-free serial shadow ingest of the same
   stream (sketch linearity makes every recovery order equivalent);
2. **bounded RAM** -- cached payload bytes plus reservations never
   exceeded the configured budget at any observation point;
3. **bounded wall-clock** -- every injected stall is interruptible or
   deadline-bounded, so the whole soak finishes in bounded time.

Determinism: the schedule is a pure function of its seed, so a failing
soak replays from ``(seed, cycles)`` alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    CorruptionError,
    RecoveryError,
    WorkerFailure,
)
from repro.observability.metrics import MetricsSnapshot, default_registry
from repro.resilience.faults import FaultPlan, FaultSpec

#: The menu serial cycles rotate through; each entry exercises one
#: fault family (``None`` is a calm cycle -- recovery from the *last*
#: cycle's mess must not depend on more faults arriving).
_SERIAL_MENU = ("raise", "slow", "pressure", "torn", "corrupt", None)

#: The menu distributed cycles rotate through (worker-site modes).
_WORKER_MENU = ("kill", "hang", "raise", "slow")


class ChaosSchedule:
    """A deterministic, seeded sequence of per-cycle fault plans.

    ``cycle_plans`` is a sequence of ``(kind, plan)`` pairs: ``kind``
    is ``"serial"`` (one :meth:`GraphZeppelin.ingest_batch` chunk under
    device/snapshot/memory faults) or ``"distributed"`` (the chunk
    routed through :func:`~repro.distributed.multi_ingestor.distributed_ingest`
    under worker faults).  Build one by hand for a targeted soak, or
    derive one from a seed with :meth:`random`.
    """

    def __init__(
        self,
        cycle_plans: Sequence[Tuple[str, FaultPlan]],
        seed: Optional[int] = None,
    ) -> None:
        plans = tuple(cycle_plans)
        for kind, plan in plans:
            if kind not in ("serial", "distributed"):
                raise ConfigurationError(
                    f"unknown chaos cycle kind {kind!r} "
                    "(use 'serial' or 'distributed')"
                )
            if not isinstance(plan, FaultPlan):
                raise ConfigurationError("each cycle needs a FaultPlan")
        self.cycle_plans: Tuple[Tuple[str, FaultPlan], ...] = plans
        self.seed = seed

    def __len__(self) -> int:
        return len(self.cycle_plans)

    @property
    def modes_covered(self) -> set:
        """Every fault mode some cycle of this schedule injects."""
        return {
            spec.mode for _, plan in self.cycle_plans for spec in plan.faults
        }

    @property
    def distributed_cycles(self) -> int:
        return sum(1 for kind, _ in self.cycle_plans if kind == "distributed")

    @classmethod
    def random(
        cls,
        seed: int,
        cycles: int = 24,
        distributed_every: int = 6,
        max_slow_delay: float = 0.02,
        hang_seconds: float = 0.5,
    ) -> "ChaosSchedule":
        """A seeded schedule rotating through every fault family.

        Every ``distributed_every``-th cycle is distributed, its worker
        fault rotating through kill / hang / raise / slow (always on
        attempt 0, so the supervisor's re-dispatch lands clean);
        serial cycles rotate through device raises, ``slow`` stalls,
        memory pressure, torn checkpoints, rotten blocks, and calm
        cycles.  ``hang_seconds`` bounds the injected hangs so a soak's
        wall clock is dominated by work, not sleeps.  Same
        ``(seed, cycles)``, same schedule -- a failing soak replays
        from the seed alone.
        """
        if cycles < 1:
            raise ConfigurationError("a chaos schedule needs at least one cycle")
        if distributed_every < 1:
            raise ConfigurationError("distributed_every must be at least 1")
        rng = np.random.default_rng(seed)
        plans: List[Tuple[str, FaultPlan]] = []
        serial_index = 0
        distributed_index = 0
        for cycle in range(cycles):
            sub_seed = int(rng.integers(0, 2**31))
            if (cycle + 1) % distributed_every == 0:
                mode = _WORKER_MENU[distributed_index % len(_WORKER_MENU)]
                distributed_index += 1
                spec = FaultSpec(
                    site="worker",
                    worker=int(rng.integers(0, 2)),
                    at=int(rng.integers(1, 3)),
                    mode=mode,
                    delay_seconds=max_slow_delay if mode == "slow" else 0.05,
                )
                plans.append(
                    (
                        "distributed",
                        FaultPlan([spec], seed=sub_seed, hang_seconds=hang_seconds),
                    )
                )
                continue
            family = _SERIAL_MENU[serial_index % len(_SERIAL_MENU)]
            serial_index += 1
            if family == "raise":
                plan = FaultPlan.random(sub_seed, device_faults=1, max_device_ops=4)
            elif family == "slow":
                plan = FaultPlan.random(
                    sub_seed,
                    slow_faults=1,
                    max_device_ops=4,
                    max_slow_delay=max_slow_delay,
                )
            elif family == "pressure":
                plan = FaultPlan.random(
                    sub_seed, pressure_faults=1, max_memory_checks=4
                )
            elif family == "torn":
                plan = FaultPlan.random(sub_seed, snapshot_tears=1)
            elif family == "corrupt":
                plan = FaultPlan.random(
                    sub_seed, block_corruptions=1, max_block_writes=8
                )
            else:
                plan = FaultPlan([], seed=sub_seed)
            plans.append(("serial", plan))
        return cls(plans, seed=seed)

    def __repr__(self) -> str:
        return (
            f"ChaosSchedule({len(self.cycle_plans)} cycles, "
            f"{self.distributed_cycles} distributed, seed={self.seed}, "
            f"modes={sorted(self.modes_covered)})"
        )


@dataclass
class ChaosReport:
    """What one chaos soak survived, in numbers."""

    cycles: int = 0
    distributed_cycles: int = 0
    #: Every fault mode the schedule injected (sorted).
    modes: List[str] = field(default_factory=list)
    updates_total: int = 0
    queries: int = 0
    #: Full checkpoint-recovery round trips (an engine was rebuilt from
    #: the newest valid generation -- or from scratch -- and the stream
    #: suffix re-ingested).
    recoveries: int = 0
    checkpoints_written: int = 0
    checkpoint_failures: int = 0
    #: Scrub-and-repair passes that actually healed pages, and the
    #: pages they healed.
    repairs: int = 0
    pages_repaired: int = 0
    #: Distributed-plane telemetry, summed over distributed cycles.
    worker_retries: int = 0
    straggler_kills: int = 0
    deadline_kills: int = 0
    #: Overload-plane telemetry, summed across every engine the soak
    #: ran (recoveries replace the engine; counters are absorbed first).
    pressure_events: int = 0
    deadline_misses: int = 0
    breaker_rejections: int = 0
    io_retries: int = 0
    #: RAM-budget invariant: the highest cached-plus-reserved byte
    #: count observed, against the configured budget (``None`` when
    #: the engine ran unbounded).
    peak_cached_bytes: int = 0
    ram_budget_bytes: Optional[int] = None
    elapsed_seconds: float = 0.0
    #: The surviving engine's :meth:`GraphZeppelin.health` snapshot.
    final_health: dict = field(default_factory=dict)
    #: Final metrics-registry snapshot of the soak (spans over every
    #: ingest/query/checkpoint/recovery the soak ran, plus worker
    #: registries merged in by the distributed cycles).  ``None`` when
    #: observability was disabled.
    metrics: Optional[MetricsSnapshot] = None


def run_chaos_soak(
    schedule: ChaosSchedule,
    edges: np.ndarray,
    num_nodes: int,
    config=None,
    workdir: Union[str, Path, None] = None,
    num_ingestors: int = 2,
    straggler_timeout: Optional[float] = 0.25,
    worker_deadline: Optional[float] = None,
    checkpoint_keep: int = 3,
):
    """Soak one engine through a chaos schedule; return ``(engine, report)``.

    The stream is split into ``len(schedule)`` contiguous chunks, one
    per cycle.  Each cycle attaches its fault plan to the engine's
    hybrid memory and checkpointer, ingests its chunk (serially or
    through the distributed multi-ingestor), and queries the spanning
    forest.  Any surfaced failure -- injected ``OSError``, missed
    deadline, open breaker, detected corruption -- triggers a full
    recovery: rebuild from the newest valid checkpoint (or from
    scratch when none exists), re-attach the checkpointer, re-ingest
    the stream suffix, and continue the soak.  Cycles that planted
    silent block corruption run
    :func:`~repro.integrity.repair.scrub_and_repair` before querying.

    The surviving engine is bit-identical to a fault-free serial
    ingest of ``edges`` (the caller asserts it; sketch linearity is
    why it holds).  ``workdir`` (default: a ``chaos`` sibling of the
    caller's choice is required) holds the checkpoint generations and
    per-cycle distributed snapshot scratch.
    """
    from repro.core.config import GraphZeppelinConfig
    from repro.core.graph_zeppelin import GraphZeppelin
    from repro.distributed.multi_ingestor import distributed_ingest
    from repro.distributed.snapshot import merge_snapshots_into
    from repro.integrity.repair import scrub_and_repair
    from repro.resilience.checkpoint import CheckpointPolicy
    from repro.resilience.supervisor import WorkerRetryPolicy

    if workdir is None:
        raise ConfigurationError("run_chaos_soak needs a workdir for checkpoints")
    config = config or GraphZeppelinConfig()
    edges = np.ascontiguousarray(np.asarray(edges, dtype=np.int64))
    total_updates = int(edges.shape[0])
    cycles = len(schedule)
    if cycles < 1:
        raise ConfigurationError("the schedule is empty")
    chunk = -(-total_updates // cycles)
    workdir = Path(workdir)
    ckpt_dir = workdir / "ckpt"
    policy = CheckpointPolicy(every_n_updates=max(chunk, 1), keep=checkpoint_keep)
    report = ChaosReport(
        cycles=cycles,
        distributed_cycles=schedule.distributed_cycles,
        modes=sorted(schedule.modes_covered),
        ram_budget_bytes=config.ram_budget_bytes,
    )

    engine = GraphZeppelin(num_nodes, config=config)
    checkpointer = engine.attach_checkpointer(ckpt_dir, policy=policy)

    def absorb(old_engine, old_checkpointer) -> None:
        # An engine about to be replaced takes its telemetry with it;
        # fold the counters into the report first.
        stats = old_engine.io_stats
        if stats is not None:
            snapshot = stats.snapshot()
            for key in (
                "pressure_events",
                "deadline_misses",
                "breaker_rejections",
                "io_retries",
            ):
                setattr(report, key, getattr(report, key) + snapshot[key])
        if old_checkpointer is not None:
            report.checkpoints_written += old_checkpointer.checkpoints_written
            report.checkpoint_failures += old_checkpointer.checkpoint_failures

    def attach_plan(plan: Optional[FaultPlan]) -> None:
        if engine.memory is not None:
            engine.memory.fault_plan = plan
        if engine.checkpointer is not None:
            engine.checkpointer.fault_plan = plan

    def observe_budget() -> None:
        memory = engine.memory
        if memory is not None and not memory.is_unbounded:
            report.peak_cached_bytes = max(
                report.peak_cached_bytes,
                memory.cached_bytes + memory.reserved_bytes,
            )

    def recover(position_end: int) -> None:
        # Full recovery round trip: drop the (possibly half-mutated)
        # engine, rebuild from the newest valid checkpoint -- or from
        # scratch when none qualifies -- and re-ingest the suffix
        # fault-free.  Sketch linearity makes the result bit-identical
        # to never having failed.
        nonlocal engine, checkpointer
        absorb(engine, checkpointer)
        try:
            engine = GraphZeppelin.recover_latest(ckpt_dir, config=config)
            resume = engine.resume_offset
        except RecoveryError:
            engine = GraphZeppelin(num_nodes, config=config)
            resume = 0
        checkpointer = engine.attach_checkpointer(ckpt_dir, policy=policy)
        report.recoveries += 1
        if resume < position_end:
            engine.ingest_batch(edges[resume:position_end])

    started = time.perf_counter()
    position = 0
    for cycle, (kind, plan) in enumerate(schedule.cycle_plans):
        end = min(position + chunk, total_updates)
        chunk_edges = edges[position:end]
        if kind == "serial" or chunk_edges.shape[0] == 0:
            attach_plan(plan)
            try:
                if chunk_edges.shape[0]:
                    engine.ingest_batch(chunk_edges)
            except (CircuitOpenError, CorruptionError, OSError):
                attach_plan(None)
                recover(end)
            finally:
                attach_plan(None)
        else:
            # Distributed cycle: the chunk is ingested by supervised
            # worker processes into a side engine, whose snapshot is
            # XOR-merged into the soaking engine -- linearity again.
            dist_dir = workdir / f"dist-{cycle}"
            try:
                side, dist_report = distributed_ingest(
                    chunk_edges,
                    num_nodes,
                    config=config,
                    num_ingestors=num_ingestors,
                    chunk_size=max(1, chunk_edges.shape[0] // 4),
                    workdir=dist_dir,
                    fault_plan=plan,
                    retry=WorkerRetryPolicy(max_retries=3, backoff_seconds=0.01),
                    straggler_timeout=straggler_timeout,
                    worker_deadline=worker_deadline,
                )
                report.worker_retries += dist_report.worker_retries
                report.straggler_kills += dist_report.straggler_kills
                report.deadline_kills += dist_report.deadline_kills
                merge_path = dist_dir / "cycle-merge.snap"
                side.save_snapshot(merge_path, stream_offset=0)
                merge_snapshots_into([merge_path], engine.tensor_pool)
                engine._updates_processed += side.updates_processed
                engine._cached_forest = None
                engine._note_checkpoint_progress(int(chunk_edges.shape[0]))
            except (WorkerFailure, CorruptionError, OSError):
                # The whole distributed attempt is expendable: nothing
                # merged into the soaking engine (the merge is the last
                # step), so recovery re-ingests the chunk serially.
                recover(end)
        position = end
        observe_budget()

        if any(spec.mode == "corrupt" for spec in plan.faults):
            if engine.memory is not None and not engine.memory.is_unbounded:
                try:
                    repair = scrub_and_repair(engine, ckpt_dir, edges)
                    if not repair.clean:
                        report.repairs += 1
                        report.pages_repaired += len(repair.repaired_pages)
                except (RecoveryError, CorruptionError):
                    # No checkpoint qualifies as a repair source (or the
                    # damage reaches beyond pages): fall back to the
                    # full recovery round trip.
                    recover(position)

        try:
            engine.list_spanning_forest()
        except (CircuitOpenError, CorruptionError, OSError):
            recover(position)
            engine.list_spanning_forest()
        report.queries += 1
        observe_budget()

    report.elapsed_seconds = time.perf_counter() - started
    report.updates_total = engine.updates_processed
    absorb(engine, checkpointer)
    report.final_health = engine.health()
    if default_registry().enabled:
        report.metrics = engine.metrics()
    return engine, report
