"""A supervisor loop for per-slice worker processes.

:class:`WorkerSupervisor` is the recovery engine behind self-healing
distributed ingest: it spawns one process per stream slice, polls them,
and turns the three ways a worker can go wrong into bounded, replayable
recovery actions:

* **died** (non-zero exit code, a crash, an OOM/SIGKILL) or **lied**
  (exited 0 but its result does not validate): the slice is re-run in a
  fresh process after an exponentially backed-off delay, up to
  ``max_retries`` times -- a worker's slice is self-contained (it
  receives its edges by value and hands results back through a
  snapshot file), which is what makes re-running it from scratch
  correct;
* **straggling** (still running ``straggler_timeout`` seconds after
  some peer finished): the process is killed and its slice re-dispatched
  like a failure.  Completed peers are *not* held up -- the
  ``on_complete`` callback fires the moment each worker's result
  validates, so the coordinator merges finished snapshots while the
  re-dispatched slice is still running (partial merge);
* **exhausted** (failures exceed the retry budget): a
  :class:`~repro.exceptions.WorkerFailure` carrying the worker index
  and slice size is raised, after every other live worker is
  terminated.

The overload plane (PR 8) adds an absolute per-attempt
``worker_deadline`` -- unlike the straggler heuristic it needs no
completed peer, so it bounds a cluster-wide hang -- plus an
interruptible :meth:`WorkerSupervisor.request_shutdown` and a
``max_backoff_seconds`` cap on the retry policy's exponential growth.

The supervisor is deliberately mechanism-only: *what* a worker does,
*how* its result is validated, and *what happens* on completion are
callbacks, so the distributed ingest driver owns all snapshot/merge
semantics and the supervisor owns none.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.exceptions import WorkerFailure
from repro.resilience.faults import interruptible_sleep

#: How often the poll loop wakes up.  Workers run for whole slices, so
#: a coarse poll costs nothing; stragglers are detected within one tick.
POLL_INTERVAL_SECONDS = 0.02


@dataclass(frozen=True)
class WorkerRetryPolicy:
    """Bounded retry with exponential backoff for failed workers.

    ``max_backoff_seconds`` caps the exponential growth: a worker on
    its Nth retry waits at most that long, so a deep retry history
    cannot stall the supervisor loop for minutes (``None`` removes the
    cap).
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_seconds: Optional[float] = 5.0

    def delay(self, failures_so_far: int) -> float:
        """Backoff before re-dispatch number ``failures_so_far``."""
        delay = self.backoff_seconds * self.backoff_multiplier ** max(
            failures_so_far - 1, 0
        )
        if self.max_backoff_seconds is not None:
            delay = min(delay, self.max_backoff_seconds)
        return delay


@dataclass
class WorkerRecord:
    """What the supervisor observed about one worker's slice."""

    worker: int
    slice_size: int
    attempts: int = 0
    failures: List[str] = field(default_factory=list)
    straggler_kills: int = 0
    deadline_kills: int = 0
    completed: bool = False


class WorkerSupervisor:
    """Spawn, watch, retry, and re-dispatch per-slice worker processes.

    Parameters
    ----------
    spawn:
        ``spawn(worker, attempt)`` creates and *starts* the process for
        one attempt at one slice.  Each attempt must be a fresh process
        (a dead process object cannot be restarted).
    validate:
        ``validate(worker)`` inspects the worker's result after a clean
        exit; returns ``None`` when the result is usable or a reason
        string (missing snapshot, truncated header, ...) when the
        worker must be treated as failed despite exit code 0.
    slice_sizes:
        Update count of each worker's slice, for error context.
    on_complete:
        Called with the worker index as soon as its result validates;
        this is where the coordinator merges a finished snapshot.
    describe_failure:
        Optional ``describe_failure(worker)`` giving extra context for
        a failed attempt (e.g. the contents of the worker's error
        file); folded into the failure record and the final exception.
    straggler_timeout:
        With at least one completed peer, a worker older than this many
        seconds (since its latest spawn) is killed and re-dispatched.
        ``None`` disables straggler handling.
    worker_deadline:
        A hard per-attempt wall-clock budget: a worker older than this
        many seconds since its latest spawn is killed and re-dispatched
        *regardless* of how its peers are doing -- unlike the relative
        straggler heuristic, which needs a completed peer as evidence.
        This is what bounds a cluster-wide hang (every worker stuck),
        where no peer ever completes.  ``None`` disables it.
    """

    def __init__(
        self,
        spawn: Callable[[int, int], "object"],
        validate: Callable[[int], Optional[str]],
        slice_sizes: List[int],
        on_complete: Optional[Callable[[int], None]] = None,
        describe_failure: Optional[Callable[[int], Optional[str]]] = None,
        retry: Optional[WorkerRetryPolicy] = None,
        straggler_timeout: Optional[float] = None,
        worker_deadline: Optional[float] = None,
        poll_interval: float = POLL_INTERVAL_SECONDS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._spawn = spawn
        self._validate = validate
        self._on_complete = on_complete
        self._describe_failure = describe_failure
        self.retry = retry or WorkerRetryPolicy()
        self.straggler_timeout = straggler_timeout
        self.worker_deadline = worker_deadline
        self.poll_interval = poll_interval
        self._clock = clock
        #: Set by :meth:`request_shutdown` (any thread): the run loop
        #: terminates every active worker and returns promptly instead
        #: of finishing the remaining slices; backoff sleeps are
        #: interrupted too.
        self._shutdown = threading.Event()
        self.records = [
            WorkerRecord(worker=k, slice_size=int(size))
            for k, size in enumerate(slice_sizes)
        ]

    # ------------------------------------------------------------------
    def request_shutdown(self) -> None:
        """Ask a running :meth:`run` loop to stop (callable from any thread).

        Idempotent.  The loop terminates every active worker, joins
        them, and returns the records as they stand (incomplete slices
        keep ``completed=False``); an in-progress backoff sleep is
        interrupted instead of running to completion.
        """
        self._shutdown.set()

    def run(self) -> List[WorkerRecord]:
        """Drive every slice to a validated result (or raise).

        Returns the per-worker records; every record has
        ``completed=True`` on a normal return.  A
        :meth:`request_shutdown` from another thread makes the loop
        terminate the remaining workers and return early instead.
        """
        active: Dict[int, tuple] = {}  # worker -> (process, started_at)
        try:
            for record in self.records:
                if self._shutdown.is_set():
                    break
                active[record.worker] = self._launch(record)
            while active and not self._shutdown.is_set():
                for worker in list(active):
                    if self._shutdown.is_set():
                        break
                    process, started_at = active[worker]
                    record = self.records[worker]
                    if process.is_alive():
                        kill_reason = self._kill_reason(record, started_at)
                        if kill_reason is not None:
                            process.terminate()
                            process.join()
                            self._note_failure(record, kill_reason)
                            active[worker] = self._launch(record)
                        continue
                    process.join()
                    del active[worker]
                    reason = self._outcome(record, process)
                    if reason is None:
                        record.completed = True
                        if self._on_complete is not None:
                            self._on_complete(worker)
                    else:
                        self._note_failure(record, reason)
                        active[worker] = self._launch(record)
                if active and not self._shutdown.is_set():
                    interruptible_sleep(self.poll_interval, self._shutdown)
        except BaseException:
            for process, _ in active.values():
                if process.is_alive():
                    process.terminate()
            for process, _ in active.values():
                process.join()
            raise
        if self._shutdown.is_set() and active:
            for process, _ in active.values():
                if process.is_alive():
                    process.terminate()
            for process, _ in active.values():
                process.join()
        return self.records

    # ------------------------------------------------------------------
    def _launch(self, record: WorkerRecord) -> tuple:
        if record.attempts > 0:
            delay = self.retry.delay(len(record.failures))
            if delay > 0:
                interruptible_sleep(delay, self._shutdown)
        attempt = record.attempts
        record.attempts += 1
        return self._spawn(record.worker, attempt), self._clock()

    def _kill_reason(self, record: WorkerRecord, started_at: float) -> Optional[str]:
        """Why a live worker should be killed now, or ``None`` to let it run.

        The absolute ``worker_deadline`` is checked first: it needs no
        peer evidence, so it also fires when *every* worker is stuck.
        The relative straggler heuristic only fires once a completed
        peer proves the slice workload is feasible.
        """
        age = self._clock() - started_at
        if self.worker_deadline is not None and age > self.worker_deadline:
            record.deadline_kills += 1
            return f"deadline killed after {age:.2f}s (budget {self.worker_deadline}s)"
        if self._is_straggler(record, started_at):
            record.straggler_kills += 1
            return f"straggler killed after {age:.2f}s"
        return None

    def _is_straggler(self, record: WorkerRecord, started_at: float) -> bool:
        if self.straggler_timeout is None:
            return False
        if not any(r.completed for r in self.records if r.worker != record.worker):
            # Everyone is slow together: that is load, not a straggler.
            return False
        return self._clock() - started_at > self.straggler_timeout

    def _outcome(self, record: WorkerRecord, process) -> Optional[str]:
        """``None`` for a validated success, else the failure reason."""
        if process.exitcode != 0:
            reason = f"exit code {process.exitcode}"
            detail = (
                self._describe_failure(record.worker)
                if self._describe_failure is not None
                else None
            )
            return f"{reason}: {detail}" if detail else reason
        return self._validate(record.worker)

    def _note_failure(self, record: WorkerRecord, reason: str) -> None:
        record.failures.append(reason)
        if len(record.failures) > self.retry.max_retries:
            raise WorkerFailure(
                f"ingest worker {record.worker} failed "
                f"{len(record.failures)} time(s) over its "
                f"{record.slice_size}-update slice, exhausting "
                f"{self.retry.max_retries} retries "
                f"(failures: {'; '.join(record.failures)})",
                worker_index=record.worker,
                slice_size=record.slice_size,
            )
