"""Overload control: circuit breaking and deadlines for device I/O.

PR 6 handled *crashes* and PR 7 handled *corruption*; this module
handles the third production failure family, *degradation*: a device
that is not dead but slow or persistently erroring.  Two mechanisms:

* a per-operation **deadline** -- the hybrid memory measures each
  device call (including any injected ``slow`` fault delay) and turns
  one that ran past ``deadline_seconds`` into a
  :class:`~repro.exceptions.DeadlineExceededError`.  The error is a
  ``TimeoutError`` (hence an ``OSError``), so it composes with the
  existing :class:`~repro.memory.hybrid.RetryPolicy`: a transiently
  slow operation is retried with backoff, a persistently slow device
  surfaces the error;

* a :class:`CircuitBreaker` -- after ``failure_threshold`` consecutive
  *exhausted* operations (the whole retry budget failed, not one slow
  attempt) the breaker opens and subsequent calls are rejected
  immediately with :class:`~repro.exceptions.CircuitOpenError` instead
  of burning the retry budget against a dead device.  After
  ``reset_seconds`` the breaker goes half-open and admits probe calls:
  a successful probe closes it, a failed probe re-opens it.

The breaker records *operation outcomes*, not attempt outcomes: the
hybrid memory calls :meth:`CircuitBreaker.record_failure` only after
its retry policy is exhausted, so transient errors that a retry
absorbs never accumulate toward the threshold (property-tested).
:class:`~repro.exceptions.CorruptionError` is *data* damage, not
device unavailability -- it bypasses the breaker entirely: it neither
counts as a failure nor settles a half-open probe.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.exceptions import CircuitOpenError, ConfigurationError

#: Breaker states (:attr:`CircuitBreaker.state`).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed -> open after K consecutive failures -> half-open probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failed operations that open the breaker.
    reset_seconds:
        How long an open breaker rejects before admitting a half-open
        probe.
    name:
        Label carried into :class:`~repro.exceptions.CircuitOpenError`
        messages and :meth:`snapshot`.
    clock:
        Injectable monotonic clock, so tests step through the reset
        window without sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_seconds: float = 0.25,
        name: str = "device",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be at least 1")
        if reset_seconds <= 0:
            raise ConfigurationError("reset_seconds must be positive")
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self.name = name
        self._clock = clock
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._half_open = False
        #: Telemetry: open transitions / rejected calls / half-open
        #: probes admitted.
        self.times_opened = 0
        self.rejections = 0
        self.probes = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` right now.

        An open breaker whose reset window has elapsed reports
        ``half_open`` -- the next :meth:`allow` will admit a probe.
        """
        if self._opened_at is None:
            return CLOSED
        if self._half_open or self._clock() - self._opened_at >= self.reset_seconds:
            return HALF_OPEN
        return OPEN

    def allow(self) -> None:
        """Admit one operation or raise :class:`CircuitOpenError`.

        Closed: always admits.  Open: rejects until ``reset_seconds``
        have passed since the breaker opened.  Half-open: admits (a
        probe); the probe's outcome -- reported back through
        :meth:`record_success` / :meth:`record_failure` -- closes or
        re-opens the breaker.  An outcome that is neither (corruption)
        leaves the breaker half-open, so the next call probes again.
        """
        if self._opened_at is None:
            return
        if self._half_open or self._clock() - self._opened_at >= self.reset_seconds:
            self._half_open = True
            self.probes += 1
            return
        self.rejections += 1
        raise CircuitOpenError(
            f"{self.name} circuit breaker is open "
            f"({self._consecutive_failures} consecutive failures; "
            f"probing again after {self.reset_seconds}s)"
        )

    def record_success(self) -> None:
        """One operation (or half-open probe) succeeded: close the breaker."""
        self._consecutive_failures = 0
        self._opened_at = None
        self._half_open = False

    def record_failure(self) -> None:
        """One operation exhausted its retries; open at the threshold.

        A failed half-open probe re-opens immediately (the device is
        still down; restart the reset window).
        """
        self._consecutive_failures += 1
        if self._half_open or self._consecutive_failures >= self.failure_threshold:
            if self._opened_at is None:
                self.times_opened += 1
            self._opened_at = self._clock()
            self._half_open = False

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict view for ``health()`` reports and the CLI."""
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "reset_seconds": self.reset_seconds,
            "times_opened": self.times_opened,
            "rejections": self.rejections,
            "probes": self.probes,
        }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(name={self.name!r}, state={self.state!r}, "
            f"threshold={self.failure_threshold}, opened={self.times_opened})"
        )
