"""Fault tolerance: checkpoints, fault injection, supervision, overload.

Five pillars, one per module:

* :mod:`repro.resilience.checkpoint` -- :class:`CheckpointPolicy` /
  :class:`Checkpointer` write rotating generation-numbered snapshots as
  ingest progresses, and :func:`recover_latest` turns the newest valid
  generation back into an engine after a crash;
* :mod:`repro.resilience.faults` -- :class:`FaultPlan`, a seeded,
  deterministic schedule of injected failures (device I/O errors,
  latency stalls, memory pressure, torn or silently corrupted
  checkpoint writes, bit-rotted device blocks, killed/hung workers) so
  every recovery path -- including the integrity plane's scrub and
  read-repair -- is property-testable and replayable from a seed;
* :mod:`repro.resilience.supervisor` -- :class:`WorkerSupervisor`, the
  bounded-retry / straggler-re-dispatch / deadline-kill loop behind
  :func:`~repro.distributed.multi_ingestor.distributed_ingest`;
* :mod:`repro.resilience.overload` -- :class:`CircuitBreaker`, the
  closed/open/half-open state machine that sheds device I/O after
  consecutive exhausted operations (deadlines live in
  :class:`~repro.memory.hybrid.HybridMemory` and compose with it);
* :mod:`repro.resilience.chaos` -- :class:`ChaosSchedule` /
  :func:`run_chaos_soak`, the composite soak harness that mixes every
  fault family over repeated ingest -> query -> checkpoint -> scrub ->
  recover cycles and checks bit-identity, RAM-budget, and wall-clock
  invariants.
"""

from repro.resilience.chaos import ChaosReport, ChaosSchedule, run_chaos_soak
from repro.resilience.checkpoint import (
    CheckpointPolicy,
    Checkpointer,
    checkpoint_filename,
    list_checkpoints,
    recover_latest,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    interruptible_sleep,
)
from repro.resilience.overload import CircuitBreaker
from repro.resilience.supervisor import (
    WorkerRecord,
    WorkerRetryPolicy,
    WorkerSupervisor,
)

__all__ = [
    "ChaosReport",
    "ChaosSchedule",
    "run_chaos_soak",
    "CheckpointPolicy",
    "Checkpointer",
    "checkpoint_filename",
    "list_checkpoints",
    "recover_latest",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "interruptible_sleep",
    "CircuitBreaker",
    "WorkerRecord",
    "WorkerRetryPolicy",
    "WorkerSupervisor",
]
