"""Fault tolerance: checkpoint policies, fault injection, self-healing ingest.

Three pillars, one per module:

* :mod:`repro.resilience.checkpoint` -- :class:`CheckpointPolicy` /
  :class:`Checkpointer` write rotating generation-numbered snapshots as
  ingest progresses, and :func:`recover_latest` turns the newest valid
  generation back into an engine after a crash;
* :mod:`repro.resilience.faults` -- :class:`FaultPlan`, a seeded,
  deterministic schedule of injected failures (device I/O errors, torn
  or silently corrupted checkpoint writes, bit-rotted device blocks,
  killed/hung workers) so every recovery path -- including the
  integrity plane's scrub and read-repair -- is property-testable and
  replayable from a seed;
* :mod:`repro.resilience.supervisor` -- :class:`WorkerSupervisor`, the
  bounded-retry / straggler-re-dispatch loop behind
  :func:`~repro.distributed.multi_ingestor.distributed_ingest`.
"""

from repro.resilience.checkpoint import (
    CheckpointPolicy,
    Checkpointer,
    checkpoint_filename,
    list_checkpoints,
    recover_latest,
)
from repro.resilience.faults import FaultPlan, FaultSpec, InjectedFault
from repro.resilience.supervisor import (
    WorkerRecord,
    WorkerRetryPolicy,
    WorkerSupervisor,
)

__all__ = [
    "CheckpointPolicy",
    "Checkpointer",
    "checkpoint_filename",
    "list_checkpoints",
    "recover_latest",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "WorkerRecord",
    "WorkerRetryPolicy",
    "WorkerSupervisor",
]
