"""Hands-off checkpointing: policies, rotating generations, auto-recovery.

The snapshot plane (PR 5) made checkpoints *possible*; this module makes
them *automatic*.  A :class:`CheckpointPolicy` says when to checkpoint
(every N ingested updates and/or every T seconds of wall clock), a
:class:`Checkpointer` attached to a running
:class:`~repro.core.graph_zeppelin.GraphZeppelin` writes rotating,
generation-numbered snapshot files as the policy fires, and
:func:`recover_latest` turns a checkpoint directory back into an engine
after a crash -- scanning generations newest-first, validating each
header with the PR 5 machinery, and falling back to the previous
generation when the newest file is torn or corrupt.

File layout.  Checkpoints are named ``ckpt-<generation>.snap`` with a
monotonically increasing zero-padded generation number, written through
:func:`~repro.distributed.snapshot.save_pool_snapshot`'s atomic
tmp-write + rename, so a crash mid-checkpoint never shadows the last
good generation.  The policy's ``keep`` bounds disk usage: after each
successful checkpoint, generations beyond the ``keep`` newest are
deleted.  ``keep >= 2`` is the useful minimum -- it is what lets
recovery survive a checkpoint file that was *promoted* and then
corrupted (torn at the device level), the case the fault-injection
tests replay.

A policy-driven checkpoint that fails with an ``OSError`` (device full,
injected fault) is counted and *swallowed*: an hours-long ingest should
degrade to a stale recovery point, not crash because one checkpoint
write failed.  Explicit :meth:`Checkpointer.checkpoint` calls raise.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    CorruptionError,
    RecoveryError,
    StreamFormatError,
)
from repro.observability.metrics import default_registry
from repro.observability.tracing import span

#: Default checkpoint cadence when a policy does not specify one: large
#: enough that checkpoint I/O stays a few percent of ingest time at the
#: benchmark scales (a full pool snapshot is tens of MB; writing one
#: every ~100k updates would cost double-digit overhead), small enough
#: that a crash loses minutes, not hours.
DEFAULT_EVERY_N_UPDATES = 250_000

_CHECKPOINT_RE = re.compile(r"^ckpt-(\d{8})\.snap$")


def checkpoint_filename(generation: int) -> str:
    """The on-disk name of one checkpoint generation."""
    return f"ckpt-{generation:08d}.snap"


def list_checkpoints(directory: Union[str, Path]) -> List[Tuple[int, Path]]:
    """All checkpoint files in ``directory``, newest generation first.

    Only files matching the ``ckpt-<generation>.snap`` pattern count;
    stray ``.tmp`` files from an interrupted write are ignored (and
    harmless -- the atomic promote never exposed them).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _CHECKPOINT_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    found.sort(key=lambda pair: pair[0], reverse=True)
    return found


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to checkpoint, and how many generations to keep.

    ``every_n_updates`` and ``interval_seconds`` compose with OR: the
    checkpoint fires when either threshold is crossed.  Both ``None``
    means the policy never fires on its own (manual checkpoints only).
    """

    every_n_updates: Optional[int] = DEFAULT_EVERY_N_UPDATES
    interval_seconds: Optional[float] = None
    #: Generations retained after rotation.  2 survives one corrupted
    #: promoted file; raise it for deeper fallback chains.
    keep: int = 2

    def __post_init__(self) -> None:
        if self.every_n_updates is not None and self.every_n_updates < 1:
            raise ConfigurationError("every_n_updates must be >= 1 or None")
        if self.interval_seconds is not None and self.interval_seconds <= 0:
            raise ConfigurationError("interval_seconds must be positive or None")
        if self.keep < 1:
            raise ConfigurationError("a checkpoint policy must keep >= 1 generation")

    def due(self, updates_since: int, seconds_since: float) -> bool:
        """Whether a checkpoint should fire given progress since the last."""
        if self.every_n_updates is not None and updates_since >= self.every_n_updates:
            return True
        if self.interval_seconds is not None and seconds_since >= self.interval_seconds:
            return True
        return False


class Checkpointer:
    """Rotating generation-numbered checkpoints driven by a policy.

    Attach one to an engine with
    :meth:`~repro.core.graph_zeppelin.GraphZeppelin.attach_checkpointer`;
    the engine then calls :meth:`note_updates` on every ingest path and
    checkpoints become hands-off.  The generation counter resumes from
    whatever the directory already holds, so a recovered run keeps
    appending generations instead of overwriting its own history.
    """

    def __init__(
        self,
        engine,
        directory: Union[str, Path],
        policy: Optional[CheckpointPolicy] = None,
        fault_plan=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if engine.tensor_pool is None:
            raise ConfigurationError(
                "checkpointing requires a tensor-pool engine (the flat "
                "sketch backend); the legacy object stores do not snapshot"
            )
        self.engine = engine
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.policy = policy or CheckpointPolicy()
        self.fault_plan = fault_plan
        self._clock = clock
        existing = list_checkpoints(self.directory)
        self._generation = existing[0][0] if existing else 0
        self._updates_since = 0
        self._last_time = clock()
        #: Telemetry: checkpoints written / policy-driven writes that
        #: failed and were absorbed / rotation unlinks that failed.
        self.checkpoints_written = 0
        self.checkpoint_failures = 0
        self.rotation_failures = 0

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Generation number of the most recently written checkpoint."""
        return self._generation

    @property
    def updates_since_checkpoint(self) -> int:
        return self._updates_since

    def note_updates(self, count: int) -> Optional[Path]:
        """Record ingest progress; checkpoint if the policy says so.

        Called by the engine after every ingest entry point.  A due
        checkpoint that fails with ``OSError`` is counted in
        :attr:`checkpoint_failures` and swallowed (see module
        docstring); the progress counters keep accumulating, so the
        next ingest retries immediately.  Overload failures degrade the
        same way: a missed device deadline is a ``TimeoutError`` (hence
        an ``OSError``), and an open circuit breaker's
        ``CircuitOpenError`` is absorbed explicitly -- a checkpoint
        skipped because the device is rejecting calls must not abort
        ingest, exactly as a checkpoint skipped because a write failed
        does not.
        """
        self._updates_since += int(count)
        if not self.policy.due(self._updates_since, self._clock() - self._last_time):
            return None
        try:
            return self.checkpoint()
        except (CircuitOpenError, CorruptionError, OSError):
            # CorruptionError: the snapshot writer read a spilled page
            # whose checksum no longer matched -- the checkpoint is
            # unwritable but the previous generation still stands, the
            # same degradation contract as a failed device write.
            # CircuitOpenError: the breaker is shedding device calls;
            # the previous generation stands and a later cadence tick
            # retries once the breaker admits traffic again.
            self.checkpoint_failures += 1
            registry = default_registry()
            if registry.enabled:
                registry.counter("checkpoint.failures").inc()
            return None

    def checkpoint(self) -> Path:
        """Write the next generation now, then rotate old generations.

        The write itself is atomic (tmp + rename); the injected-fault
        hooks fire around it -- ``raise`` faults before the write (the
        previous generation survives untouched), ``torn`` faults after
        the promote (exactly the corruption :func:`recover_latest`
        must fall back across).  Raises ``OSError`` on failure.
        """
        if self.fault_plan is not None:
            self.fault_plan.before_snapshot_write()
        path = self.directory / checkpoint_filename(self._generation + 1)
        with span("checkpoint.write"):
            self.engine.save_snapshot(path)
        registry = default_registry()
        if registry.enabled:
            registry.counter("checkpoint.written").inc()
        self._generation += 1
        self.checkpoints_written += 1
        self._updates_since = 0
        self._last_time = self._clock()
        if self.fault_plan is not None:
            self.fault_plan.after_snapshot_write(path)
        self._rotate()
        return path

    def _rotate(self) -> None:
        """Delete generations beyond the ``keep`` newest.

        A rotation failure only costs disk space, never data -- but it
        is *counted* (:attr:`rotation_failures`), not silently
        swallowed, so a filesystem quietly refusing unlinks shows up in
        the CLI's counter report instead of as unbounded disk growth.
        """
        for _, path in list_checkpoints(self.directory)[self.policy.keep :]:
            try:
                path.unlink()
            except (CorruptionError, OSError):
                self.rotation_failures += 1


def recover_latest(
    directory: Union[str, Path],
    config=None,
    memory=None,
):
    """Rebuild an engine from the newest *valid* checkpoint in a directory.

    Scans generations newest-first.  Each candidate goes through the
    full PR 5 validation stack -- magic/version, exact payload length,
    geometry, seed, bucket mode, config fingerprint -- via
    :meth:`~repro.core.graph_zeppelin.GraphZeppelin.load_snapshot`; a
    torn, truncated, or otherwise corrupt generation is skipped and the
    previous one is tried, which is why the checkpoint policy keeps
    more than one.  Merged snapshots are skipped too (their state is a
    union, not a stream prefix -- resuming over one would XOR-cancel
    it).

    Returns ``(engine, path, skipped)`` where ``skipped`` lists
    ``(path, reason)`` for every newer generation that was rejected.
    Raises :class:`~repro.exceptions.RecoveryError` when the directory
    holds no usable checkpoint at all.
    """
    from repro.core.graph_zeppelin import GraphZeppelin
    from repro.distributed.snapshot import read_snapshot_meta

    candidates = list_checkpoints(directory)
    if not candidates:
        raise RecoveryError(f"no checkpoints found in {directory}")
    skipped: List[Tuple[Path, str]] = []
    for _, path in candidates:
        try:
            if read_snapshot_meta(path).merged:
                raise StreamFormatError(
                    "merged snapshot (a union of sub-streams, not a stream prefix)"
                )
            engine = GraphZeppelin.load_snapshot(path, config=config, memory=memory)
        except CorruptionError:
            # Distinct from a torn/truncated file: the header parsed and
            # the length checked out, but the payload digests did not --
            # silent corruption the generation fallback must skip too.
            skipped.append((path, "payload checksum mismatch"))
            continue
        except (StreamFormatError, OSError) as exc:
            skipped.append((path, str(exc)))
            continue
        return engine, path, skipped
    detail = "; ".join(f"{path.name}: {reason}" for path, reason in skipped)
    raise RecoveryError(
        f"no valid checkpoint in {directory} ({len(skipped)} rejected: {detail})"
    )
