"""Deterministic fault injection: every recovery path gets a replay button.

A :class:`FaultPlan` is a *seeded, explicit* list of faults to fire at
three injection sites the fault-tolerance plane defends:

``device.read`` / ``device.write``
    The :class:`~repro.memory.hybrid.HybridMemory` consults the plan
    before every block-device call; the k-th read (or write) raises an
    :class:`InjectedFault` (an ``OSError``), exercising the
    transient-retry policy, the dirty-eviction failure path, and the
    surfacing of persistent device errors.

``snapshot``
    The checkpoint layer consults the plan around every snapshot write:
    mode ``"torn"`` truncates the just-promoted file at a byte offset
    (simulating a crash mid-write on a filesystem without atomic
    rename, or sector corruption), mode ``"corrupt"`` flips one bit of
    the promoted file's payload (silent corruption the payload digests
    must catch), and mode ``"raise"`` fails the write before the atomic
    promote (the previous generation must survive).

``block``
    The :class:`~repro.memory.block_device.BlockDevice` consults the
    plan on every block write: mode ``"corrupt"`` flips one bit of the
    k-th written block *after* its checksum was taken -- deterministic
    bit rot the read-side digest verification must detect.

``worker``
    Distributed ingest workers consult the plan at every batch: mode
    ``"kill"`` hard-exits the process (``os._exit`` -- no cleanup, like
    a SIGKILL or OOM kill), ``"raise"`` raises mid-ingest, and
    ``"hang"`` sleeps past any reasonable deadline (a straggler).
    Worker faults are matched by ``(worker, attempt, at)``, so by
    default a fault fires on the worker's *first* attempt only and the
    supervisor's re-dispatch succeeds -- which is exactly the recovery
    property the tests assert.

Faults are plain data: a plan pickles across process boundaries, and
:meth:`FaultPlan.random` derives a plan deterministically from a seed,
so every property-test failure replays from its seed alone.  Sites that
count operations (device reads/writes, snapshot writes) count *per
process*; worker faults are stateless index comparisons, so a plan
copied into K workers still fires each fault exactly where intended.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

#: Exit code a ``"kill"`` worker fault dies with (distinguishable from
#: a crash exit(1) in supervisor logs; any non-zero code is a failure).
KILL_EXIT_CODE = 137

#: How long a ``"hang"`` fault sleeps.  Long enough that any sane
#: straggler timeout fires first; short enough that a test whose
#: supervisor forgets to kill the straggler still terminates.
HANG_SECONDS = 60.0


class InjectedFault(OSError):
    """The OSError raised by injected device/snapshot faults.

    A subclass so tests can tell an injected failure from a real one;
    everything that handles faults catches plain ``OSError``.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``site`` is ``"device.read"``, ``"device.write"``, ``"block"``,
    ``"snapshot"``, or ``"worker"``.  ``at`` is the 1-based operation
    count the fault fires on (device call, block write, snapshot write,
    or worker batch index).  ``worker`` / ``attempt`` scope worker
    faults; ``attempt`` also scopes snapshot faults consulted from a
    worker (the supervisor's re-dispatch then writes a clean snapshot).
    ``offset`` is the byte offset a ``"torn"`` snapshot keeps, or the
    bit position a ``"corrupt"`` fault flips (reduced modulo the
    payload size).
    """

    site: str
    at: int = 1
    mode: str = "raise"  # "raise" | "kill" | "hang" | "torn" | "corrupt"
    worker: Optional[int] = None
    attempt: int = 0
    offset: int = 0

    def __post_init__(self) -> None:
        if self.site not in ("device.read", "device.write", "block", "snapshot", "worker"):
            raise ValueError(f"unknown fault site {self.site!r}")
        valid_modes = {
            "device.read": ("raise",),
            "device.write": ("raise",),
            "block": ("corrupt",),
            "snapshot": ("raise", "torn", "corrupt"),
            "worker": ("raise", "kill", "hang"),
        }[self.site]
        if self.mode not in valid_modes:
            raise ValueError(
                f"fault mode {self.mode!r} invalid for site {self.site!r} "
                f"(valid: {valid_modes})"
            )
        if self.at < 1:
            raise ValueError("fault 'at' counts operations from 1")


class FaultPlan:
    """A deterministic, picklable schedule of faults to inject.

    Build one explicitly from :class:`FaultSpec` entries, or derive one
    from a seed with :meth:`random`.  All consultation methods are
    cheap no-ops when no spec matches their site, so production code
    can carry an (absent) plan at zero cost.
    """

    def __init__(self, faults: Sequence[FaultSpec] = (), seed: Optional[int] = None):
        self.faults: Tuple[FaultSpec, ...] = tuple(faults)
        #: The seed this plan was derived from (replay bookkeeping only).
        self.seed = seed
        self._device_reads = 0
        self._device_writes = 0
        self._block_writes = 0
        self._snapshot_writes = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        num_workers: int = 0,
        max_batches: int = 4,
        device_faults: int = 0,
        max_device_ops: int = 32,
        snapshot_tears: int = 0,
        max_snapshot_bytes: int = 4096,
        kill_fraction: float = 0.7,
        block_corruptions: int = 0,
        max_block_writes: int = 64,
        snapshot_corruptions: int = 0,
    ) -> "FaultPlan":
        """A seeded plan: random kill points and I/O faults, replayable.

        Picks one first-attempt fault for each of ``num_workers``
        workers (``kill`` with probability ``kill_fraction``, else
        ``raise``) at a uniform batch index in ``[1, max_batches]``,
        plus ``device_faults`` read/write raises, ``snapshot_tears``
        torn checkpoint writes at uniform offsets,
        ``block_corruptions`` bit flips on uniform block writes, and
        ``snapshot_corruptions`` payload bit flips on uniform snapshot
        generations.  Same seed, same plan -- the property tests print
        only the seed on failure.
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        faults: List[FaultSpec] = []
        for worker in range(num_workers):
            mode = "kill" if rng.random() < kill_fraction else "raise"
            faults.append(
                FaultSpec(
                    site="worker",
                    worker=worker,
                    at=int(rng.integers(1, max_batches + 1)),
                    mode=mode,
                )
            )
        for _ in range(device_faults):
            site = "device.read" if rng.random() < 0.5 else "device.write"
            faults.append(FaultSpec(site=site, at=int(rng.integers(1, max_device_ops + 1))))
        for _ in range(snapshot_tears):
            faults.append(
                FaultSpec(
                    site="snapshot",
                    at=int(rng.integers(1, 4)),
                    mode="torn",
                    offset=int(rng.integers(0, max_snapshot_bytes)),
                )
            )
        for _ in range(block_corruptions):
            faults.append(
                FaultSpec(
                    site="block",
                    mode="corrupt",
                    at=int(rng.integers(1, max_block_writes + 1)),
                    offset=int(rng.integers(0, 1 << 20)),
                )
            )
        for _ in range(snapshot_corruptions):
            faults.append(
                FaultSpec(
                    site="snapshot",
                    mode="corrupt",
                    at=int(rng.integers(1, 4)),
                    offset=int(rng.integers(0, max_snapshot_bytes * 8)),
                )
            )
        return cls(faults, seed=seed)

    def for_worker(self, worker: int) -> "FaultPlan":
        """The sub-plan a single worker process needs (fresh counters)."""
        return FaultPlan(
            [f for f in self.faults if f.site == "worker" and f.worker == worker],
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # device I/O site (consulted by HybridMemory)
    # ------------------------------------------------------------------
    def on_device_read(self) -> None:
        """Count one device read; raise if the plan says this one fails."""
        self._device_reads += 1
        for fault in self.faults:
            if fault.site == "device.read" and fault.at == self._device_reads:
                raise InjectedFault(f"injected device read fault #{self._device_reads}")

    def on_device_write(self) -> None:
        """Count one device write; raise if the plan says this one fails."""
        self._device_writes += 1
        for fault in self.faults:
            if fault.site == "device.write" and fault.at == self._device_writes:
                raise InjectedFault(f"injected device write fault #{self._device_writes}")

    # ------------------------------------------------------------------
    # block-write site (consulted by the BlockDevice itself)
    # ------------------------------------------------------------------
    def corrupt_block_write(self, payload: bytes) -> bytes:
        """Count one block write; flip a bit if the plan rots this one.

        Called by the device *after* it has taken the block's checksum,
        so the flip models silent post-write corruption: the stored
        bytes diverge from the digest and the next read of this block
        must raise a :class:`~repro.exceptions.CorruptionError`.
        """
        self._block_writes += 1
        for fault in self.faults:
            if fault.site == "block" and fault.at == self._block_writes:
                if not payload:
                    return payload
                rotten = bytearray(payload)
                bit = fault.offset % (len(rotten) * 8)
                rotten[bit >> 3] ^= 1 << (bit & 7)
                return bytes(rotten)
        return payload

    # ------------------------------------------------------------------
    # snapshot-write site (consulted by the checkpoint layer)
    # ------------------------------------------------------------------
    def before_snapshot_write(self) -> None:
        """Count one snapshot write; ``raise`` faults fire here (before
        the atomic promote, so the previous generation stays intact)."""
        self._snapshot_writes += 1
        for fault in self.faults:
            if (
                fault.site == "snapshot"
                and fault.mode == "raise"
                and fault.at == self._snapshot_writes
            ):
                raise InjectedFault(
                    f"injected snapshot write fault #{self._snapshot_writes}"
                )

    def after_snapshot_write(
        self,
        path: Union[str, Path],
        attempt: Optional[int] = None,
        worker: Optional[int] = None,
    ) -> None:
        """Apply any ``torn`` / ``corrupt`` fault to the just-written file.

        Damaging the file *after* the atomic promote models the failure
        the rename cannot defend against -- a corrupted or partially
        persisted file discovered at recovery time -- which is exactly
        what ``recover_latest`` (torn headers) and the payload digests
        (flipped bits) must fall back across.  ``attempt`` scopes the
        faults when a distributed worker consults the plan, so its
        re-dispatched attempt writes a clean snapshot; the checkpoint
        layer passes ``None`` (generation matching via ``at`` only).
        """
        if attempt is not None:
            # Worker context: workers never call before_snapshot_write
            # (raise-mode snapshot faults are a checkpoint-layer
            # concept), so their writes are counted here instead.  Each
            # worker process unpickles its own plan with counters reset,
            # so ``at`` indexes that worker's own snapshot writes.
            self._snapshot_writes += 1
        for fault in self.faults:
            if fault.site != "snapshot" or fault.at != self._snapshot_writes:
                continue
            if attempt is not None and fault.attempt != attempt:
                continue
            if worker is not None and fault.worker is not None and fault.worker != worker:
                continue
            if fault.mode == "torn":
                path = Path(path)
                size = path.stat().st_size
                with path.open("r+b") as handle:
                    handle.truncate(min(fault.offset, size))
            elif fault.mode == "corrupt":
                from repro.distributed.snapshot import _HEADER

                path = Path(path)
                size = path.stat().st_size
                # Flip a bit past the header so the damage is *silent*:
                # the file still parses, only the payload digests can
                # tell (a header flip would be caught as a format error,
                # which the torn mode already exercises).
                base = _HEADER.size if size > _HEADER.size else 0
                region = size - base
                if region <= 0:
                    continue
                bit = fault.offset % (region * 8)
                with path.open("r+b") as handle:
                    handle.seek(base + (bit >> 3))
                    byte = handle.read(1)[0]
                    handle.seek(base + (bit >> 3))
                    handle.write(bytes([byte ^ (1 << (bit & 7))]))

    # ------------------------------------------------------------------
    # worker site (consulted by distributed ingest workers)
    # ------------------------------------------------------------------
    def check_worker_batch(self, worker: int, attempt: int, batch_index: int) -> None:
        """Fire any fault planned for this worker/attempt/batch.

        ``kill`` hard-exits the process with :data:`KILL_EXIT_CODE`
        (no finally blocks, no atexit -- the supervisor sees exactly
        what an OOM kill looks like); ``raise`` raises an
        :class:`InjectedFault`; ``hang`` sleeps :data:`HANG_SECONDS`.
        """
        for fault in self.faults:
            if (
                fault.site == "worker"
                and fault.worker == worker
                and fault.attempt == attempt
                and fault.at == batch_index
            ):
                if fault.mode == "kill":
                    os._exit(KILL_EXIT_CODE)
                if fault.mode == "hang":
                    time.sleep(HANG_SECONDS)
                    return
                raise InjectedFault(
                    f"injected worker fault (worker {worker}, attempt {attempt}, "
                    f"batch {batch_index})"
                )

    # ------------------------------------------------------------------
    def __reduce__(self):
        # Counters deliberately reset across pickling: each process
        # counts its own operations, matching the per-process semantics
        # documented above.
        return (FaultPlan, (self.faults, self.seed))

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.faults)} faults, seed={self.seed})"
