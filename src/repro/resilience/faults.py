"""Deterministic fault injection: every recovery path gets a replay button.

A :class:`FaultPlan` is a *seeded, explicit* list of faults to fire at
three injection sites the fault-tolerance plane defends:

``device.read`` / ``device.write``
    The :class:`~repro.memory.hybrid.HybridMemory` consults the plan
    before every block-device call; the k-th read (or write) raises an
    :class:`InjectedFault` (an ``OSError``), exercising the
    transient-retry policy, the dirty-eviction failure path, and the
    surfacing of persistent device errors.

``snapshot``
    The checkpoint layer consults the plan around every snapshot write:
    mode ``"torn"`` truncates the just-promoted file at a byte offset
    (simulating a crash mid-write on a filesystem without atomic
    rename, or sector corruption), mode ``"raise"`` fails the write
    before the atomic promote (the previous generation must survive).

``worker``
    Distributed ingest workers consult the plan at every batch: mode
    ``"kill"`` hard-exits the process (``os._exit`` -- no cleanup, like
    a SIGKILL or OOM kill), ``"raise"`` raises mid-ingest, and
    ``"hang"`` sleeps past any reasonable deadline (a straggler).
    Worker faults are matched by ``(worker, attempt, at)``, so by
    default a fault fires on the worker's *first* attempt only and the
    supervisor's re-dispatch succeeds -- which is exactly the recovery
    property the tests assert.

Faults are plain data: a plan pickles across process boundaries, and
:meth:`FaultPlan.random` derives a plan deterministically from a seed,
so every property-test failure replays from its seed alone.  Sites that
count operations (device reads/writes, snapshot writes) count *per
process*; worker faults are stateless index comparisons, so a plan
copied into K workers still fires each fault exactly where intended.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

#: Exit code a ``"kill"`` worker fault dies with (distinguishable from
#: a crash exit(1) in supervisor logs; any non-zero code is a failure).
KILL_EXIT_CODE = 137

#: How long a ``"hang"`` fault sleeps.  Long enough that any sane
#: straggler timeout fires first; short enough that a test whose
#: supervisor forgets to kill the straggler still terminates.
HANG_SECONDS = 60.0


class InjectedFault(OSError):
    """The OSError raised by injected device/snapshot faults.

    A subclass so tests can tell an injected failure from a real one;
    everything that handles faults catches plain ``OSError``.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``site`` is ``"device.read"``, ``"device.write"``, ``"snapshot"``,
    or ``"worker"``.  ``at`` is the 1-based operation count the fault
    fires on (device call, snapshot write, or worker batch index).
    ``worker`` / ``attempt`` scope worker faults; ``attempt`` also
    scopes snapshot faults (the checkpoint generation counter), letting
    a plan corrupt generation 3 specifically.  ``offset`` is the byte
    offset a ``"torn"`` snapshot keeps.
    """

    site: str
    at: int = 1
    mode: str = "raise"  # "raise" | "kill" | "hang" | "torn"
    worker: Optional[int] = None
    attempt: int = 0
    offset: int = 0

    def __post_init__(self) -> None:
        if self.site not in ("device.read", "device.write", "snapshot", "worker"):
            raise ValueError(f"unknown fault site {self.site!r}")
        valid_modes = {
            "device.read": ("raise",),
            "device.write": ("raise",),
            "snapshot": ("raise", "torn"),
            "worker": ("raise", "kill", "hang"),
        }[self.site]
        if self.mode not in valid_modes:
            raise ValueError(
                f"fault mode {self.mode!r} invalid for site {self.site!r} "
                f"(valid: {valid_modes})"
            )
        if self.at < 1:
            raise ValueError("fault 'at' counts operations from 1")


class FaultPlan:
    """A deterministic, picklable schedule of faults to inject.

    Build one explicitly from :class:`FaultSpec` entries, or derive one
    from a seed with :meth:`random`.  All consultation methods are
    cheap no-ops when no spec matches their site, so production code
    can carry an (absent) plan at zero cost.
    """

    def __init__(self, faults: Sequence[FaultSpec] = (), seed: Optional[int] = None):
        self.faults: Tuple[FaultSpec, ...] = tuple(faults)
        #: The seed this plan was derived from (replay bookkeeping only).
        self.seed = seed
        self._device_reads = 0
        self._device_writes = 0
        self._snapshot_writes = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        num_workers: int = 0,
        max_batches: int = 4,
        device_faults: int = 0,
        max_device_ops: int = 32,
        snapshot_tears: int = 0,
        max_snapshot_bytes: int = 4096,
        kill_fraction: float = 0.7,
    ) -> "FaultPlan":
        """A seeded plan: random kill points and I/O faults, replayable.

        Picks one first-attempt fault for each of ``num_workers``
        workers (``kill`` with probability ``kill_fraction``, else
        ``raise``) at a uniform batch index in ``[1, max_batches]``,
        plus ``device_faults`` read/write raises and ``snapshot_tears``
        torn checkpoint writes at uniform offsets.  Same seed, same
        plan -- the property tests print only the seed on failure.
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        faults: List[FaultSpec] = []
        for worker in range(num_workers):
            mode = "kill" if rng.random() < kill_fraction else "raise"
            faults.append(
                FaultSpec(
                    site="worker",
                    worker=worker,
                    at=int(rng.integers(1, max_batches + 1)),
                    mode=mode,
                )
            )
        for _ in range(device_faults):
            site = "device.read" if rng.random() < 0.5 else "device.write"
            faults.append(FaultSpec(site=site, at=int(rng.integers(1, max_device_ops + 1))))
        for _ in range(snapshot_tears):
            faults.append(
                FaultSpec(
                    site="snapshot",
                    at=int(rng.integers(1, 4)),
                    mode="torn",
                    offset=int(rng.integers(0, max_snapshot_bytes)),
                )
            )
        return cls(faults, seed=seed)

    def for_worker(self, worker: int) -> "FaultPlan":
        """The sub-plan a single worker process needs (fresh counters)."""
        return FaultPlan(
            [f for f in self.faults if f.site == "worker" and f.worker == worker],
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # device I/O site (consulted by HybridMemory)
    # ------------------------------------------------------------------
    def on_device_read(self) -> None:
        """Count one device read; raise if the plan says this one fails."""
        self._device_reads += 1
        for fault in self.faults:
            if fault.site == "device.read" and fault.at == self._device_reads:
                raise InjectedFault(f"injected device read fault #{self._device_reads}")

    def on_device_write(self) -> None:
        """Count one device write; raise if the plan says this one fails."""
        self._device_writes += 1
        for fault in self.faults:
            if fault.site == "device.write" and fault.at == self._device_writes:
                raise InjectedFault(f"injected device write fault #{self._device_writes}")

    # ------------------------------------------------------------------
    # snapshot-write site (consulted by the checkpoint layer)
    # ------------------------------------------------------------------
    def before_snapshot_write(self) -> None:
        """Count one snapshot write; ``raise`` faults fire here (before
        the atomic promote, so the previous generation stays intact)."""
        self._snapshot_writes += 1
        for fault in self.faults:
            if (
                fault.site == "snapshot"
                and fault.mode == "raise"
                and fault.at == self._snapshot_writes
            ):
                raise InjectedFault(
                    f"injected snapshot write fault #{self._snapshot_writes}"
                )

    def after_snapshot_write(self, path: Union[str, Path]) -> None:
        """Apply any ``torn`` fault to the just-written snapshot file.

        Truncating *after* the atomic promote models the failure the
        rename cannot defend against -- a corrupted or partially
        persisted file discovered at recovery time -- which is exactly
        what ``recover_latest`` must fall back across.
        """
        for fault in self.faults:
            if (
                fault.site == "snapshot"
                and fault.mode == "torn"
                and fault.at == self._snapshot_writes
            ):
                path = Path(path)
                size = path.stat().st_size
                with path.open("r+b") as handle:
                    handle.truncate(min(fault.offset, size))

    # ------------------------------------------------------------------
    # worker site (consulted by distributed ingest workers)
    # ------------------------------------------------------------------
    def check_worker_batch(self, worker: int, attempt: int, batch_index: int) -> None:
        """Fire any fault planned for this worker/attempt/batch.

        ``kill`` hard-exits the process with :data:`KILL_EXIT_CODE`
        (no finally blocks, no atexit -- the supervisor sees exactly
        what an OOM kill looks like); ``raise`` raises an
        :class:`InjectedFault`; ``hang`` sleeps :data:`HANG_SECONDS`.
        """
        for fault in self.faults:
            if (
                fault.site == "worker"
                and fault.worker == worker
                and fault.attempt == attempt
                and fault.at == batch_index
            ):
                if fault.mode == "kill":
                    os._exit(KILL_EXIT_CODE)
                if fault.mode == "hang":
                    time.sleep(HANG_SECONDS)
                    return
                raise InjectedFault(
                    f"injected worker fault (worker {worker}, attempt {attempt}, "
                    f"batch {batch_index})"
                )

    # ------------------------------------------------------------------
    def __reduce__(self):
        # Counters deliberately reset across pickling: each process
        # counts its own operations, matching the per-process semantics
        # documented above.
        return (FaultPlan, (self.faults, self.seed))

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.faults)} faults, seed={self.seed})"
