"""Deterministic fault injection: every recovery path gets a replay button.

A :class:`FaultPlan` is a *seeded, explicit* list of faults to fire at
three injection sites the fault-tolerance plane defends:

``device.read`` / ``device.write``
    The :class:`~repro.memory.hybrid.HybridMemory` consults the plan
    before every block-device call; the k-th read (or write) raises an
    :class:`InjectedFault` (an ``OSError``), exercising the
    transient-retry policy, the dirty-eviction failure path, and the
    surfacing of persistent device errors.

``snapshot``
    The checkpoint layer consults the plan around every snapshot write:
    mode ``"torn"`` truncates the just-promoted file at a byte offset
    (simulating a crash mid-write on a filesystem without atomic
    rename, or sector corruption), mode ``"corrupt"`` flips one bit of
    the promoted file's payload (silent corruption the payload digests
    must catch), and mode ``"raise"`` fails the write before the atomic
    promote (the previous generation must survive).

``block``
    The :class:`~repro.memory.block_device.BlockDevice` consults the
    plan on every block write: mode ``"corrupt"`` flips one bit of the
    k-th written block *after* its checksum was taken -- deterministic
    bit rot the read-side digest verification must detect.

``worker``
    Distributed ingest workers consult the plan at every batch: mode
    ``"kill"`` hard-exits the process (``os._exit`` -- no cleanup, like
    a SIGKILL or OOM kill), ``"raise"`` raises mid-ingest, ``"hang"``
    sleeps past any reasonable deadline (a straggler), and ``"slow"``
    sleeps a bounded ``delay_seconds`` (a degraded worker the deadline
    machinery must catch without declaring it dead).  Worker faults are
    matched by ``(worker, attempt, at)``, so by default a fault fires
    on the worker's *first* attempt only and the supervisor's
    re-dispatch succeeds -- which is exactly the recovery property the
    tests assert.

``memory``
    The :class:`~repro.memory.hybrid.HybridMemory` consults the plan on
    every admission check (a ``reserve`` call or a stored payload):
    mode ``"pressure"`` makes the k-th check report transient memory
    pressure -- a refused reservation or a budget squeeze the paged
    pool answers by degrading its working set to the floor instead of
    raising.

The latency modes (``"slow"`` everywhere, ``"hang"`` on workers) sleep
deterministic, bounded durations: ``slow`` sleeps the spec's
``delay_seconds``; ``hang`` sleeps the plan's ``hang_seconds``
(default :data:`HANG_SECONDS`) in small chunks, checking the plan's
optional ``cancel`` event so a test can reclaim a hung thread without
killing a process.

Faults are plain data: a plan pickles across process boundaries, and
:meth:`FaultPlan.random` derives a plan deterministically from a seed,
so every property-test failure replays from its seed alone.  Sites that
count operations (device reads/writes, snapshot writes) count *per
process*; worker faults are stateless index comparisons, so a plan
copied into K workers still fires each fault exactly where intended.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

#: Exit code a ``"kill"`` worker fault dies with (distinguishable from
#: a crash exit(1) in supervisor logs; any non-zero code is a failure).
KILL_EXIT_CODE = 137

#: How long a ``"hang"`` fault sleeps (overridable per plan via
#: ``hang_seconds``).  Long enough that any sane straggler timeout
#: fires first; short enough that a test whose supervisor forgets to
#: kill the straggler still terminates.
HANG_SECONDS = 60.0

#: Upper bound on a ``"slow"`` fault's ``delay_seconds`` -- slow means
#: degraded, not hung; longer stalls are what ``"hang"`` models.
MAX_SLOW_SECONDS = 30.0

#: Chunk size of interruptible sleeps (hang faults, supervisor
#: backoff): the latency ceiling on noticing a cancel request.
SLEEP_CHUNK_SECONDS = 0.02


def interruptible_sleep(seconds: float, cancel=None) -> None:
    """Sleep ``seconds`` in small chunks, returning early if ``cancel``
    (a ``threading.Event``-like object) is set.

    Shared by hang faults and the supervisor's backoff sleeps, so a
    shutdown or test teardown is never stuck behind a long
    ``time.sleep``.
    """
    deadline = time.monotonic() + seconds
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return
        if cancel is not None and cancel.is_set():
            return
        time.sleep(min(SLEEP_CHUNK_SECONDS, remaining))


class InjectedFault(OSError):
    """The OSError raised by injected device/snapshot faults.

    A subclass so tests can tell an injected failure from a real one;
    everything that handles faults catches plain ``OSError``.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``site`` is ``"device.read"``, ``"device.write"``, ``"block"``,
    ``"snapshot"``, ``"worker"``, or ``"memory"``.  ``at`` is the
    1-based operation count the fault fires on (device call, block
    write, snapshot write, worker batch index, or memory admission
    check).  ``worker`` / ``attempt`` scope worker faults; ``attempt``
    also scopes snapshot faults consulted from a worker (the
    supervisor's re-dispatch then writes a clean snapshot).  ``offset``
    is the byte offset a ``"torn"`` snapshot keeps, or the bit position
    a ``"corrupt"`` fault flips (reduced modulo the payload size).
    ``delay_seconds`` is how long a ``"slow"`` fault stalls the
    operation (bounded by :data:`MAX_SLOW_SECONDS`).
    """

    site: str
    at: int = 1
    mode: str = "raise"  # "raise"|"kill"|"hang"|"torn"|"corrupt"|"slow"|"pressure"
    worker: Optional[int] = None
    attempt: int = 0
    offset: int = 0
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        valid_sites = {
            "device.read": ("raise", "slow"),
            "device.write": ("raise", "slow"),
            "block": ("corrupt",),
            "snapshot": ("raise", "torn", "corrupt", "slow"),
            "worker": ("raise", "kill", "hang", "slow"),
            "memory": ("pressure",),
        }
        if self.site not in valid_sites:
            raise ValueError(f"unknown fault site {self.site!r}")
        valid_modes = valid_sites[self.site]
        if self.mode not in valid_modes:
            raise ValueError(
                f"fault mode {self.mode!r} invalid for site {self.site!r} "
                f"(valid: {valid_modes})"
            )
        if self.at < 1:
            raise ValueError("fault 'at' counts operations from 1")
        if self.mode == "slow" and not 0 < self.delay_seconds <= MAX_SLOW_SECONDS:
            raise ValueError(
                f"slow-fault delay_seconds must be in (0, {MAX_SLOW_SECONDS}]"
            )


class FaultPlan:
    """A deterministic, picklable schedule of faults to inject.

    Build one explicitly from :class:`FaultSpec` entries, or derive one
    from a seed with :meth:`random`.  All consultation methods are
    cheap no-ops when no spec matches their site, so production code
    can carry an (absent) plan at zero cost.
    """

    def __init__(
        self,
        faults: Sequence[FaultSpec] = (),
        seed: Optional[int] = None,
        hang_seconds: Optional[float] = None,
    ):
        self.faults: Tuple[FaultSpec, ...] = tuple(faults)
        #: The seed this plan was derived from (replay bookkeeping only).
        self.seed = seed
        #: How long a ``"hang"`` worker fault sleeps (defaults to
        #: :data:`HANG_SECONDS`); chaos tests shrink it so a straggler
        #: timeout is exercised in milliseconds, not minutes.
        self.hang_seconds = float(hang_seconds) if hang_seconds is not None else None
        #: Optional ``threading.Event``: setting it wakes any hang-fault
        #: sleep early.  Not pickled -- a worker process hangs until its
        #: supervisor kills it, exactly like production.
        self.cancel = None
        self._device_reads = 0
        self._device_writes = 0
        self._block_writes = 0
        self._snapshot_writes = 0
        self._memory_checks = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        num_workers: int = 0,
        max_batches: int = 4,
        device_faults: int = 0,
        max_device_ops: int = 32,
        snapshot_tears: int = 0,
        max_snapshot_bytes: int = 4096,
        kill_fraction: float = 0.7,
        block_corruptions: int = 0,
        max_block_writes: int = 64,
        snapshot_corruptions: int = 0,
        slow_faults: int = 0,
        max_slow_delay: float = 0.05,
        pressure_faults: int = 0,
        max_memory_checks: int = 64,
        hang_seconds: Optional[float] = None,
    ) -> "FaultPlan":
        """A seeded plan: random kill points and I/O faults, replayable.

        Picks one first-attempt fault for each of ``num_workers``
        workers (``kill`` with probability ``kill_fraction``, else
        ``raise``) at a uniform batch index in ``[1, max_batches]``,
        plus ``device_faults`` read/write raises, ``snapshot_tears``
        torn checkpoint writes at uniform offsets,
        ``block_corruptions`` bit flips on uniform block writes,
        ``snapshot_corruptions`` payload bit flips on uniform snapshot
        generations, ``slow_faults`` bounded device-latency stalls (a
        uniform delay up to ``max_slow_delay``), and
        ``pressure_faults`` transient memory-pressure events on uniform
        admission checks.  Same seed, same plan -- the property tests
        print only the seed on failure.
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        faults: List[FaultSpec] = []
        for worker in range(num_workers):
            mode = "kill" if rng.random() < kill_fraction else "raise"
            faults.append(
                FaultSpec(
                    site="worker",
                    worker=worker,
                    at=int(rng.integers(1, max_batches + 1)),
                    mode=mode,
                )
            )
        for _ in range(device_faults):
            site = "device.read" if rng.random() < 0.5 else "device.write"
            faults.append(FaultSpec(site=site, at=int(rng.integers(1, max_device_ops + 1))))
        for _ in range(snapshot_tears):
            faults.append(
                FaultSpec(
                    site="snapshot",
                    at=int(rng.integers(1, 4)),
                    mode="torn",
                    offset=int(rng.integers(0, max_snapshot_bytes)),
                )
            )
        for _ in range(block_corruptions):
            faults.append(
                FaultSpec(
                    site="block",
                    mode="corrupt",
                    at=int(rng.integers(1, max_block_writes + 1)),
                    offset=int(rng.integers(0, 1 << 20)),
                )
            )
        for _ in range(snapshot_corruptions):
            faults.append(
                FaultSpec(
                    site="snapshot",
                    mode="corrupt",
                    at=int(rng.integers(1, 4)),
                    offset=int(rng.integers(0, max_snapshot_bytes * 8)),
                )
            )
        for _ in range(slow_faults):
            site = "device.read" if rng.random() < 0.5 else "device.write"
            faults.append(
                FaultSpec(
                    site=site,
                    mode="slow",
                    at=int(rng.integers(1, max_device_ops + 1)),
                    delay_seconds=float(rng.uniform(max_slow_delay / 10, max_slow_delay)),
                )
            )
        for _ in range(pressure_faults):
            faults.append(
                FaultSpec(
                    site="memory",
                    mode="pressure",
                    at=int(rng.integers(1, max_memory_checks + 1)),
                )
            )
        return cls(faults, seed=seed, hang_seconds=hang_seconds)

    def for_worker(self, worker: int) -> "FaultPlan":
        """The sub-plan a single worker process needs (fresh counters)."""
        return FaultPlan(
            [f for f in self.faults if f.site == "worker" and f.worker == worker],
            seed=self.seed,
            hang_seconds=self.hang_seconds,
        )

    # ------------------------------------------------------------------
    # device I/O site (consulted by HybridMemory)
    # ------------------------------------------------------------------
    def on_device_read(self) -> None:
        """Count one device read; raise or stall if the plan faults it."""
        self._device_reads += 1
        for fault in self.faults:
            if fault.site == "device.read" and fault.at == self._device_reads:
                if fault.mode == "slow":
                    interruptible_sleep(fault.delay_seconds, self.cancel)
                    continue
                raise InjectedFault(f"injected device read fault #{self._device_reads}")

    def on_device_write(self) -> None:
        """Count one device write; raise or stall if the plan faults it."""
        self._device_writes += 1
        for fault in self.faults:
            if fault.site == "device.write" and fault.at == self._device_writes:
                if fault.mode == "slow":
                    interruptible_sleep(fault.delay_seconds, self.cancel)
                    continue
                raise InjectedFault(f"injected device write fault #{self._device_writes}")

    # ------------------------------------------------------------------
    # memory-admission site (consulted by HybridMemory)
    # ------------------------------------------------------------------
    def on_memory_check(self) -> bool:
        """Count one admission check; True when the plan injects pressure.

        Consulted by :meth:`~repro.memory.hybrid.HybridMemory.reserve`
        (the refused reservation) and on every stored payload (the
        allocation squeeze).  The caller degrades -- it never raises --
        so pressure faults model load, not failure.
        """
        self._memory_checks += 1
        for fault in self.faults:
            if (
                fault.site == "memory"
                and fault.mode == "pressure"
                and fault.at == self._memory_checks
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # block-write site (consulted by the BlockDevice itself)
    # ------------------------------------------------------------------
    def corrupt_block_write(self, payload: bytes) -> bytes:
        """Count one block write; flip a bit if the plan rots this one.

        Called by the device *after* it has taken the block's checksum,
        so the flip models silent post-write corruption: the stored
        bytes diverge from the digest and the next read of this block
        must raise a :class:`~repro.exceptions.CorruptionError`.
        """
        self._block_writes += 1
        for fault in self.faults:
            if fault.site == "block" and fault.at == self._block_writes:
                if not payload:
                    return payload
                rotten = bytearray(payload)
                bit = fault.offset % (len(rotten) * 8)
                rotten[bit >> 3] ^= 1 << (bit & 7)
                return bytes(rotten)
        return payload

    # ------------------------------------------------------------------
    # snapshot-write site (consulted by the checkpoint layer)
    # ------------------------------------------------------------------
    def before_snapshot_write(self) -> None:
        """Count one snapshot write; ``raise`` faults fire here (before
        the atomic promote, so the previous generation stays intact)
        and ``slow`` faults stall here (a checkpoint on a congested
        device)."""
        self._snapshot_writes += 1
        for fault in self.faults:
            if fault.site != "snapshot" or fault.at != self._snapshot_writes:
                continue
            if fault.mode == "slow":
                interruptible_sleep(fault.delay_seconds, self.cancel)
            elif fault.mode == "raise":
                raise InjectedFault(
                    f"injected snapshot write fault #{self._snapshot_writes}"
                )

    def after_snapshot_write(
        self,
        path: Union[str, Path],
        attempt: Optional[int] = None,
        worker: Optional[int] = None,
    ) -> None:
        """Apply any ``torn`` / ``corrupt`` fault to the just-written file.

        Damaging the file *after* the atomic promote models the failure
        the rename cannot defend against -- a corrupted or partially
        persisted file discovered at recovery time -- which is exactly
        what ``recover_latest`` (torn headers) and the payload digests
        (flipped bits) must fall back across.  ``attempt`` scopes the
        faults when a distributed worker consults the plan, so its
        re-dispatched attempt writes a clean snapshot; the checkpoint
        layer passes ``None`` (generation matching via ``at`` only).
        """
        if attempt is not None:
            # Worker context: workers never call before_snapshot_write
            # (raise-mode snapshot faults are a checkpoint-layer
            # concept), so their writes are counted here instead.  Each
            # worker process unpickles its own plan with counters reset,
            # so ``at`` indexes that worker's own snapshot writes.
            self._snapshot_writes += 1
        for fault in self.faults:
            if fault.site != "snapshot" or fault.at != self._snapshot_writes:
                continue
            if attempt is not None and fault.attempt != attempt:
                continue
            if worker is not None and fault.worker is not None and fault.worker != worker:
                continue
            if fault.mode == "torn":
                path = Path(path)
                size = path.stat().st_size
                with path.open("r+b") as handle:
                    handle.truncate(min(fault.offset, size))
            elif fault.mode == "corrupt":
                from repro.distributed.snapshot import _HEADER

                path = Path(path)
                size = path.stat().st_size
                # Flip a bit past the header so the damage is *silent*:
                # the file still parses, only the payload digests can
                # tell (a header flip would be caught as a format error,
                # which the torn mode already exercises).
                base = _HEADER.size if size > _HEADER.size else 0
                region = size - base
                if region <= 0:
                    continue
                bit = fault.offset % (region * 8)
                with path.open("r+b") as handle:
                    handle.seek(base + (bit >> 3))
                    byte = handle.read(1)[0]
                    handle.seek(base + (bit >> 3))
                    handle.write(bytes([byte ^ (1 << (bit & 7))]))

    # ------------------------------------------------------------------
    # worker site (consulted by distributed ingest workers)
    # ------------------------------------------------------------------
    def check_worker_batch(self, worker: int, attempt: int, batch_index: int) -> None:
        """Fire any fault planned for this worker/attempt/batch.

        ``kill`` hard-exits the process with :data:`KILL_EXIT_CODE`
        (no finally blocks, no atexit -- the supervisor sees exactly
        what an OOM kill looks like); ``raise`` raises an
        :class:`InjectedFault`; ``hang`` sleeps the plan's
        ``hang_seconds`` (default :data:`HANG_SECONDS`) in
        cancel-checked chunks; ``slow`` sleeps the spec's bounded
        ``delay_seconds`` and continues.
        """
        for fault in self.faults:
            if (
                fault.site == "worker"
                and fault.worker == worker
                and fault.attempt == attempt
                and fault.at == batch_index
            ):
                if fault.mode == "kill":
                    os._exit(KILL_EXIT_CODE)
                if fault.mode == "hang":
                    hang = (
                        self.hang_seconds
                        if self.hang_seconds is not None
                        else HANG_SECONDS
                    )
                    interruptible_sleep(hang, self.cancel)
                    return
                if fault.mode == "slow":
                    interruptible_sleep(fault.delay_seconds, self.cancel)
                    return
                raise InjectedFault(
                    f"injected worker fault (worker {worker}, attempt {attempt}, "
                    f"batch {batch_index})"
                )

    # ------------------------------------------------------------------
    def __reduce__(self):
        # Counters deliberately reset across pickling: each process
        # counts its own operations, matching the per-process semantics
        # documented above.  The cancel event (if any) stays behind --
        # it is a same-process test affordance, not plan state.
        return (FaultPlan, (self.faults, self.seed, self.hang_seconds))

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.faults)} faults, seed={self.seed})"
