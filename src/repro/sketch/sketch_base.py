"""Common interface and result types for l0-samplers.

Definition 1 of the paper describes an l0-sampler by three properties:
it is *sampleable* (a query returns a nonzero coordinate of the sketched
vector), *linear* (sketches of two vectors can be added to obtain a
sketch of the sum), and it has *low failure probability*.  The
:class:`L0Sampler` abstract base class captures exactly that interface
so the connectivity algorithm, tests, and benchmarks are agnostic to
which sampler is plugged in.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Iterable, Optional


class SampleOutcome(enum.Enum):
    """The three possible results of querying an l0-sampler."""

    #: A nonzero coordinate was recovered.
    GOOD = "good"
    #: Every bucket was empty: the sketched vector is (believed to be) zero.
    ZERO = "zero"
    #: The vector is nonzero but no bucket could produce a sample.
    FAIL = "fail"


#: Integer encodings of :class:`SampleOutcome` used by the batched query
#: path, where per-component results travel as ``(status, index)`` numpy
#: arrays instead of :class:`SampleResult` objects.
SAMPLE_ZERO = 0
SAMPLE_GOOD = 1
SAMPLE_FAIL = 2

#: Status code -> :class:`SampleOutcome`, for converting batched results
#: back to the object form (tests, debugging).
OUTCOME_BY_CODE = {
    SAMPLE_ZERO: SampleOutcome.ZERO,
    SAMPLE_GOOD: SampleOutcome.GOOD,
    SAMPLE_FAIL: SampleOutcome.FAIL,
}


@dataclass(frozen=True, slots=True)
class SampleResult:
    """Result of a query: an outcome plus the sampled index when GOOD."""

    outcome: SampleOutcome
    index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.outcome is SampleOutcome.GOOD and self.index is None:
            raise ValueError("a GOOD sample must carry an index")
        if self.outcome is not SampleOutcome.GOOD and self.index is not None:
            raise ValueError("only GOOD samples carry an index")

    @property
    def is_good(self) -> bool:
        return self.outcome is SampleOutcome.GOOD

    @property
    def is_zero(self) -> bool:
        return self.outcome is SampleOutcome.ZERO

    @property
    def is_fail(self) -> bool:
        return self.outcome is SampleOutcome.FAIL

    @classmethod
    def good(cls, index: int) -> "SampleResult":
        return cls(SampleOutcome.GOOD, index)

    @classmethod
    def zero(cls) -> "SampleResult":
        return cls(SampleOutcome.ZERO)

    @classmethod
    def fail(cls) -> "SampleResult":
        return cls(SampleOutcome.FAIL)


class L0Sampler(abc.ABC):
    """Abstract l0-sampler over a fixed-length vector.

    Concrete samplers are constructed with the vector length, a failure
    probability ``delta``, and a seed that fixes their hash functions.
    Two sketches are *compatible* (and can be merged) when they were
    constructed with the same parameters and seed.
    """

    #: Length of the sketched vector.
    vector_length: int
    #: Failure probability bound delta.
    delta: float
    #: Seed fixing the hash functions.
    seed: int

    @abc.abstractmethod
    def update(self, index: int, delta: int = 1) -> None:
        """Apply a single coordinate update to the sketch."""

    @abc.abstractmethod
    def update_batch(self, indices: Iterable[int]) -> None:
        """Apply a batch of +1 coordinate updates (toggles for Z_2)."""

    @abc.abstractmethod
    def query(self) -> SampleResult:
        """Attempt to recover a nonzero coordinate of the sketched vector."""

    @abc.abstractmethod
    def merge(self, other: "L0Sampler") -> None:
        """Add ``other`` into this sketch in place (linearity)."""

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Size of the sketch payload in bytes (paper's accounting)."""

    @abc.abstractmethod
    def is_compatible(self, other: "L0Sampler") -> bool:
        """Whether ``other`` can legally be merged into this sketch."""

    def __iadd__(self, other: "L0Sampler") -> "L0Sampler":
        self.merge(other)
        return self
