"""The out-of-core tensor pool: round-major sketch state in node-group pages.

:class:`PagedTensorPool` is the out-of-core twin of
:class:`~repro.sketch.tensor_pool.NodeTensorPool`: the same round-major
bucket tensors, but partitioned into contiguous node-range **pages** --
node-group slabs whose serialised payload is a whole number of device
blocks -- stored through :class:`~repro.memory.hybrid.HybridMemory` as
raw byte payloads.  The pool keeps an **LRU-pinned working set** of
deserialised pages; a fold pins its page (paging it in if needed), XORs
through the shared columnar fold kernels, and marks it dirty, and dirty
pages write back through the hybrid memory when the working set evicts
them (paying modelled SSD I/O once per page instead of once per node).

Layout.  A page covering nodes ``[lo, hi)`` is one C-order tensor of
shape ``(num_rounds, hi - lo, cols, rows)`` (packed mode; wide mode
keeps an alpha uint64 and gamma uint32 pair back to back).  Round-major
*within the page* means one Boruvka round of the page is a contiguous
byte range of the payload, so the query side rebuilds a whole round
slab with **partial-range reads**
(:meth:`~repro.memory.hybrid.HybridMemory.load_range`): a spilled page
contributes only the blocks its round stripe straddles, roughly
``1 / num_rounds`` of the page, instead of a whole-page (or per-node
blob) round trip.  The assembled slab feeds the *unchanged*
whole-round query machinery of the parent class -- the pool only
overrides the slab/bundle accessors -- so
:func:`~repro.core.boruvka.vectorized_spanning_forest` is the single
query driver for in-RAM and out-of-core engines alike.

Because every fold is the same hash + argsort + XOR kernel over the
same seeds and XOR folding is order-independent, a paged pool fed any
interleaving of the same updates holds buckets **bit-identical** to the
in-RAM pool (property-tested across RAM budgets, page sizes, and
buffering modes).

RAM accounting.  The pinned working set's bytes are *reserved* out of
the hybrid memory's byte cache, so pinned pages plus cached payloads
stay inside the configured budget.  Query-side slab assembly is
charged the same way: each round's whole-graph slab
(``1 / num_rounds`` of the pool -- exactly what the whole-round query
engine scans, in RAM or out of core) is assembled into a persistent
per-tensor buffer whose bytes are reserved from the byte cache at the
first query, making the budget a hard ceiling for queries too.  The
one remaining floor: a budget smaller than a single round slab still
allocates the buffer, mirroring the one-page working-set floor.

Concurrency: page pin/unpin/evict bookkeeping -- and with it all
*fold-side* hybrid-memory traffic -- serialises under one lock, while
the folds themselves (the expensive kernels) run outside it on
disjoint pages.  A pinned page is never evicted, which is what lets
the page-affine sharded ingest fold different pages from different
worker threads.  Queries concurrent with folds are **not** supported
(the read path's partial-range loads run outside the lock), matching
the parent pool's contract: fold, publish, then query.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.edge_encoding import EdgeEncoder
from repro.exceptions import ConfigurationError
from repro.memory.hybrid import HybridMemory
from repro.observability.tracing import span
from repro.sketch.flat_node_sketch import (
    fold_hashed,
    hash_depths_checksums,
    max_radix_dst_span,
    validate_indices,
)
from repro.sketch.tensor_pool import NodeTensorPool, auto_fold_chunk

#: Default target payload size of one page, in device blocks (16 KB
#: blocks -> 256 KB pages).  Big enough that one page-in amortises over
#: thousands of buffered updates, small enough that a handful of pages
#: fit modest RAM budgets.
DEFAULT_PAGE_TARGET_BLOCKS = 16

#: Mean updates per touched page below which a fold batch runs through
#: the *combined* kernel path (one fold over every page at once, split
#: only for the scatter) instead of one int16-radix fold per page.  The
#: radix path is ~2.5x faster per element, but each per-page call pays
#: a fixed kernel setup cost, so sparse batches -- few updates landing
#: on each page, the out-of-core common case -- win by folding once.
COMBINED_FOLD_THRESHOLD = 256

_LOW32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)


def plan_page_bounds(
    num_nodes: int,
    node_bytes: int,
    block_size: int,
    num_rows: int,
    nodes_per_page: Optional[int] = None,
    target_blocks: int = DEFAULT_PAGE_TARGET_BLOCKS,
) -> np.ndarray:
    """Contiguous node-range page boundaries for a paged pool.

    Pages hold ``nodes_per_page`` nodes (the tail page may be smaller).
    The automatic size targets ``target_blocks`` device blocks of
    payload per page and is clamped to
    :func:`~repro.sketch.flat_node_sketch.max_radix_dst_span` so every
    page-local fold stays on the kernel's int16 radix fast path.
    Returns ``num_pages + 1`` ascending boundaries.
    """
    if nodes_per_page is None:
        nodes_per_page = max(1, (target_blocks * block_size) // max(node_bytes, 1))
    nodes_per_page = int(min(max(nodes_per_page, 1), max_radix_dst_span(num_rows)))
    bounds = np.arange(0, num_nodes + nodes_per_page, nodes_per_page, dtype=np.int64)
    bounds[-1] = num_nodes
    if bounds.size >= 2 and bounds[-1] == bounds[-2]:
        bounds = bounds[:-1]
    return bounds


class PagedTensorPool(NodeTensorPool):
    """A :class:`NodeTensorPool` whose tensors live in out-of-core pages.

    Parameters (beyond the parent's)
    --------------------------------
    memory:
        The hybrid memory pages are stored through.  Must be
        byte-budgeted (an unbounded memory means the plain in-RAM pool
        should be used instead).
    nodes_per_page:
        Page granularity; ``None`` picks a size targeting
        :data:`DEFAULT_PAGE_TARGET_BLOCKS` device blocks per page.
    resident_pages:
        Working-set budget: how many deserialised pages the pool keeps
        pinned at once.  ``None`` sizes it to half the memory's RAM
        budget, floored at one page -- a fold always needs a live
        tensor to scatter into.  The working set's bytes are
        **reserved** out of the hybrid memory's byte cache
        (:meth:`~repro.memory.hybrid.HybridMemory.reserve`), so pinned
        pages plus cached payloads stay inside the configured budget.
    """

    def __init__(
        self,
        num_nodes: int,
        encoder: EdgeEncoder,
        memory: HybridMemory,
        graph_seed: int = 0,
        delta: float = 0.01,
        num_rounds: Optional[int] = None,
        force_wide: bool = False,
        nodes_per_page: Optional[int] = None,
        resident_pages: Optional[int] = None,
        kernels=None,
    ) -> None:
        if memory is None or memory.is_unbounded:
            raise ConfigurationError(
                "PagedTensorPool needs a byte-budgeted HybridMemory; "
                "use NodeTensorPool when everything fits in RAM"
            )
        super().__init__(
            num_nodes,
            encoder,
            graph_seed=graph_seed,
            delta=delta,
            num_rounds=num_rounds,
            force_wide=force_wide,
            kernels=kernels,
            _allocate=False,
        )
        self.memory = memory
        bucket_bytes = 8 if self._packed else 12
        self._node_payload_bytes = (
            self.num_rounds * self.num_columns * self.num_rows * bucket_bytes
        )
        self.page_bounds = plan_page_bounds(
            self.num_nodes,
            self._node_payload_bytes,
            memory.block_size,
            self.num_rows,
            nodes_per_page=nodes_per_page,
        )
        self.num_pages = int(self.page_bounds.size - 1)
        self.nodes_per_page = int(self.page_bounds[1] - self.page_bounds[0])
        # Pages are *uniform*: the tail page's tensor is padded to the
        # full node count (unused node rows stay zero).  Uniform shapes
        # keep the combined fold's affine target mapping exact and make
        # every payload the same whole number of device blocks.
        raw_bytes = self.nodes_per_page * self._node_payload_bytes
        block = memory.block_size
        self._page_bytes = -(-raw_bytes // block) * block
        if resident_pages is None:
            budget = (memory.ram_bytes or 0) // 2
            resident_pages = budget // max(self._page_bytes, 1)
        self.resident_pages = int(min(max(resident_pages, 1), self.num_pages))
        # The working set's RAM comes out of the shared budget: reserve
        # it from the hybrid memory's byte cache so pinned pages plus
        # cached payloads never exceed ``ram_bytes`` combined.
        self._working_set_reserved = memory.reserve(
            self.resident_pages * self._page_bytes
        )
        # Combined-fold segment mapping (see _fold_columns): remapped
        # destination d' = (d // npp) * rounds * npp + d % npp makes the
        # page-pool-flat bucket offset affine in d', so one kernel call
        # covers updates for every page.
        slots = np.arange(self.num_slots, dtype=np.int64)
        self._combined_offsets = (slots // self.num_columns) * (
            self.nodes_per_page * self.num_columns
        ) + (slots % self.num_columns)
        self._page_elems = (
            self.num_rounds * self.nodes_per_page * self.num_columns * self.num_rows
        )

        self._lock = threading.RLock()
        #: page -> bucket tensor (packed) or (alpha, gamma) pair (wide);
        #: insertion order doubles as LRU recency (moved on access).
        self._resident: Dict[int, Tuple[np.ndarray, ...]] = {}
        self._pins: Dict[int, int] = {}
        self._dirty: set = set()
        #: Persistent query-slab scratch, one whole-graph round slab per
        #: bucket tensor, allocated lazily at the first query and
        #: *reserved* out of the hybrid memory's byte cache -- query
        #: scratch is charged against the RAM budget like the fold-side
        #: working set, not stacked on top of it.
        self._slab_bufs: Optional[Dict[str, np.ndarray]] = None
        self._slab_reserved_bytes = 0
        #: per-key ``(round, version)`` tag of the slab currently held
        #: in the reusable buffer above.
        self._assembled: Dict[str, Tuple[int, int]] = {}
        # Working-set telemetry (page_ins counts misses that had to
        # deserialise; partial_reads counts query-side round stripes
        # served by byte-range loads).
        self.page_ins = 0
        self.page_writebacks = 0
        self.partial_reads = 0
        #: Dirty evictions whose device write-back raised ``OSError``
        #: (the page stayed resident and dirty -- no data was lost).
        self.page_writeback_failures = 0
        #: Times the working set was degraded to the one-page floor by
        #: a memory-pressure event (throughput drops, answers do not).
        self.pressure_degradations = 0
        memory.add_pressure_listener(self._on_memory_pressure)

    # ------------------------------------------------------------------
    # page geometry
    # ------------------------------------------------------------------
    @property
    def is_paged(self) -> bool:
        return True

    def page_of(self, node: int) -> int:
        """The page owning ``node``."""
        return int(np.searchsorted(self.page_bounds, node, side="right") - 1)

    def page_span(self, page: int) -> Tuple[int, int]:
        """Node range ``[lo, hi)`` of one page."""
        if not 0 <= page < self.num_pages:
            raise ValueError(f"page {page} outside [0, {self.num_pages})")
        return int(self.page_bounds[page]), int(self.page_bounds[page + 1])

    def _page_nodes(self, page: int) -> int:
        """Nodes actually owned by one page (tail pages own fewer)."""
        return int(self.page_bounds[page + 1] - self.page_bounds[page])

    def page_payload_bytes(self, page: int) -> int:
        """Serialised page size: uniform, a whole number of device blocks."""
        return self._page_bytes

    def _round_stripe(self, key: str, round_index: int) -> Tuple[int, int]:
        """Byte range of one round's stripe inside a page payload."""
        stripe64 = self.nodes_per_page * self.num_columns * self.num_rows * 8
        if key in ("packed", "alpha"):
            return round_index * stripe64, stripe64
        stripe32 = stripe64 // 2
        return self.num_rounds * stripe64 + round_index * stripe32, stripe32

    def _page_key(self, page: int) -> Tuple[str, int]:
        return ("sketch-page", page)

    def _page_shape(self) -> Tuple[int, int, int, int]:
        return (self.num_rounds, self.nodes_per_page, self.num_columns, self.num_rows)

    # ------------------------------------------------------------------
    # the LRU-pinned working set
    # ------------------------------------------------------------------
    def _materialize(self, page: int) -> Tuple[np.ndarray, ...]:
        """Deserialise a page from the hybrid memory (zeros if untouched)."""
        shape = self._page_shape()
        key = self._page_key(page)
        if key not in self.memory:
            # Never-written pages are implicitly all-zero: sketches are
            # allocated lazily, so construction does not spill V pages.
            if self._packed:
                return (np.zeros(shape, dtype=np.uint64),)
            return (np.zeros(shape, dtype=np.uint64), np.zeros(shape, dtype=np.uint32))
        with span("page.materialize"):
            payload = self.memory.load(key)
            self.page_ins += 1
            count = int(np.prod(shape))
            if self._packed:
                return (
                    np.frombuffer(payload, dtype=np.uint64, count=count)
                    .reshape(shape)
                    .copy(),
                )
            alpha = np.frombuffer(payload, dtype=np.uint64, count=count).reshape(shape).copy()
            gamma = (
                np.frombuffer(payload, dtype=np.uint32, offset=count * 8, count=count)
                .reshape(shape)
                .copy()
            )
            return alpha, gamma

    def _serialize_page(self, page: int, entry: Tuple[np.ndarray, ...]) -> bytes:
        raw = b"".join(tensor.tobytes(order="C") for tensor in entry)
        if len(raw) == self._page_bytes:
            return raw
        return raw.ljust(self._page_bytes, b"\0")

    def _write_back(self, page: int, entry: Tuple[np.ndarray, ...]) -> None:
        with span("page.writeback"):
            self.memory.store(self._page_key(page), self._serialize_page(page, entry))
            self.page_writebacks += 1

    def _pin(self, page: int) -> Tuple[np.ndarray, ...]:
        """Pin a page into the working set; pair with :meth:`_unpin`."""
        with span("page.pin"), self._lock:
            entry = self._resident.get(page)
            if entry is None:
                entry = self._materialize(page)
                self._resident[page] = entry
                # Pin BEFORE evicting: when every other resident page is
                # pinned (concurrent page-affine folds on a tiny working
                # set), the eviction sweep must not pick the page we just
                # brought in -- its upcoming fold would land in an
                # orphaned tensor and silently vanish.
                self._pins[page] = self._pins.get(page, 0) + 1
                self._evict_to_budget()
            else:
                # Refresh recency: dict order is the LRU order.
                self._resident[page] = self._resident.pop(page)
                self._pins[page] = self._pins.get(page, 0) + 1
            return entry

    def _unpin(self, page: int) -> None:
        with self._lock:
            remaining = self._pins.get(page, 0) - 1
            if remaining <= 0:
                self._pins.pop(page, None)
            else:
                self._pins[page] = remaining

    def _evict_to_budget(self) -> None:
        """Evict least-recently-used unpinned pages, writing back dirty ones.

        Called with the lock held.  If every resident page is pinned the
        budget is allowed to overflow -- evicting a page mid-fold would
        lose its updates -- and pressure resolves at the next unpinned
        eviction opportunity.

        A write-back that fails with ``OSError`` (a flaky device; the
        fault-injection tests replay this) must not lose the page: its
        buckets exist nowhere but in the evicted tensors.  The victim
        is restored resident-and-dirty, the failure is counted, and the
        sweep stops with the budget temporarily overflowed -- the next
        eviction opportunity retries, exactly like the all-pinned
        overflow above.
        """
        if len(self._resident) <= self.resident_pages:
            return
        with span("page.evict"):
            while len(self._resident) > self.resident_pages:
                victim = next(
                    (p for p in self._resident if not self._pins.get(p)), None
                )
                if victim is None:
                    return
                entry = self._resident.pop(victim)
                if victim in self._dirty:
                    try:
                        self._write_back(victim, entry)
                    except OSError:
                        # Still dirty (never discarded); re-residency at the
                        # MRU end keeps the retry from re-picking it first.
                        self._resident[victim] = entry
                        self.page_writeback_failures += 1
                        return
                    self._dirty.discard(victim)

    def _on_memory_pressure(self) -> None:
        """Degrade the working set to the one-page floor under pressure.

        Registered with the hybrid memory's pressure listeners: when a
        reservation is refused or an injected allocation-pressure fault
        fires, the pool shrinks ``resident_pages`` to 1, evicts down to
        the new budget, and hands the freed reservation back to the
        byte cache.  Throughput degrades (more page churn); answers do
        not -- the fold/query paths never depended on the working-set
        size.  The degradation is sticky until :meth:`restore_working_set`.
        """
        with self._lock:
            if self.resident_pages <= 1:
                return
            freed = (self.resident_pages - 1) * self._page_bytes
            self.resident_pages = 1
            self._evict_to_budget()
            released = self.memory.release(min(freed, self._working_set_reserved))
            self._working_set_reserved -= released
            self.pressure_degradations += 1

    def restore_working_set(self, resident_pages: Optional[int] = None) -> int:
        """Re-grow a degraded working set once pressure has passed.

        Re-reserves bytes from the hybrid memory's cache for up to
        ``resident_pages`` pages (the original construction-time budget
        when ``None``) and raises the working-set budget by however
        many whole pages the reservation actually covered.  Returns the
        new budget.
        """
        with self._lock:
            if resident_pages is None:
                budget = (self.memory.ram_bytes or 0) // 2
                resident_pages = budget // max(self._page_bytes, 1)
            target = int(min(max(resident_pages, 1), self.num_pages))
            if target <= self.resident_pages:
                return self.resident_pages
            wanted = (target - self.resident_pages) * self._page_bytes
            taken = self.memory.reserve(wanted)
            self._working_set_reserved += taken
            self.resident_pages += taken // self._page_bytes
            return self.resident_pages

    def sync(self) -> None:
        """Write every dirty resident page back to the hybrid memory.

        The working set stays resident (and clean); serialisation and
        benchmarks call this to make the byte tier authoritative.  A
        failed write-back leaves exactly the unwritten pages dirty (the
        error propagates -- sync callers need the byte tier to actually
        be authoritative), so a later sync over a healed device
        finishes the job.
        """
        with self._lock:
            for page in sorted(self._dirty):
                entry = self._resident.get(page)
                if entry is not None:
                    self._write_back(page, entry)
                self._dirty.discard(page)

    def resident_page_count(self) -> int:
        with self._lock:
            return len(self._resident)

    def scrub(self) -> List[int]:
        """Verify checksums of every stored page; return the corrupt ones.

        Walks all pages the hybrid memory holds (cached and spilled)
        through :meth:`~repro.memory.hybrid.HybridMemory.verify_key`,
        which checks both the per-block device digests and the
        whole-payload digest.  Returns the sorted page indices whose
        stored bytes failed -- the exact input read-repair needs.  Call
        :meth:`sync` first so dirty resident pages are represented in
        the byte tier; the scrub itself mutates nothing.
        """
        with self._lock:
            corrupt = self.memory.scrub()
        return sorted(
            int(key[1])
            for key in corrupt
            if isinstance(key, tuple) and len(key) == 2 and key[0] == "sketch-page"
        )

    # ------------------------------------------------------------------
    # folds (updates)
    # ------------------------------------------------------------------
    def _split_by_page(
        self,
        dsts: np.ndarray,
        columns: Sequence[np.ndarray],
        pages: Optional[np.ndarray] = None,
    ) -> List[Tuple[int, List[np.ndarray]]]:
        """Group update columns by the page owning each destination.

        Returns ``(page, [dsts_group, *column_groups])`` tuples; one
        radix argsort of the (small-int) page ids groups the whole
        batch, mirroring the sharded partition step.
        """
        if pages is None:
            pages = np.searchsorted(self.page_bounds, dsts, side="right") - 1
        if self.num_pages <= np.iinfo(np.int16).max:
            order = np.argsort(pages.astype(np.int16), kind="stable")
        else:
            order = np.argsort(pages, kind="stable")
        sorted_pages = pages[order]
        cuts = np.flatnonzero(
            np.concatenate([[True], sorted_pages[1:] != sorted_pages[:-1]])
        )
        ends = np.append(cuts[1:], dsts.size)
        groups = []
        for start, stop in zip(cuts.tolist(), ends.tolist()):
            rows = order[start:stop]
            groups.append(
                (int(sorted_pages[start]), [dsts[rows]] + [col[rows] for col in columns])
            )
        return groups

    def _scatter_into_page(
        self,
        entry: Tuple[np.ndarray, ...],
        targets: np.ndarray,
        alpha_vals: np.ndarray,
        gamma_vals: np.ndarray,
    ) -> None:
        if self._packed:
            flat = entry[0].reshape(-1)
            flat[targets] ^= (alpha_vals << _SHIFT32) | gamma_vals
        else:
            entry[0].reshape(-1)[targets] ^= alpha_vals
            entry[1].reshape(-1)[targets] ^= gamma_vals.astype(np.uint32)

    def _fold_into_page(
        self,
        page: int,
        dsts: np.ndarray,
        indices: np.ndarray,
        depths: Optional[np.ndarray] = None,
        checksums: Optional[np.ndarray] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        """Pin one page and fold a mixed-node column into it.

        The *dense* fold path: the whole column targets one page, so
        its node-local destination span fits the kernel's int16 radix
        fast path.  ``indices`` must already be validated uint64 edge
        slots inside the page's node range.  When ``depths`` /
        ``checksums`` are given the hash phase is assumed done (the
        sharded thread path); otherwise each chunk hashes inline.
        """
        node_lo = int(self.page_bounds[page])
        local = dsts - np.int64(node_lo)
        if self._kernels is not None:
            # Native fold: hash + depth + scatter fused per update in
            # the compiled kernel (re-hashing precomputed batches is
            # deterministic, so the result stays bit-identical).
            entry = self._pin(page)
            try:
                self._kernels.fold_page(self, entry, indices, local)
                with self._lock:
                    self._dirty.add(page)
            finally:
                self._unpin(page)
            return
        chunk = (
            int(chunk_size) if chunk_size else auto_fold_chunk(self.num_slots, dsts.size)
        )
        entry = self._pin(page)
        try:
            for start in range(0, dsts.size, chunk):
                sl = slice(start, start + chunk)
                if depths is None:
                    chunk_depths, chunk_checksums = hash_depths_checksums(
                        indices[sl], self._mixed_membership, self._mixed_checksum,
                        self.num_rows,
                    )
                else:
                    chunk_depths, chunk_checksums = depths[sl], checksums[sl]
                targets, alpha_vals, gamma_vals = fold_hashed(
                    indices[sl],
                    chunk_depths,
                    chunk_checksums,
                    self.num_rows,
                    dsts=local[sl],
                    dst_stride=self.num_columns,
                    slot_offsets=self._combined_offsets,
                )
                self._scatter_into_page(entry, targets, alpha_vals, gamma_vals)
            with self._lock:
                self._dirty.add(page)
        finally:
            self._unpin(page)

    def _fold_combined(
        self,
        dsts: np.ndarray,
        indices: np.ndarray,
        depths: Optional[np.ndarray] = None,
        checksums: Optional[np.ndarray] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        """Fold a mixed **multi-page** column in one kernel call per chunk.

        Pages are uniform, so the page-pool-flat offset of bucket
        ``(dst, slot)`` is affine in the remapped destination
        ``d' = (dst // npp) * rounds * npp + dst % npp`` with the
        combined slot offsets -- the fold kernel emits global paged
        offsets directly, exactly as the in-RAM pool's round-major
        mapping does.  Emitted targets ascend by segment, so one
        boundary scan splits them per page and each page is pinned only
        for its own scatter.  This is the *sparse* fold path: one
        kernel invocation replaces hundreds of tiny per-page folds when
        a flush spreads few updates over many pages.
        """
        npp = np.int64(self.nodes_per_page)
        remapped = (dsts // npp) * np.int64(self.num_rounds) * npp + dsts % npp
        chunk = (
            int(chunk_size) if chunk_size else auto_fold_chunk(self.num_slots, dsts.size)
        )
        for start in range(0, dsts.size, chunk):
            sl = slice(start, start + chunk)
            if depths is None:
                chunk_depths, chunk_checksums = hash_depths_checksums(
                    indices[sl], self._mixed_membership, self._mixed_checksum,
                    self.num_rows,
                )
            else:
                chunk_depths, chunk_checksums = depths[sl], checksums[sl]
            targets, alpha_vals, gamma_vals = fold_hashed(
                indices[sl],
                chunk_depths,
                chunk_checksums,
                self.num_rows,
                dsts=remapped[sl],
                dst_stride=self.num_columns,
                slot_offsets=self._combined_offsets,
            )
            page_ids = targets // np.int64(self._page_elems)
            cuts = np.flatnonzero(
                np.concatenate([[True], page_ids[1:] != page_ids[:-1]])
            )
            ends = np.append(cuts[1:], targets.size)
            for cut, end in zip(cuts.tolist(), ends.tolist()):
                page = int(page_ids[cut])
                entry = self._pin(page)
                try:
                    self._scatter_into_page(
                        entry,
                        targets[cut:end] - page * self._page_elems,
                        alpha_vals[cut:end],
                        gamma_vals[cut:end],
                    )
                    with self._lock:
                        self._dirty.add(page)
                finally:
                    self._unpin(page)

    def _fold_columns(
        self,
        dsts: np.ndarray,
        indices: np.ndarray,
        depths: Optional[np.ndarray] = None,
        checksums: Optional[np.ndarray] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        """Fold a validated mixed column, picking the cheaper strategy.

        Dense batches (many updates per touched page) run one
        int16-radix fold per page; sparse batches fold once across all
        pages (:data:`COMBINED_FOLD_THRESHOLD`).
        """
        with span("ingest.fold"):
            pages = np.searchsorted(self.page_bounds, dsts, side="right") - 1
            touched = int(np.unique(pages).size)
            # Native kernels fold straight into a pinned page tensor (the
            # fused scatter has no per-page fixed cost worth amortising),
            # so they always take the per-page split.
            if self._kernels is not None or dsts.size >= COMBINED_FOLD_THRESHOLD * touched:
                for page, (page_dsts, rows) in self._split_by_page(
                    dsts, [np.arange(dsts.size)], pages=pages
                ):
                    self._fold_into_page(
                        page,
                        page_dsts,
                        indices[rows],
                        depths=None if depths is None else depths[rows],
                        checksums=None if checksums is None else checksums[rows],
                        chunk_size=chunk_size,
                    )
            else:
                self._fold_combined(
                    dsts,
                    indices,
                    depths=depths,
                    checksums=checksums,
                    chunk_size=chunk_size,
                )

    def fold_shard(
        self,
        dsts: np.ndarray,
        indices: np.ndarray,
        node_lo: int,
        node_hi: int,
        chunk_size: Optional[int] = None,
    ) -> int:
        """Fold a shard's mixed-node column, one owned page at a time.

        Same contract as the parent (destinations inside
        ``[node_lo, node_hi)``, no version/counter updates -- the caller
        publishes); the shard range spans whole pages, each of which is
        pinned, folded, and marked dirty in turn.  Shard ranges that
        snap to page boundaries (the page-affine planner guarantees it)
        make concurrent calls touch disjoint pages.
        """
        dsts = np.asarray(dsts)
        if dsts.shape != np.shape(indices) or dsts.ndim != 1:
            raise ValueError("dsts and indices must be matching one-dimensional arrays")
        if not 0 <= node_lo <= node_hi <= self.num_nodes:
            raise ValueError(
                f"shard range [{node_lo}, {node_hi}) outside [0, {self.num_nodes})"
            )
        idx = validate_indices(indices, self.encoder.vector_length)
        if idx is None:
            return 0
        if ((dsts < node_lo) | (dsts >= node_hi)).any():
            raise ValueError(
                f"destination node outside shard range [{node_lo}, {node_hi})"
            )
        self._fold_columns(
            dsts.astype(np.int64, copy=False), idx, chunk_size=chunk_size
        )
        return int(idx.size)

    def fold_shard_hashed(
        self,
        dsts: np.ndarray,
        edge_rows: np.ndarray,
        indices: np.ndarray,
        depths: np.ndarray,
        checksums: np.ndarray,
        node_lo: int,
        node_hi: int,
        chunk_size: Optional[int] = None,
    ) -> int:
        """:meth:`fold_shard` with the hash phase hoisted (thread backend)."""
        dsts = np.asarray(dsts)
        if dsts.shape != np.shape(edge_rows) or dsts.ndim != 1:
            raise ValueError("dsts and edge_rows must be matching one-dimensional arrays")
        if not 0 <= node_lo <= node_hi <= self.num_nodes:
            raise ValueError(
                f"shard range [{node_lo}, {node_hi}) outside [0, {self.num_nodes})"
            )
        if dsts.size == 0:
            return 0
        if ((dsts < node_lo) | (dsts >= node_hi)).any():
            raise ValueError(
                f"destination node outside shard range [{node_lo}, {node_hi})"
            )
        self._fold_columns(
            dsts.astype(np.int64, copy=False),
            indices[edge_rows],
            depths=depths[edge_rows],
            checksums=checksums[edge_rows],
            chunk_size=chunk_size,
        )
        return int(dsts.size)

    def apply_updates(
        self,
        dsts: np.ndarray,
        indices: np.ndarray,
        chunk_size: Optional[int] = None,
    ) -> None:
        """Fold a mixed multi-node batch, grouped per page (serial entry)."""
        dsts = np.asarray(dsts)
        if dsts.shape != np.shape(indices) or dsts.ndim != 1:
            raise ValueError("dsts and indices must be matching one-dimensional arrays")
        idx = validate_indices(indices, self.encoder.vector_length)
        if idx is None:
            return
        self._check_destinations(dsts)
        self._fold_columns(
            dsts.astype(np.int64, copy=False), idx, chunk_size=chunk_size
        )
        self._version += 1
        self._updates_applied += int(idx.size)

    def apply_edges(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        indices: np.ndarray,
        chunk_size: Optional[int] = None,
    ) -> None:
        """Fold both directions of a canonical edge batch, per page.

        The hash matrices depend only on the edge slot, so the batch is
        hashed **once** and both mirrored halves gather their rows from
        the shared matrices -- the paged counterpart of the parent's
        shared-hash mirror fold.
        """
        if not (np.shape(indices) == np.shape(lo) == np.shape(hi)) or np.ndim(indices) != 1:
            raise ValueError("lo, hi and indices must be matching one-dimensional arrays")
        idx = validate_indices(indices, self.encoder.vector_length)
        if idx is None:
            return
        lo = np.asarray(lo)
        hi = np.asarray(hi)
        self._check_destinations(lo)
        self._check_destinations(hi)
        dsts = np.concatenate([lo, hi]).astype(np.int64, copy=False)
        two_rows = np.concatenate([np.arange(idx.size)] * 2)
        if self._kernels is not None:
            # The native fold re-hashes inside the kernel, so the
            # shared-hash hoist below would be wasted work.
            self._fold_columns(dsts, idx[two_rows], chunk_size=chunk_size)
        else:
            with span("ingest.hash"):
                depths, checksums = hash_depths_checksums(
                    idx, self._mixed_membership, self._mixed_checksum, self.num_rows
                )
            self._fold_columns(
                dsts,
                idx[two_rows],
                depths=depths[two_rows],
                checksums=checksums[two_rows],
                chunk_size=chunk_size,
            )
        self._version += 1
        self._updates_applied += 2 * int(idx.size)

    def apply_node_batch(self, node: int, neighbors) -> None:
        """Fold a single node's neighbor batch through its page."""
        indices = self.encoder.encode_batch(node, neighbors)
        if indices.size == 0:
            return
        page = self.page_of(node)
        dsts = np.full(indices.size, node, dtype=np.int64)
        with span("ingest.fold"):
            self._fold_into_page(page, dsts, indices.astype(np.uint64, copy=False))
        self._version += 1
        self._updates_applied += int(indices.size)

    # ------------------------------------------------------------------
    # query-side slab assembly
    # ------------------------------------------------------------------
    def _page_round_array(self, page: int, key: str, round_index: int) -> np.ndarray:
        """One page's ``(page_nodes, cols, rows)`` stripe of a round.

        A resident page serves its live tensor; a spilled page pays a
        partial-range read covering only this round's bytes.  Queries
        deliberately do not promote pages into the working set -- a
        round scan touching every page would evict the fold path's hot
        pages for read-only data.  Tail pages return only the node rows
        they actually own (the padding stays internal).
        """
        nodes = self._page_nodes(page)
        with self._lock:
            entry = self._resident.get(page)
            if entry is not None:
                tensor = entry[0] if key in ("packed", "alpha") else entry[1]
                return tensor[round_index, :nodes]
        shape = (self.nodes_per_page, self.num_columns, self.num_rows)
        memory_key = self._page_key(page)
        dtype = np.uint32 if key == "gamma" else np.uint64
        if memory_key not in self.memory:
            return np.zeros((nodes,) + shape[1:], dtype=dtype)
        offset, length = self._round_stripe(key, round_index)
        payload = self.memory.load_range(memory_key, offset, length)
        self.partial_reads += 1
        return np.frombuffer(payload, dtype=dtype).reshape(shape)[:nodes]

    def _slab_buffer(self, key: str) -> np.ndarray:
        """The persistent whole-graph round-slab buffer for one tensor key.

        Allocated once, at the first query, and its bytes are reserved
        out of the hybrid memory's byte cache
        (:meth:`~repro.memory.hybrid.HybridMemory.reserve`) -- so the
        RAM budget is a hard ceiling for queries too, not just folds.
        Like the one-page working-set floor, a budget smaller than a
        single round slab still allocates the buffer (a whole-round
        query cannot scan less than one round); the reservation then
        simply claims whatever cache capacity remained.
        """
        with self._lock:
            if self._slab_bufs is None:
                shape = (self.num_nodes, self.num_columns, self.num_rows)
                if self._packed:
                    bufs = {"packed": np.empty(shape, dtype=np.uint64)}
                else:
                    bufs = {
                        "alpha": np.empty(shape, dtype=np.uint64),
                        "gamma": np.empty(shape, dtype=np.uint32),
                    }
                self._slab_reserved_bytes = self.memory.reserve(
                    sum(buf.nbytes for buf in bufs.values())
                )
                self._slab_bufs = bufs
            return self._slab_bufs[key]

    def _round_view(self, key: str, round_index: int) -> np.ndarray:
        """Assemble one round's whole-graph slab from its page stripes.

        The slab (``1 / num_rounds`` of the pool, exactly what the
        whole-round query engine scans) is assembled into the
        budget-reserved reusable buffer and memoised per key until the
        next fold, so a round's phase-1 / phase-2 decodes and the
        complement trick's whole-slab total share one assembly.  The
        returned array is *reused* by the next round's assembly --
        callers that outlive the round (``raw_tensors``) must copy.
        """
        buf = self._slab_buffer(key)
        with self._lock:
            if self._assembled.get(key) == (round_index, self._version):
                return buf
            version = self._version
        for page in range(self.num_pages):
            lo, hi = self.page_span(page)
            buf[lo:hi] = self._page_round_array(page, key, round_index)
        with self._lock:
            self._assembled[key] = (round_index, version)
        return buf

    # ------------------------------------------------------------------
    # per-node views
    # ------------------------------------------------------------------
    def _node_round_arrays(self, node: int, round_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """One node's round arrays from its page stripe alone."""
        page = self.page_of(node)
        local = node - int(self.page_bounds[page])
        if self._packed:
            packed = self._page_round_array(page, "packed", round_index)[local]
            return packed >> _SHIFT32, packed & _LOW32
        return (
            self._page_round_array(page, "alpha", round_index)[local],
            self._page_round_array(page, "gamma", round_index)[local].astype(np.uint64),
        )

    def _node_bundle_arrays(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        page = self.page_of(node)
        local = node - int(self.page_bounds[page])
        entry = self._pin(page)
        try:
            if self._packed:
                packed = entry[0][:, local]
                return packed >> _SHIFT32, packed & _LOW32
            return (
                np.ascontiguousarray(entry[0][:, local]),
                entry[1][:, local].astype(np.uint64),
            )
        finally:
            self._unpin(page)

    def _write_node_bundle(self, node: int, alpha: np.ndarray, gamma: np.ndarray) -> None:
        page = self.page_of(node)
        local = node - int(self.page_bounds[page])
        entry = self._pin(page)
        try:
            if self._packed:
                entry[0][:, local] = (alpha << _SHIFT32) | gamma
            else:
                entry[0][:, local] = alpha
                entry[1][:, local] = gamma.astype(np.uint32)
            with self._lock:
                self._dirty.add(page)
        finally:
            self._unpin(page)

    # ------------------------------------------------------------------
    # whole-pool views and unsupported parent features
    # ------------------------------------------------------------------
    def raw_tensors(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialise the full ``(rounds, nodes, cols, rows)`` tensors.

        Assembles every round slab -- the whole pool in RAM -- so this
        is for equivalence tests and small graphs, not the hot path.
        Each round is copied out of the reusable slab buffer before the
        next round's assembly overwrites it.
        """
        slabs = [
            np.stack(
                [self._round_view(key, r).copy() for r in range(self.num_rounds)]
            )
            for key in (("packed",) if self._packed else ("alpha", "gamma"))
        ]
        if self._packed:
            alpha, gamma = slabs[0] >> _SHIFT32, slabs[0] & _LOW32
        else:
            alpha, gamma = slabs
        alpha.flags.writeable = False
        gamma.flags.writeable = False
        return alpha, gamma

    def to_shared_memory(self) -> None:
        raise ConfigurationError(
            "a paged pool cannot migrate to shared memory; page-affine "
            "sharded ingest runs on the threads backend"
        )

    def merge_from(self, other) -> None:
        """XOR another pool into this one, one page at a time.

        The out-of-core counterpart of
        :meth:`~repro.sketch.tensor_pool.NodeTensorPool.merge_from`:
        each own page is pinned, XORed with the other pool's matching
        node range, and marked dirty, so the merge never holds more
        than the working set in RAM.  The source may be a paged pool
        with the same page geometry (pages pair up one to one), a flat
        pool (its round slabs are sliced by view), or -- the rare
        fallback -- a paged pool with *different* page bounds, which is
        read one assembled round slab at a time.
        """
        self._check_mergeable(other)
        mismatched_paged = other.is_paged and not np.array_equal(
            self.page_bounds, other.page_bounds
        )
        keys = ("packed",) if self._packed else ("alpha", "gamma")
        if mismatched_paged:
            # Round-major outer loop: the source assembles one round
            # slab per (key, round) instead of once per page.
            for round_index in range(self.num_rounds):
                slabs = [other._round_view(key, round_index) for key in keys]
                for page in range(self.num_pages):
                    lo, hi = self.page_span(page)
                    entry = self._pin(page)
                    try:
                        for tensor, slab in zip(entry, slabs):
                            tensor[round_index, : hi - lo] ^= slab[lo:hi]
                        with self._lock:
                            self._dirty.add(page)
                    finally:
                        self._unpin(page)
        else:
            for page in range(self.num_pages):
                lo, hi = self.page_span(page)
                entry = self._pin(page)
                try:
                    if other.is_paged:
                        other_entry = other._pin(page)
                        try:
                            for tensor, source in zip(entry, other_entry):
                                tensor ^= source
                        finally:
                            other._unpin(page)
                    else:
                        for key, tensor in zip(keys, entry):
                            for round_index in range(self.num_rounds):
                                tensor[round_index, : hi - lo] ^= other._round_view(
                                    key, round_index
                                )[lo:hi]
                    with self._lock:
                        self._dirty.add(page)
                finally:
                    self._unpin(page)
        self._version += 1
        self._updates_applied += other._updates_applied

    def page_stats(self) -> Dict[str, int]:
        """Working-set telemetry for reports and the CLI."""
        with self._lock:
            return {
                "num_pages": self.num_pages,
                "nodes_per_page": self.nodes_per_page,
                "page_payload_bytes": self.page_payload_bytes(0),
                "page_blocks": self.page_payload_bytes(0) // self.memory.block_size,
                "resident_pages": len(self._resident),
                "resident_budget": self.resident_pages,
                "page_ins": self.page_ins,
                "page_writebacks": self.page_writebacks,
                "page_writeback_failures": self.page_writeback_failures,
                "partial_reads": self.partial_reads,
                "query_slab_reserved_bytes": self._slab_reserved_bytes,
                "pressure_degradations": self.pressure_degradations,
            }

    def __repr__(self) -> str:
        return (
            f"PagedTensorPool(num_nodes={self.num_nodes}, rounds={self.num_rounds}, "
            f"pages={self.num_pages}x{self.nodes_per_page}, "
            f"page_bytes={self.page_payload_bytes(0)}, "
            f"resident={self.resident_pages}, packed={self._packed})"
        )
