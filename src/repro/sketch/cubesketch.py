"""CubeSketch: the paper's l0-sampler for vectors over the integers mod 2.

A CubeSketch is a matrix of buckets with ``num_columns = O(log 1/delta)``
columns and ``num_rows = O(log n)`` rows.  A vector index ``e`` belongs
to bucket row ``r`` of column ``j`` when the low ``r`` bits of a
per-column membership hash of ``e`` are zero, so row 0 receives every
index and each deeper row receives roughly half the indices of the row
above.  Each bucket stores only two values:

* ``alpha`` -- the XOR of all indices inserted into the bucket,
* ``gamma`` -- the XOR of their per-column checksums.

Because every vector coordinate is 0 or 1, an even number of updates to
the same index cancels out, exactly like the characteristic vectors of
graph nodes whose shared edge disappears when the two node vectors are
added.  A bucket whose support is a single index ``e`` therefore holds
``alpha = e`` and ``gamma = checksum(e)``, which the query recognises by
recomputing the checksum (Figure 6 of the paper).

Updates are a handful of XORs and one 64-bit hash per column; there is
no division and no modular exponentiation, which is where the three
orders of magnitude of speedup over the general-purpose sampler come
from (Figure 4).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, IncompatibleSketchError
from repro.hashing.mixers import (
    hash_to_depth,
    seeded_hash64,
    seeded_hash64_array,
    trailing_zeros64,
)
from repro.hashing.prng import derive_seed
from repro.sketch.bucket import CubeBucket
from repro.sketch.sketch_base import L0Sampler, SampleResult
from repro.sketch.sizes import (
    BYTES_PER_CUBE_BUCKET,
    cubesketch_num_columns,
    cubesketch_num_rows,
)

_GAMMA_MASK = np.uint64(0xFFFFFFFF)

#: Label constants used when deriving per-column hash seeds.
_MEMBERSHIP_LABEL = 1
_CHECKSUM_LABEL = 2


class CubeSketch(L0Sampler):
    """An l0-sampler over Z_2^n built from XOR buckets.

    Parameters
    ----------
    vector_length:
        Length ``n`` of the sketched vector (for graph connectivity this
        is the number of possible edge slots, ``O(V^2)``).
    delta:
        Failure probability bound; the default 1/100 matches the paper's
        per-round sketches and yields 7 columns.
    seed:
        Seed fixing the per-column hash functions.  Sketches can only be
        merged when they share the same seed and dimensions.
    num_columns, num_rows:
        Optional explicit dimensions, overriding the defaults derived
        from ``vector_length`` and ``delta``.  Used by tests and by the
        ablation benchmarks.
    """

    def __init__(
        self,
        vector_length: int,
        delta: float = 0.01,
        seed: int = 0,
        num_columns: Optional[int] = None,
        num_rows: Optional[int] = None,
    ) -> None:
        if vector_length < 1:
            raise ConfigurationError("vector_length must be at least 1")
        if vector_length > 1 << 62:
            raise ConfigurationError(
                "vector_length above 2^62 would overflow the 64-bit alpha field"
            )
        if not 0 < delta < 1:
            raise ConfigurationError("delta must be in (0, 1)")

        self.vector_length = int(vector_length)
        self.delta = float(delta)
        self.seed = int(seed)
        self.num_columns = int(
            num_columns if num_columns is not None else cubesketch_num_columns(delta)
        )
        self.num_rows = int(
            num_rows if num_rows is not None else cubesketch_num_rows(vector_length)
        )
        if self.num_columns < 1 or self.num_rows < 1:
            raise ConfigurationError("sketch must have at least one row and column")

        self._alpha = np.zeros((self.num_rows, self.num_columns), dtype=np.uint64)
        self._gamma = np.zeros((self.num_rows, self.num_columns), dtype=np.uint64)
        self._membership_seeds = [
            derive_seed(self.seed, _MEMBERSHIP_LABEL, col) for col in range(self.num_columns)
        ]
        self._checksum_seeds = [
            derive_seed(self.seed, _CHECKSUM_LABEL, col) for col in range(self.num_columns)
        ]
        self._updates_applied = 0

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update(self, index: int, delta: int = 1) -> None:
        """Toggle coordinate ``index`` of the sketched Z_2 vector.

        ``delta`` is accepted for interface compatibility; over Z_2 both
        +1 and -1 are the same toggle, so only its parity matters and a
        zero delta is rejected.
        """
        if delta % 2 == 0:
            raise ValueError("a Z_2 sketch update must have odd delta (a toggle)")
        self._check_index(index)
        for col in range(self.num_columns):
            membership = seeded_hash64(index, self._membership_seeds[col])
            depth = min(trailing_zeros64(membership) + 1, self.num_rows)
            checksum = seeded_hash64(index, self._checksum_seeds[col]) & 0xFFFFFFFF
            idx64 = np.uint64(index)
            check64 = np.uint64(checksum)
            for row in range(depth):
                self._alpha[row, col] ^= idx64
                self._gamma[row, col] ^= check64
        self._updates_applied += 1

    def update_batch(self, indices: Iterable[int]) -> None:
        """Toggle a batch of coordinates with vectorised hashing.

        Equivalent to calling :meth:`update` once per index, but hashes
        the whole batch per column with numpy and folds the XORs with a
        prefix scan, which is what makes buffered (batched) ingestion
        fast (Section 5.1).
        """
        if isinstance(indices, (np.ndarray, list, tuple)):
            idx = np.asarray(indices)
        else:
            # Generators and other lazy iterables materialise once here,
            # instead of the old list() round-trip that copied sequence
            # inputs twice.
            idx = np.fromiter(indices, dtype=np.int64)
        if idx.size == 0:
            return
        if idx.ndim != 1:
            raise ValueError("update_batch expects a one-dimensional index sequence")
        if idx.dtype.kind in "if" and (idx < 0).any():
            raise ValueError("batch contains a negative index")
        idx = idx.astype(np.uint64, copy=False)
        if int(idx.max()) >= self.vector_length:
            raise ValueError("batch contains an index outside the sketched vector")

        for col in range(self.num_columns):
            membership = seeded_hash64_array(idx, self._membership_seeds[col])
            depths = hash_to_depth(membership, self.num_rows)
            checksums = seeded_hash64_array(idx, self._checksum_seeds[col]) & _GAMMA_MASK

            # Bucket rows are nested: an index with depth d belongs to rows
            # 0..d-1.  Sorting by depth (descending) lets us compute every
            # row's XOR fold as a prefix of one cumulative XOR scan.
            order = np.argsort(-depths, kind="stable")
            sorted_idx = idx[order]
            sorted_checks = checksums[order]
            sorted_depths = depths[order]
            cum_alpha = np.bitwise_xor.accumulate(sorted_idx)
            cum_gamma = np.bitwise_xor.accumulate(sorted_checks)
            # counts[r] = number of indices with depth >= r + 1 (members of row r)
            counts = np.searchsorted(
                -sorted_depths, -(np.arange(1, self.num_rows + 1)), side="right"
            )
            for row in range(self.num_rows):
                count = int(counts[row])
                if count == 0:
                    break
                self._alpha[row, col] ^= cum_alpha[count - 1]
                self._gamma[row, col] ^= cum_gamma[count - 1]
        self._updates_applied += int(idx.size)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self) -> SampleResult:
        """Attempt to recover one nonzero coordinate of the sketched vector.

        Buckets are scanned from the deepest row down to row 0: deep rows
        subsample the support aggressively, so when the vector has many
        nonzero coordinates the singleton bucket (if any) sits in a deep
        row.  Returns ``ZERO`` when every bucket is empty, ``FAIL`` when
        no bucket passes its checksum, and ``GOOD`` with the recovered
        index otherwise.
        """
        any_nonempty = False
        for col in range(self.num_columns):
            checksum_seed = self._checksum_seeds[col]
            for row in range(self.num_rows - 1, -1, -1):
                alpha = int(self._alpha[row, col])
                gamma = int(self._gamma[row, col])
                if alpha == 0 and gamma == 0:
                    continue
                any_nonempty = True
                if alpha >= self.vector_length:
                    continue
                if (seeded_hash64(alpha, checksum_seed) & 0xFFFFFFFF) == gamma:
                    return SampleResult.good(alpha)
        if not any_nonempty:
            return SampleResult.zero()
        return SampleResult.fail()

    def is_empty(self) -> bool:
        """True when every bucket is zero (the sketched vector is zero)."""
        return not self._alpha.any() and not self._gamma.any()

    def bucket(self, row: int, col: int) -> CubeBucket:
        """The logical contents of one bucket (testing / debugging)."""
        return CubeBucket(int(self._alpha[row, col]), int(self._gamma[row, col]))

    # ------------------------------------------------------------------
    # linearity
    # ------------------------------------------------------------------
    def merge(self, other: "L0Sampler") -> None:
        """Add ``other`` into this sketch: ``S(x) + S(y) = S(x XOR y)``."""
        if not self.is_compatible(other):
            raise IncompatibleSketchError(
                "cannot merge CubeSketches with different shapes or seeds"
            )
        assert isinstance(other, CubeSketch)
        self._alpha ^= other._alpha
        self._gamma ^= other._gamma
        self._updates_applied += other._updates_applied

    def is_compatible(self, other: "L0Sampler") -> bool:
        return (
            isinstance(other, CubeSketch)
            and other.vector_length == self.vector_length
            and other.num_rows == self.num_rows
            and other.num_columns == self.num_columns
            and other.seed == self.seed
        )

    def copy(self) -> "CubeSketch":
        """An independent deep copy of this sketch."""
        clone = CubeSketch(
            self.vector_length,
            delta=self.delta,
            seed=self.seed,
            num_columns=self.num_columns,
            num_rows=self.num_rows,
        )
        clone._alpha = self._alpha.copy()
        clone._gamma = self._gamma.copy()
        clone._updates_applied = self._updates_applied
        return clone

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return self.num_rows * self.num_columns

    @property
    def updates_applied(self) -> int:
        """Number of coordinate updates folded into this sketch so far."""
        return self._updates_applied

    def size_bytes(self) -> int:
        """Payload size using the paper's 12-bytes-per-bucket accounting."""
        return self.num_buckets * BYTES_PER_CUBE_BUCKET

    def raw_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The underlying (alpha, gamma) arrays (read-only views)."""
        alpha = self._alpha.view()
        gamma = self._gamma.view()
        alpha.flags.writeable = False
        gamma.flags.writeable = False
        return alpha, gamma

    def load_raw_arrays(self, alpha: np.ndarray, gamma: np.ndarray) -> None:
        """Replace bucket contents (used by serialization)."""
        if alpha.shape != self._alpha.shape or gamma.shape != self._gamma.shape:
            raise ValueError("array shapes do not match the sketch dimensions")
        self._alpha = alpha.astype(np.uint64, copy=True)
        self._gamma = gamma.astype(np.uint64, copy=True)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CubeSketch):
            return NotImplemented
        return (
            self.is_compatible(other)
            and np.array_equal(self._alpha, other._alpha)
            and np.array_equal(self._gamma, other._gamma)
        )

    def __repr__(self) -> str:
        return (
            f"CubeSketch(vector_length={self.vector_length}, delta={self.delta}, "
            f"rows={self.num_rows}, cols={self.num_columns}, seed={self.seed})"
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.vector_length:
            raise ValueError(
                f"index {index} outside sketched vector of length {self.vector_length}"
            )

    @classmethod
    def sum_of(cls, sketches: Sequence["CubeSketch"]) -> "CubeSketch":
        """The linear combination (XOR) of a non-empty list of sketches."""
        if not sketches:
            raise ValueError("sum_of requires at least one sketch")
        total = sketches[0].copy()
        for sketch in sketches[1:]:
            total.merge(sketch)
        return total


def exhaustive_samples(sketch: CubeSketch) -> List[int]:
    """All distinct indices recoverable from any bucket of ``sketch``.

    Used by tests and by the reliability experiment to inspect how many
    distinct coordinates a single sketch exposes; the production query
    path stops at the first good bucket.
    """
    found = set()
    for col in range(sketch.num_columns):
        for row in range(sketch.num_rows):
            bucket = sketch.bucket(row, col)
            if bucket.is_empty or bucket.alpha >= sketch.vector_length:
                continue
            expected = seeded_hash64(bucket.alpha, sketch._checksum_seeds[col]) & 0xFFFFFFFF
            if expected == bucket.gamma:
                found.add(bucket.alpha)
    return sorted(found)
