"""Serialisation of sketches to and from bytes.

GraphZeppelin stores node sketches contiguously on disk so a node
group's sketches can be fetched with a few sequential block reads
(Section 4.1).  The external-memory substrate in :mod:`repro.memory`
works on byte blobs, so sketches need a compact, deterministic binary
form.  Two formats live here:

* **CubeSketch** --
  ``header (5 x uint64 little-endian): magic, vector_length, rows, cols,
  seed`` followed by the raw ``alpha`` array (uint64) and ``gamma``
  array (uint64), both in C order.
* **FlatNodeSketch** -- one blob for a node's *entire* bundle:
  ``header (7 x uint64): magic, node, num_rounds, num_rows, num_cols,
  num_nodes, graph_seed`` followed by the full alpha tensor and gamma tensor in
  their native slot-major ``(rounds, cols, rows)`` layout, each as a
  single C-order ``tobytes`` dump.  There is no per-round framing,
  which is what lets the out-of-core store move a node's bundle with
  one contiguous read/write.

Only these two classes round-trip; the general-purpose sampler holds
unbounded Python integers and exists only as an in-memory baseline.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import StreamFormatError
from repro.sketch.cubesketch import CubeSketch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.edge_encoding import EdgeEncoder
    from repro.sketch.flat_node_sketch import FlatNodeSketch

#: Magic number identifying a serialised CubeSketch ("CUBE" + version 1).
CUBESKETCH_MAGIC = 0x43554245_00000001

#: Magic number identifying a serialised FlatNodeSketch ("FLAT" + version 1).
FLAT_NODE_SKETCH_MAGIC = 0x464C4154_00000001

_HEADER_STRUCT = struct.Struct("<5Q")

_FLAT_HEADER_STRUCT = struct.Struct("<7Q")

_MASK64 = 0xFFFFFFFFFFFFFFFF


def check_magic(actual: int, expected: int, what: str) -> None:
    """Raise a uniform :class:`StreamFormatError` on a magic mismatch.

    Shared by every binary format in the repo (sketch blobs here, pool
    snapshots in :mod:`repro.distributed.snapshot`): the version is
    embedded in the magic's low word, so an old reader rejecting a new
    format -- or a corrupted header -- fails the same way.
    """
    if actual != expected:
        raise StreamFormatError(f"bad {what} magic {actual:#x} (expected {expected:#x})")


def check_payload_length(actual: int, expected: int, what: str) -> None:
    """Raise a uniform :class:`StreamFormatError` on a truncated/padded blob."""
    if actual != expected:
        raise StreamFormatError(
            f"{what} length {actual} does not match expected {expected}"
        )


def cubesketch_to_bytes(sketch: CubeSketch) -> bytes:
    """Serialise a CubeSketch to a compact byte string."""
    alpha, gamma = sketch.raw_arrays()
    header = _HEADER_STRUCT.pack(
        CUBESKETCH_MAGIC,
        sketch.vector_length,
        sketch.num_rows,
        sketch.num_columns,
        sketch.seed,
    )
    return header + alpha.tobytes(order="C") + gamma.astype(np.uint64).tobytes(order="C")


def cubesketch_from_bytes(payload: bytes, delta: float = 0.01) -> CubeSketch:
    """Reconstruct a CubeSketch previously produced by
    :func:`cubesketch_to_bytes`.

    The failure probability ``delta`` is not stored (it is implied by the
    column count); passing it restores the original attribute for
    display purposes only.
    """
    if len(payload) < _HEADER_STRUCT.size:
        raise StreamFormatError("payload too short to contain a sketch header")
    magic, vector_length, rows, cols, seed = _HEADER_STRUCT.unpack_from(payload)
    check_magic(magic, CUBESKETCH_MAGIC, "sketch")
    check_payload_length(
        len(payload), _HEADER_STRUCT.size + 2 * rows * cols * 8, "sketch payload"
    )

    body = np.frombuffer(payload, dtype=np.uint64, offset=_HEADER_STRUCT.size)
    alpha = body[: rows * cols].reshape(rows, cols)
    gamma = body[rows * cols :].reshape(rows, cols)

    sketch = CubeSketch(
        int(vector_length),
        delta=delta,
        seed=int(seed),
        num_rows=int(rows),
        num_columns=int(cols),
    )
    sketch.load_raw_arrays(alpha, gamma)
    return sketch


def serialized_size_bytes(sketch: CubeSketch) -> int:
    """Exact byte length :func:`cubesketch_to_bytes` will produce."""
    return _HEADER_STRUCT.size + 2 * sketch.num_rows * sketch.num_columns * 8


# ======================================================================
# FlatNodeSketch: whole-bundle columnar format
# ======================================================================
def flat_node_sketch_to_bytes(sketch: "FlatNodeSketch") -> bytes:
    """Serialise a flat node sketch as one contiguous blob.

    The tensors are dumped in their native slot-major (rows-innermost)
    layout, so each ``tobytes`` is a straight memory copy with no
    transposition.
    """
    header = _FLAT_HEADER_STRUCT.pack(
        FLAT_NODE_SKETCH_MAGIC,
        sketch.node,
        sketch.num_rounds,
        sketch.num_rows,
        sketch.num_columns,
        sketch.encoder.num_nodes,
        sketch.graph_seed & _MASK64,
    )
    return header + sketch._alpha.tobytes(order="C") + sketch._gamma.tobytes(order="C")


def flat_node_sketch_from_bytes(
    payload: bytes,
    encoder: "EdgeEncoder",
    graph_seed: int,
    delta: float = 0.01,
) -> "FlatNodeSketch":
    """Reconstruct a flat node sketch from :func:`flat_node_sketch_to_bytes`.

    The hash seeds are re-derived from ``graph_seed`` (they are a pure
    function of it and the geometry), so the payload carries only the
    bucket tensors plus the seed itself -- which is cross-checked
    against the caller's, because buckets interpreted under the wrong
    hash functions silently fail every query instead of erroring.
    """
    from repro.sketch.flat_node_sketch import FlatNodeSketch

    if len(payload) < _FLAT_HEADER_STRUCT.size:
        raise StreamFormatError("payload too short to contain a flat-sketch header")
    magic, node, rounds, rows, cols, num_nodes, stored_seed = (
        _FLAT_HEADER_STRUCT.unpack_from(payload)
    )
    check_magic(magic, FLAT_NODE_SKETCH_MAGIC, "flat-sketch")
    if num_nodes != encoder.num_nodes:
        raise StreamFormatError(
            f"flat sketch was built for {num_nodes} nodes, encoder has {encoder.num_nodes}"
        )
    if stored_seed != graph_seed & _MASK64:
        raise StreamFormatError(
            f"flat sketch was written under graph seed {stored_seed}, "
            f"caller supplied {graph_seed & _MASK64}"
        )

    tensor_elems = rounds * rows * cols
    check_payload_length(
        len(payload),
        _FLAT_HEADER_STRUCT.size + 2 * tensor_elems * 8,
        "flat-sketch payload",
    )

    body = np.frombuffer(payload, dtype=np.uint64, offset=_FLAT_HEADER_STRUCT.size)

    sketch = FlatNodeSketch(
        int(node),
        encoder,
        graph_seed=int(graph_seed),
        delta=delta,
        num_rounds=int(rounds),
    )
    if sketch.num_rows != rows or sketch.num_columns != cols:
        raise StreamFormatError(
            "serialised geometry does not match the encoder/delta-derived geometry"
        )
    sketch._alpha = body[:tensor_elems].reshape(rounds, cols, rows).copy()
    sketch._gamma = body[tensor_elems:].reshape(rounds, cols, rows).copy()
    return sketch


def flat_serialized_size_bytes(sketch: "FlatNodeSketch") -> int:
    """Exact byte length :func:`flat_node_sketch_to_bytes` will produce."""
    return (
        _FLAT_HEADER_STRUCT.size
        + 2 * sketch.num_rounds * sketch.num_rows * sketch.num_columns * 8
    )
