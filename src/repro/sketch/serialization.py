"""Serialisation of sketches to and from bytes.

GraphZeppelin stores node sketches contiguously on disk so a node
group's sketches can be fetched with a few sequential block reads
(Section 4.1).  The external-memory substrate in :mod:`repro.memory`
works on byte blobs, so sketches need a compact, deterministic binary
form.  The format is:

``header (5 x uint64 little-endian): magic, vector_length, rows, cols, seed``
followed by the raw ``alpha`` array (uint64) and ``gamma`` array
(uint64), both in C order.

Only :class:`~repro.sketch.cubesketch.CubeSketch` round-trips through
this format; the general-purpose sampler holds unbounded Python
integers and exists only as an in-memory baseline.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.exceptions import StreamFormatError
from repro.sketch.cubesketch import CubeSketch

#: Magic number identifying a serialised CubeSketch ("CUBE" + version 1).
CUBESKETCH_MAGIC = 0x43554245_00000001

_HEADER_STRUCT = struct.Struct("<5Q")


def cubesketch_to_bytes(sketch: CubeSketch) -> bytes:
    """Serialise a CubeSketch to a compact byte string."""
    alpha, gamma = sketch.raw_arrays()
    header = _HEADER_STRUCT.pack(
        CUBESKETCH_MAGIC,
        sketch.vector_length,
        sketch.num_rows,
        sketch.num_columns,
        sketch.seed,
    )
    return header + alpha.tobytes(order="C") + gamma.astype(np.uint64).tobytes(order="C")


def cubesketch_from_bytes(payload: bytes, delta: float = 0.01) -> CubeSketch:
    """Reconstruct a CubeSketch previously produced by
    :func:`cubesketch_to_bytes`.

    The failure probability ``delta`` is not stored (it is implied by the
    column count); passing it restores the original attribute for
    display purposes only.
    """
    if len(payload) < _HEADER_STRUCT.size:
        raise StreamFormatError("payload too short to contain a sketch header")
    magic, vector_length, rows, cols, seed = _HEADER_STRUCT.unpack_from(payload)
    if magic != CUBESKETCH_MAGIC:
        raise StreamFormatError(f"bad sketch magic {magic:#x}")

    expected = _HEADER_STRUCT.size + 2 * rows * cols * 8
    if len(payload) != expected:
        raise StreamFormatError(
            f"payload length {len(payload)} does not match expected {expected}"
        )

    body = np.frombuffer(payload, dtype=np.uint64, offset=_HEADER_STRUCT.size)
    alpha = body[: rows * cols].reshape(rows, cols)
    gamma = body[rows * cols :].reshape(rows, cols)

    sketch = CubeSketch(
        int(vector_length),
        delta=delta,
        seed=int(seed),
        num_rows=int(rows),
        num_columns=int(cols),
    )
    sketch.load_raw_arrays(alpha, gamma)
    return sketch


def serialized_size_bytes(sketch: CubeSketch) -> int:
    """Exact byte length :func:`cubesketch_to_bytes` will produce."""
    return _HEADER_STRUCT.size + 2 * sketch.num_rows * sketch.num_columns * 8
