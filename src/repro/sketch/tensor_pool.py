"""A whole graph's sketch state as two contiguous tensors.

:class:`NodeTensorPool` is the columnar engine's in-RAM backing store:
instead of one Python object (and two arrays) per node, *every* node's
sketch bundle lives in a single pair of
``(num_nodes, num_rounds, num_columns, num_rows)`` uint64 tensors.
Bucket ``(node, round, row, col)`` sits at flat offset
``(node * slots + round * cols + col) * rows + row``, the same
rows-innermost layout :class:`~repro.sketch.flat_node_sketch.FlatNodeSketch`
uses, so the shared :func:`~repro.sketch.flat_node_sketch.columnar_fold`
kernel can fold a *mixed multi-node* batch of updates into the pool with
one hash + one argsort + one fancy-indexed XOR per chunk -- no Python
loop over nodes, rounds, or columns.

This is what turns ``GraphZeppelin.ingest_batch`` into a columnar
pipeline: canonicalise the edge array, mirror it, encode the edge slots,
and hand ``(destination, index)`` columns straight to
:meth:`NodeTensorPool.apply_updates`.

The pool also accelerates the query side: a Boruvka component's cut
sketch is the XOR of its members' round slices, which here is one fancy
gather + XOR reduction over the pool
(:meth:`NodeTensorPool.query_merged`) instead of deserialising and
merging per-node sketch objects.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.edge_encoding import EdgeEncoder
from repro.exceptions import ConfigurationError
from repro.sketch.flat_node_sketch import (
    BATCH_CHUNK,
    FlatNodeSketch,
    columnar_fold,
    flat_seed_matrices,
    fold_hashed,
    hash_depths_checksums,
    query_bucket_arrays,
    validate_indices,
)
from repro.sketch.sizes import (
    BYTES_PER_CUBE_BUCKET,
    cubesketch_num_columns,
    cubesketch_num_rows,
)
from repro.sketch.sketch_base import SampleResult


class NodeTensorPool:
    """Contiguous sketch tensors for every node of a graph.

    Parameters
    ----------
    num_nodes:
        Number of graph nodes (= first tensor axis).
    encoder:
        The engine's shared edge-slot encoder.
    graph_seed:
        Root seed; hash seeds are derived exactly as the per-node
        sketches derive them, so pool state is bit-identical to a
        collection of :class:`FlatNodeSketch` (or legacy ``NodeSketch``)
        objects fed the same updates.
    delta:
        Per-round sketch failure probability.
    num_rounds:
        Boruvka rounds to provision (defaults to ``ceil(log2 V)``).
    """

    def __init__(
        self,
        num_nodes: int,
        encoder: EdgeEncoder,
        graph_seed: int = 0,
        delta: float = 0.01,
        num_rounds: Optional[int] = None,
    ) -> None:
        from repro.core.node_sketch import num_boruvka_rounds

        if num_nodes < 2:
            raise ConfigurationError("a graph needs at least two nodes")
        if not 0 < delta < 1:
            raise ConfigurationError("delta must be in (0, 1)")
        self.num_nodes = int(num_nodes)
        self.encoder = encoder
        self.graph_seed = int(graph_seed)
        self.delta = float(delta)
        self.num_rounds = (
            int(num_rounds) if num_rounds is not None else num_boruvka_rounds(num_nodes)
        )
        self.num_rows = cubesketch_num_rows(encoder.vector_length)
        self.num_columns = cubesketch_num_columns(delta)
        self.num_slots = self.num_rounds * self.num_columns

        shape = (self.num_nodes, self.num_rounds, self.num_columns, self.num_rows)
        self._alpha = np.zeros(shape, dtype=np.uint64)
        self._gamma = np.zeros(shape, dtype=np.uint64)
        (
            self._membership_seeds,
            self._checksum_seeds,
            self._mixed_membership,
            self._mixed_checksum,
        ) = flat_seed_matrices(self.graph_seed, self.num_rounds, self.num_columns)
        self._updates_applied = 0

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def apply_updates(self, dsts: np.ndarray, indices: np.ndarray) -> None:
        """Fold a mixed multi-node batch of edge-slot updates into the pool.

        ``dsts[i]`` is the node whose bundle receives edge-slot
        ``indices[i]``.  The whole batch -- regardless of how many
        distinct nodes it touches -- goes through the shared columnar
        fold kernel in fixed-size chunks.
        """
        dsts = np.asarray(dsts)
        if dsts.shape != np.shape(indices) or dsts.ndim != 1:
            raise ValueError("dsts and indices must be matching one-dimensional arrays")
        idx = validate_indices(indices, self.encoder.vector_length)
        if idx is None:
            return
        self._check_destinations(dsts)
        alpha_flat = self._alpha.reshape(-1)
        gamma_flat = self._gamma.reshape(-1)
        for start in range(0, idx.size, BATCH_CHUNK):
            targets, alpha_vals, gamma_vals = columnar_fold(
                idx[start : start + BATCH_CHUNK].astype(np.uint64, copy=False),
                self._mixed_membership,
                self._mixed_checksum,
                self.num_rows,
                dsts=dsts[start : start + BATCH_CHUNK],
            )
            alpha_flat[targets] ^= alpha_vals
            gamma_flat[targets] ^= gamma_vals
        self._updates_applied += int(idx.size)

    def apply_edges(self, lo: np.ndarray, hi: np.ndarray, indices: np.ndarray) -> None:
        """Fold both directions of a canonical edge batch into the pool.

        ``indices[i]`` is the edge slot of the canonical edge
        ``(lo[i], hi[i])``; both endpoints' bundles receive it.  The
        hash matrices depend only on the index, not the destination, so
        each index is hashed **once** and the depth/checksum matrices
        are shared by the two mirrored halves -- half the hash cost of
        pushing the duplicated column through :meth:`apply_updates`.
        """
        if not (np.shape(indices) == np.shape(lo) == np.shape(hi)) or np.ndim(indices) != 1:
            raise ValueError("lo, hi and indices must be matching one-dimensional arrays")
        idx = validate_indices(indices, self.encoder.vector_length)
        if idx is None:
            return
        self._check_destinations(np.asarray(lo))
        self._check_destinations(np.asarray(hi))
        alpha_flat = self._alpha.reshape(-1)
        gamma_flat = self._gamma.reshape(-1)
        edge_chunk = max(BATCH_CHUNK // 2, 1)
        for start in range(0, idx.size, edge_chunk):
            chunk = idx[start : start + edge_chunk]
            depths, checksums = hash_depths_checksums(
                chunk, self._mixed_membership, self._mixed_checksum, self.num_rows
            )
            targets, alpha_vals, gamma_vals = fold_hashed(
                np.concatenate([chunk, chunk]),
                np.concatenate([depths, depths]),
                np.concatenate([checksums, checksums]),
                self.num_rows,
                dsts=np.concatenate(
                    [lo[start : start + edge_chunk], hi[start : start + edge_chunk]]
                ),
            )
            alpha_flat[targets] ^= alpha_vals
            gamma_flat[targets] ^= gamma_vals
        self._updates_applied += 2 * int(idx.size)

    def apply_node_batch(self, node: int, neighbors) -> None:
        """Fold a batch of edges ``{node, w}`` into one node's bundle.

        Used by the buffering path, whose emitted batches are already
        grouped per destination node.  Writes touch only ``node``'s
        slice of the pool, so batches for different nodes can be applied
        concurrently by the worker pool.
        """
        indices = self.encoder.encode_batch(node, neighbors)
        if indices.size == 0:
            return
        alpha_flat = self._alpha[node].reshape(-1)
        gamma_flat = self._gamma[node].reshape(-1)
        for start in range(0, indices.size, BATCH_CHUNK):
            targets, alpha_vals, gamma_vals = columnar_fold(
                indices[start : start + BATCH_CHUNK],
                self._mixed_membership,
                self._mixed_checksum,
                self.num_rows,
            )
            alpha_flat[targets] ^= alpha_vals
            gamma_flat[targets] ^= gamma_vals
        self._updates_applied += int(indices.size)

    def _check_destinations(self, dsts: np.ndarray) -> None:
        """Reject out-of-range destinations before they index the pool.

        A negative destination would not raise: it wraps around the flat
        tensor and silently XOR-corrupts another node's buckets.
        """
        if ((dsts < 0) | (dsts >= self.num_nodes)).any():
            raise ValueError(f"destination node outside [0, {self.num_nodes})")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query_round(self, node: int, round_index: int) -> SampleResult:
        """Query one node's round-``round_index`` sketch."""
        self._check_node(node)
        base = round_index * self.num_columns
        return query_bucket_arrays(
            self._alpha[node, round_index].T,
            self._gamma[node, round_index].T,
            self.encoder.vector_length,
            self._checksum_seeds[base : base + self.num_columns],
        )

    def query_merged(self, members: Sequence[int], round_index: int) -> SampleResult:
        """Query the XOR of several nodes' round-``round_index`` sketches.

        The Boruvka cut sampler: one fancy gather over the pool plus an
        XOR reduction replaces per-member sketch copies and merges.
        """
        if len(members) == 0:
            raise ValueError("query_merged requires at least one member node")
        member_array = np.asarray(members, dtype=np.int64)
        self._check_destinations(member_array)
        if member_array.size == 1:
            return self.query_round(int(member_array[0]), round_index)
        alpha = np.bitwise_xor.reduce(self._alpha[member_array, round_index], axis=0)
        gamma = np.bitwise_xor.reduce(self._gamma[member_array, round_index], axis=0)
        base = round_index * self.num_columns
        return query_bucket_arrays(
            alpha.T,
            gamma.T,
            self.encoder.vector_length,
            self._checksum_seeds[base : base + self.num_columns],
        )

    # ------------------------------------------------------------------
    # per-node views
    # ------------------------------------------------------------------
    def node_sketch(self, node: int) -> FlatNodeSketch:
        """Materialise one node's bundle as a standalone FlatNodeSketch."""
        self._check_node(node)
        sketch = FlatNodeSketch(
            node,
            self.encoder,
            graph_seed=self.graph_seed,
            delta=self.delta,
            num_rounds=self.num_rounds,
        )
        sketch._alpha = self._alpha[node].copy()
        sketch._gamma = self._gamma[node].copy()
        return sketch

    def load_node_sketch(self, sketch: FlatNodeSketch) -> None:
        """Replace one node's pool slice with a standalone sketch's state."""
        if (
            sketch.num_rounds != self.num_rounds
            or sketch.graph_seed != self.graph_seed
            or sketch.num_rows != self.num_rows
            or sketch.num_columns != self.num_columns
        ):
            raise ValueError("sketch geometry/seed does not match the pool")
        if not 0 <= sketch.node < self.num_nodes:
            raise ValueError(f"sketch node {sketch.node} outside [0, {self.num_nodes})")
        self._alpha[sketch.node] = sketch._alpha
        self._gamma[sketch.node] = sketch._gamma

    def node_is_empty(self, node: int) -> bool:
        self._check_node(node)
        return not self._alpha[node].any() and not self._gamma[node].any()

    def _check_node(self, node: int) -> None:
        """Reject node ids the flat tensors would silently wrap."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def updates_applied(self) -> int:
        """Coordinate updates folded into the pool so far."""
        return self._updates_applied

    def node_sketch_bytes(self) -> int:
        """Payload bytes of a single node's bundle (paper accounting)."""
        return self.num_rounds * self.num_rows * self.num_columns * BYTES_PER_CUBE_BUCKET

    def size_bytes(self) -> int:
        """Payload bytes of the whole pool."""
        return self.num_nodes * self.node_sketch_bytes()

    def raw_tensors(self) -> Tuple[np.ndarray, np.ndarray]:
        """Read-only views of the full pool tensors (native layout)."""
        alpha = self._alpha.view()
        gamma = self._gamma.view()
        alpha.flags.writeable = False
        gamma.flags.writeable = False
        return alpha, gamma

    def __repr__(self) -> str:
        return (
            f"NodeTensorPool(num_nodes={self.num_nodes}, rounds={self.num_rounds}, "
            f"rows={self.num_rows}, cols={self.num_columns}, "
            f"bytes={self.size_bytes()})"
        )
