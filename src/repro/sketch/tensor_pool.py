"""A whole graph's sketch state as contiguous round-major tensors.

:class:`NodeTensorPool` is the columnar engine's in-RAM backing store:
instead of one Python object (and two arrays) per node, *every* node's
sketch bundle lives in whole-graph tensors laid out **round-major** --
one Boruvka round's entire graph state is a contiguous
``(num_nodes, num_columns, num_rows)`` slab, which is what the query
engine scans.  A whole-round cut query gathers and reduces inside one
round slab instead of striding across every node's full bundle.

Bucket storage comes in two modes:

* **packed** (graphs up to 65536 nodes): the edge-slot universe fits in
  32 bits, so a bucket's 32-bit ``alpha`` accumulator and 32-bit
  ``gamma`` checksum pack into a single uint64 word (alpha in the high
  half).  XOR distributes over the packed fields, so folds, merges, and
  segmented reductions all run as **one** operation on **one** tensor --
  half the kernel calls and half the memory traffic of separate
  alpha/gamma tensors;
* **wide** (larger graphs): a uint64 ``alpha`` tensor plus a uint32
  ``gamma`` tensor (checksums are 32 bits either way).

Bucket ``(round, node, row, col)`` sits at flat offset
``((round * num_nodes + node) * cols + col) * rows + row``; the shared
:func:`~repro.sketch.flat_node_sketch.columnar_fold` kernel emits these
offsets directly (via its ``dst_stride`` / ``slot_offsets`` segment
mapping), so a *mixed multi-node* batch of updates still folds with one
hash + one argsort + one fancy-indexed XOR per chunk -- no Python loop
over nodes, rounds, or columns.

This is what turns ``GraphZeppelin.ingest_batch`` into a columnar
pipeline: canonicalise the edge array, mirror it, encode the edge slots,
and hand ``(destination, index)`` columns straight to
:meth:`NodeTensorPool.apply_updates`.

The pool is also the query engine's substrate: one Boruvka round's cut
samples for *every* active component come out of a single segmented
XOR-reduce over the round slab (:meth:`NodeTensorPool.query_components`),
and a single component's merged sketch is one fancy gather + XOR
reduction (:meth:`NodeTensorPool.query_merged`) instead of deserialising
and merging per-node sketch objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.edge_encoding import EdgeEncoder
from repro.exceptions import ConfigurationError, IncompatibleSketchError
from repro.observability.tracing import span
from repro.sketch.flat_node_sketch import (
    BATCH_CHUNK,
    FlatNodeSketch,
    columnar_fold,
    decode_column_batch,
    flat_seed_matrices,
    fold_hashed,
    group_nodes_by_label,
    hash_depths_checksums,
    max_radix_dst_span,
    query_bucket_arrays,
    query_bucket_arrays_batch,
    segmented_xor,
    validate_indices,
)
from repro.sketch.sizes import (
    BYTES_PER_CUBE_BUCKET,
    cubesketch_num_columns,
    cubesketch_num_rows,
)
from repro.sketch.sketch_base import (
    SAMPLE_FAIL,
    SAMPLE_GOOD,
    SAMPLE_ZERO,
    SampleResult,
)

#: Element budget for one ``(K, S)`` hash matrix of the fold kernel
#: (uint64, so 1 << 22 elements is ~32 MiB per temporary).
_CHUNK_ELEMENT_BUDGET = 1 << 22
#: Chunks below ~8k updates under-amortise the kernel's fixed costs
#: (ROADMAP measurement), chunks above 128k stop paying for their RAM.
_MIN_FOLD_CHUNK = 1 << 13
_MAX_FOLD_CHUNK = 1 << 17

_LOW32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)


def shard_bounds(num_nodes: int, num_shards: int) -> np.ndarray:
    """Contiguous node-range boundaries for ``num_shards`` pool shards.

    Returns ``num_shards + 1`` ascending boundaries; shard ``s`` owns the
    node range ``[bounds[s], bounds[s + 1])``.  Ranges differ by at most
    one node when ``num_nodes`` is not divisible by ``num_shards``, and a
    shard count above ``num_nodes`` simply produces empty tail shards.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    return (
        np.arange(num_shards + 1, dtype=np.int64) * np.int64(num_nodes)
    ) // np.int64(num_shards)


def auto_num_shards(num_nodes: int, num_rows: int, num_workers: int = 1) -> int:
    """Shard count giving every shard the int16 fold fast path.

    The smallest count whose node ranges fit inside
    :func:`~repro.sketch.flat_node_sketch.max_radix_dst_span`, rounded up
    to a multiple of ``num_workers`` so the shards distribute evenly.
    """
    span = max_radix_dst_span(num_rows)
    shards = max(-(-int(num_nodes) // span), 1)
    workers = max(int(num_workers), 1)
    return -(-shards // workers) * workers


def auto_fold_chunk(num_slots: int, batch_size: int) -> int:
    """Updates per fold-kernel pass, tuned to the sketch geometry.

    The kernel's dominant temporaries are ``(K, num_slots)`` uint64
    matrices, so the chunk size that keeps them inside the element
    budget shrinks as the graph (and with it ``num_slots``) grows.
    Small graphs get proportionally larger chunks, which is where the
    fixed per-chunk costs used to dominate.  The result is clamped to
    the measured sweet spot and never exceeds the batch itself.
    """
    chunk = _CHUNK_ELEMENT_BUDGET // max(int(num_slots), 1)
    chunk = min(max(chunk, _MIN_FOLD_CHUNK), _MAX_FOLD_CHUNK)
    return max(min(chunk, max(int(batch_size), 1)), 1)


def _shm_view(segment, shape: Tuple[int, ...], dtype) -> np.ndarray:
    """A numpy view over a shared-memory segment's leading bytes.

    Segments round up to page size, so the view is built with an
    explicit element count rather than over the whole buffer.
    """
    count = int(np.prod(shape))
    return np.frombuffer(segment.buf, dtype=dtype, count=count).reshape(shape)


def _move_to_shm(tensor: np.ndarray):
    """Copy a tensor into a fresh shared-memory segment; returns (view, shm)."""
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(create=True, size=max(tensor.nbytes, 1))
    view = _shm_view(segment, tensor.shape, tensor.dtype)
    view[...] = tensor
    return view, segment


class NodeTensorPool:
    """Contiguous sketch tensors for every node of a graph.

    Parameters
    ----------
    num_nodes:
        Number of graph nodes.
    encoder:
        The engine's shared edge-slot encoder.
    graph_seed:
        Root seed; hash seeds are derived exactly as the per-node
        sketches derive them, so pool state is bit-identical to a
        collection of :class:`FlatNodeSketch` (or legacy ``NodeSketch``)
        objects fed the same updates.
    delta:
        Per-round sketch failure probability.
    num_rounds:
        Boruvka rounds to provision (defaults to ``ceil(log2 V)``).
    force_wide:
        Use the wide (separate alpha/gamma tensors) storage even when
        the edge-slot universe would fit packed buckets.  Wide mode
        only self-selects above 65536 nodes, so this exists to let the
        equivalence tests exercise it at test-sized graphs.
    kernels:
        Optional native kernel provider (see :mod:`repro.kernels`).
        When given, the fold, segmented-XOR, and decode hot paths run
        the provider's compiled kernels instead of the numpy ones; all
        providers are bit-identical to numpy under the same seed, so
        pool state and query results do not depend on this choice.
    """

    def __init__(
        self,
        num_nodes: int,
        encoder: EdgeEncoder,
        graph_seed: int = 0,
        delta: float = 0.01,
        num_rounds: Optional[int] = None,
        force_wide: bool = False,
        kernels=None,
        _allocate: bool = True,
    ) -> None:
        from repro.core.node_sketch import num_boruvka_rounds

        if num_nodes < 2:
            raise ConfigurationError("a graph needs at least two nodes")
        if not 0 < delta < 1:
            raise ConfigurationError("delta must be in (0, 1)")
        self.num_nodes = int(num_nodes)
        self.encoder = encoder
        self.graph_seed = int(graph_seed)
        self.delta = float(delta)
        self.num_rounds = (
            int(num_rounds) if num_rounds is not None else num_boruvka_rounds(num_nodes)
        )
        self.num_rows = cubesketch_num_rows(encoder.vector_length)
        self.num_columns = cubesketch_num_columns(delta)
        self.num_slots = self.num_rounds * self.num_columns

        # Shared-memory bookkeeping: populated by to_shared_memory() /
        # attach_shared().  _shm holds the open segments, _owns_shm says
        # whether this process created (and therefore unlinks) them.
        self._shm: List = []
        self._owns_shm = False

        # Round-major: tensor[round] is one contiguous slab holding every
        # node's buckets for that round (see the module docstring).
        # ``_allocate=False`` (attach_shared) skips the zero tensors --
        # the caller installs shared-memory views instead, so a worker
        # process never commits a throwaway pool-sized allocation.
        shape = (self.num_rounds, self.num_nodes, self.num_columns, self.num_rows)
        self._packed = encoder.vector_length <= 1 << 32 and not force_wide
        self._buckets = self._alpha = self._gamma = None
        if _allocate:
            if self._packed:
                self._buckets = np.zeros(shape, dtype=np.uint64)
            else:
                self._alpha = np.zeros(shape, dtype=np.uint64)
                self._gamma = np.zeros(shape, dtype=np.uint32)
        # Fold-kernel segment mapping: bucket (dst, slot) of the
        # slot-major kernel lands at round-major segment
        # dst * num_columns + _slot_offsets[slot] (strictly increasing
        # in slot, as the kernel's fast path requires).
        slots = np.arange(self.num_slots, dtype=np.int64)
        self._slot_offsets = (slots // self.num_columns) * (
            self.num_nodes * self.num_columns
        ) + (slots % self.num_columns)
        (
            self._membership_seeds,
            self._checksum_seeds,
            self._mixed_membership,
            self._mixed_checksum,
        ) = flat_seed_matrices(self.graph_seed, self.num_rounds, self.num_columns)
        self._updates_applied = 0
        self._kernels = kernels
        # Whole-slab XOR totals per (round, tensor) for the query
        # engine's complement trick; invalidated by any fold.
        self._version = 0
        self._slab_cache: Dict[Tuple[int, str], Tuple[int, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def _scatter(
        self,
        targets: np.ndarray,
        alpha_vals: np.ndarray,
        gamma_vals: np.ndarray,
        bump_version: bool = True,
    ) -> None:
        """XOR fold-kernel output into the pool at round-major offsets.

        ``bump_version=False`` is for shard workers, whose concurrent
        folds must not race on the version counter; the ingest
        coordinator bumps it once per batch via
        :meth:`mark_external_updates`.
        """
        if self._packed:
            flat = self._buckets.reshape(-1)
            flat[targets] ^= (alpha_vals << _SHIFT32) | gamma_vals
        else:
            self._alpha.reshape(-1)[targets] ^= alpha_vals
            self._gamma.reshape(-1)[targets] ^= gamma_vals.astype(np.uint32)
        if bump_version:
            self._version += 1

    def apply_updates(
        self,
        dsts: np.ndarray,
        indices: np.ndarray,
        chunk_size: Optional[int] = None,
    ) -> None:
        """Fold a mixed multi-node batch of edge-slot updates into the pool.

        ``dsts[i]`` is the node whose bundle receives edge-slot
        ``indices[i]``.  The whole batch -- regardless of how many
        distinct nodes it touches -- goes through the shared columnar
        fold kernel in chunks sized by :func:`auto_fold_chunk` (or
        ``chunk_size`` when given).
        """
        dsts = np.asarray(dsts)
        if dsts.shape != np.shape(indices) or dsts.ndim != 1:
            raise ValueError("dsts and indices must be matching one-dimensional arrays")
        idx = validate_indices(indices, self.encoder.vector_length)
        if idx is None:
            return
        self._check_destinations(dsts)
        if self._kernels is not None:
            # The native fold fuses hash + depth + XOR scatter with no
            # temporaries, so the whole batch goes in one call.
            with span("ingest.fold"):
                self._kernels.fold_pool(self, idx, dsts)
            self._version += 1
            self._updates_applied += int(idx.size)
            return
        chunk = int(chunk_size) if chunk_size else auto_fold_chunk(self.num_slots, idx.size)
        for start in range(0, idx.size, chunk):
            with span("ingest.fold"):
                targets, alpha_vals, gamma_vals = columnar_fold(
                    idx[start : start + chunk].astype(np.uint64, copy=False),
                    self._mixed_membership,
                    self._mixed_checksum,
                    self.num_rows,
                    dsts=dsts[start : start + chunk],
                    dst_stride=self.num_columns,
                    slot_offsets=self._slot_offsets,
                )
                self._scatter(targets, alpha_vals, gamma_vals)
        self._updates_applied += int(idx.size)

    def apply_edges(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        indices: np.ndarray,
        chunk_size: Optional[int] = None,
    ) -> None:
        """Fold both directions of a canonical edge batch into the pool.

        ``indices[i]`` is the edge slot of the canonical edge
        ``(lo[i], hi[i])``; both endpoints' bundles receive it.  The
        hash matrices depend only on the index, not the destination, so
        each index is hashed **once** and the depth/checksum matrices
        are shared by the two mirrored halves -- half the hash cost of
        pushing the duplicated column through :meth:`apply_updates`.
        Chunks are sized by :func:`auto_fold_chunk` (halved, since the
        mirrored halves double the reduction width) unless ``chunk_size``
        overrides it.
        """
        if not (np.shape(indices) == np.shape(lo) == np.shape(hi)) or np.ndim(indices) != 1:
            raise ValueError("lo, hi and indices must be matching one-dimensional arrays")
        idx = validate_indices(indices, self.encoder.vector_length)
        if idx is None:
            return
        self._check_destinations(np.asarray(lo))
        self._check_destinations(np.asarray(hi))
        if self._kernels is not None:
            # Mirrored native fold: hashes each edge slot once and
            # scatters to both endpoints' bundles in the same pass
            # (hash + fold are fused, so the span covers both).
            with span("ingest.fold"):
                self._kernels.fold_pool_edges(self, idx, lo, hi)
            self._version += 1
            self._updates_applied += 2 * int(idx.size)
            return
        if chunk_size:
            edge_chunk = max(int(chunk_size), 1)
        else:
            edge_chunk = max(auto_fold_chunk(self.num_slots, idx.size) // 2, 1)
        for start in range(0, idx.size, edge_chunk):
            chunk = idx[start : start + edge_chunk]
            with span("ingest.hash"):
                depths, checksums = hash_depths_checksums(
                    chunk, self._mixed_membership, self._mixed_checksum, self.num_rows
                )
            with span("ingest.fold"):
                targets, alpha_vals, gamma_vals = fold_hashed(
                    np.concatenate([chunk, chunk]),
                    np.concatenate([depths, depths]),
                    np.concatenate([checksums, checksums]),
                    self.num_rows,
                    dsts=np.concatenate(
                        [lo[start : start + edge_chunk], hi[start : start + edge_chunk]]
                    ),
                    dst_stride=self.num_columns,
                    slot_offsets=self._slot_offsets,
                )
                self._scatter(targets, alpha_vals, gamma_vals)
        self._updates_applied += 2 * int(idx.size)

    def apply_node_batch(self, node: int, neighbors) -> None:
        """Fold a batch of edges ``{node, w}`` into one node's bundle.

        Used by the buffering path, whose emitted batches are already
        grouped per destination node.  Writes touch only ``node``'s
        buckets, so batches for different nodes can be applied
        concurrently by the worker pool.
        """
        indices = self.encoder.encode_batch(node, neighbors)
        if indices.size == 0:
            return
        if self._kernels is not None:
            with span("ingest.fold"):
                self._kernels.fold_pool(
                    self, indices, np.full(indices.size, int(node), dtype=np.int64)
                )
            self._version += 1
            self._updates_applied += int(indices.size)
            return
        rows = np.int64(self.num_rows)
        node_base = np.int64(node * self.num_columns)
        for start in range(0, indices.size, BATCH_CHUNK):
            with span("ingest.fold"):
                targets, alpha_vals, gamma_vals = columnar_fold(
                    indices[start : start + BATCH_CHUNK],
                    self._mixed_membership,
                    self._mixed_checksum,
                    self.num_rows,
                )
                # The single-destination kernel emits node-local slot-major
                # offsets; relocate them into the round-major pool.
                slot = targets // rows
                targets = (self._slot_offsets[slot] + node_base) * rows + (
                    targets - slot * rows
                )
                self._scatter(targets, alpha_vals, gamma_vals)
        self._updates_applied += int(indices.size)

    def fold_shard(
        self,
        dsts: np.ndarray,
        indices: np.ndarray,
        node_lo: int,
        node_hi: int,
        chunk_size: Optional[int] = None,
    ) -> int:
        """Fold one shard's mixed-node update group into its pool slab.

        The sharded-ingest worker entry point: ``dsts`` must lie inside
        the shard's node range ``[node_lo, node_hi)``, whose buckets no
        other shard touches, so concurrent ``fold_shard`` calls for
        *different* shards need no locks -- their scatter targets are
        disjoint by construction.  When the shard span fits
        :func:`~repro.sketch.flat_node_sketch.max_radix_dst_span` (the
        planner guarantees it), the fold runs through the kernel's int16
        radix fast path.

        Deliberately does **not** bump the pool version or the update
        counter -- shared counters would race across workers, and worker
        processes mutate their own copies anyway.  The ingest
        coordinator calls :meth:`mark_external_updates` once per batch
        after the barrier.  Returns the number of updates folded.
        """
        dsts = np.asarray(dsts)
        if dsts.shape != np.shape(indices) or dsts.ndim != 1:
            raise ValueError("dsts and indices must be matching one-dimensional arrays")
        if not 0 <= node_lo <= node_hi <= self.num_nodes:
            raise ValueError(
                f"shard range [{node_lo}, {node_hi}) outside [0, {self.num_nodes})"
            )
        idx = validate_indices(indices, self.encoder.vector_length)
        if idx is None:
            return 0
        # One scan covers both guards: a destination inside the shard
        # range is inside the pool, since the range itself was checked.
        if ((dsts < node_lo) | (dsts >= node_hi)).any():
            raise ValueError(
                f"destination node outside shard range [{node_lo}, {node_hi})"
            )
        if self._kernels is not None:
            # Shard folds stay lock-free under the native kernels for
            # the same reason as the numpy path (disjoint node ranges),
            # and the compiled region releases the GIL, so concurrent
            # thread-backend shards now overlap fully.
            with span("ingest.fold"):
                self._kernels.fold_pool(self, idx, dsts)
            return int(idx.size)
        chunk = int(chunk_size) if chunk_size else auto_fold_chunk(self.num_slots, idx.size)
        for start in range(0, idx.size, chunk):
            with span("ingest.fold"):
                targets, alpha_vals, gamma_vals = columnar_fold(
                    idx[start : start + chunk].astype(np.uint64, copy=False),
                    self._mixed_membership,
                    self._mixed_checksum,
                    self.num_rows,
                    dsts=dsts[start : start + chunk],
                    dst_stride=self.num_columns,
                    slot_offsets=self._slot_offsets,
                )
                self._scatter(targets, alpha_vals, gamma_vals, bump_version=False)
        return int(idx.size)

    def fold_shard_hashed(
        self,
        dsts: np.ndarray,
        edge_rows: np.ndarray,
        indices: np.ndarray,
        depths: np.ndarray,
        checksums: np.ndarray,
        node_lo: int,
        node_hi: int,
        chunk_size: Optional[int] = None,
    ) -> int:
        """:meth:`fold_shard` with the hash phase hoisted out.

        The hash matrices depend only on the edge slot, not the
        destination, so a mirrored batch's two copies of every edge
        share one row of ``depths`` / ``checksums``.  The ingest
        coordinator hashes the *unique* ``indices`` once and shard
        workers gather their rows by ``edge_rows[i]`` (the position of
        update ``i``'s edge in ``indices``) -- half the hash cost of
        :meth:`fold_shard`, which is what the thread backend uses where
        the matrices can be shared by reference.  Same shard-ownership
        contract and (deliberate) lack of version/counter updates as
        :meth:`fold_shard`; ``indices`` must already be validated.
        """
        dsts = np.asarray(dsts)
        if dsts.shape != np.shape(edge_rows) or dsts.ndim != 1:
            raise ValueError("dsts and edge_rows must be matching one-dimensional arrays")
        if not 0 <= node_lo <= node_hi <= self.num_nodes:
            raise ValueError(
                f"shard range [{node_lo}, {node_hi}) outside [0, {self.num_nodes})"
            )
        if dsts.size == 0:
            return 0
        if ((dsts < node_lo) | (dsts >= node_hi)).any():
            raise ValueError(
                f"destination node outside shard range [{node_lo}, {node_hi})"
            )
        if self._kernels is not None:
            # The native fold hashes in-kernel for less than the cost of
            # gathering the precomputed matrices, and hashing is
            # deterministic, so re-deriving depths/checksums from the
            # indices keeps the buckets bit-identical.
            with span("ingest.fold"):
                self._kernels.fold_pool(self, np.asarray(indices)[edge_rows], dsts)
            return int(dsts.size)
        chunk = (
            int(chunk_size) if chunk_size else auto_fold_chunk(self.num_slots, dsts.size)
        )
        for start in range(0, dsts.size, chunk):
            rows = edge_rows[start : start + chunk]
            with span("ingest.fold"):
                targets, alpha_vals, gamma_vals = fold_hashed(
                    indices[rows],
                    depths[rows],
                    checksums[rows],
                    self.num_rows,
                    dsts=dsts[start : start + chunk],
                    dst_stride=self.num_columns,
                    slot_offsets=self._slot_offsets,
                )
                self._scatter(targets, alpha_vals, gamma_vals, bump_version=False)
        return int(dsts.size)

    def fold_page_batch(
        self,
        node_lo: int,
        node_hi: int,
        dsts: np.ndarray,
        indices: np.ndarray,
        chunk_size: Optional[int] = None,
    ) -> int:
        """Serial entry point for one page's mixed-node update column.

        What the engine calls when the buffering layer emits a
        :class:`~repro.buffering.base.PageBatch`: folds the column
        through :meth:`fold_shard` (whose node-range contract the page
        bounds satisfy) and then publishes the effects -- version bump
        and update counter -- exactly like a direct fold would.  The
        sharded parallel path keeps calling :meth:`fold_shard` raw and
        publishing once per batch barrier instead.
        """
        count = self.fold_shard(dsts, indices, node_lo, node_hi, chunk_size=chunk_size)
        self.mark_external_updates(count)
        return count

    def mark_external_updates(self, count: int) -> None:
        """Record updates folded outside :meth:`apply_updates`'s accounting.

        Invalidate the slab cache (version bump) and advance the update
        counter after a sharded parallel ingest, whose workers write the
        tensors directly (possibly from other processes) without
        touching this object's Python state.
        """
        self._version += 1
        self._updates_applied += int(count)

    # ------------------------------------------------------------------
    # merging (the distributed plane)
    # ------------------------------------------------------------------
    def _check_mergeable(self, other: "NodeTensorPool") -> None:
        """Reject pools whose XOR would not be the sketch of a stream union.

        Linearity only holds for sketches built under identical hash
        functions and geometry, and the packed/wide layouts are not
        byte-compatible, so every one of those parameters must match.
        Raised *before* any bucket is touched -- a failed merge leaves
        both pools exactly as they were.
        """
        if other is self:
            raise IncompatibleSketchError(
                "merging a pool into itself would zero it (XOR is self-inverse)"
            )
        if (
            self.num_nodes != other.num_nodes
            or self.num_rounds != other.num_rounds
            or self.num_rows != other.num_rows
            or self.num_columns != other.num_columns
        ):
            raise IncompatibleSketchError(
                f"pool geometry mismatch: {self!r} cannot merge {other!r}"
            )
        if self.graph_seed != other.graph_seed:
            raise IncompatibleSketchError(
                f"pool seeds differ ({self.graph_seed} vs {other.graph_seed}); "
                "XOR of sketches under different hash functions is meaningless"
            )
        if self._packed != other._packed:
            raise IncompatibleSketchError(
                "packed and wide pools are not byte-compatible; merge like with like"
            )

    def merge_from(self, other: "NodeTensorPool") -> None:
        """XOR another pool's buckets into this one (``self ^= other``).

        Sketches are linear: the XOR of two pools built from disjoint
        update sub-streams is bit-identical to the pool of the
        concatenated stream, which is what lets independent ingestors
        each fold a slice of a heavy stream and combine afterwards.
        ``other`` may be any pool flavour with matching geometry/seed
        (a paged source is read one round slab at a time); it is not
        modified.  Update accounting is summed and the slab cache is
        invalidated, exactly as if the other pool's stream had been
        folded here.
        """
        self._check_mergeable(other)
        for round_index in range(self.num_rounds):
            if self._packed:
                self._buckets[round_index] ^= other._round_view("packed", round_index)
            else:
                self._alpha[round_index] ^= other._round_view("alpha", round_index)
                self._gamma[round_index] ^= other._round_view("gamma", round_index)
        self._version += 1
        self._updates_applied += other._updates_applied

    def _check_destinations(self, dsts: np.ndarray) -> None:
        """Reject out-of-range destinations before they index the pool.

        A negative destination would not raise: it wraps around the flat
        tensor and silently XOR-corrupts another node's buckets.
        """
        if ((dsts < 0) | (dsts >= self.num_nodes)).any():
            raise ValueError(f"destination node outside [0, {self.num_nodes})")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def is_paged(self) -> bool:
        """Whether the pool's tensors live in out-of-core pages."""
        return False

    def _round_view(self, key: str, round_index: int) -> np.ndarray:
        """One round's ``(num_nodes, cols, rows)`` slab for a bucket tensor.

        ``key`` selects the backing tensor (``"packed"``, ``"alpha"``,
        or ``"gamma"``).  Every query-side reduction reaches bucket
        state through this accessor, which is what lets the paged pool
        substitute slabs assembled from node-group pages without
        touching the query algorithms.
        """
        if key == "packed":
            return self._buckets[round_index]
        if key == "alpha":
            return self._alpha[round_index]
        return self._gamma[round_index]

    def _node_round_arrays(self, node: int, round_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """One node's ``(cols, rows)`` alpha/gamma arrays for a round."""
        if self._packed:
            packed = self._round_view("packed", round_index)[node]
            return packed >> _SHIFT32, packed & _LOW32
        return (
            self._round_view("alpha", round_index)[node],
            self._round_view("gamma", round_index)[node].astype(np.uint64),
        )

    def query_round(self, node: int, round_index: int) -> SampleResult:
        """Query one node's round-``round_index`` sketch."""
        self._check_node(node)
        alpha, gamma = self._node_round_arrays(node, round_index)
        base = round_index * self.num_columns
        return query_bucket_arrays(
            alpha.T,
            gamma.T,
            self.encoder.vector_length,
            self._checksum_seeds[base : base + self.num_columns],
        )

    def query_merged(self, members: Sequence[int], round_index: int) -> SampleResult:
        """Query the XOR of several nodes' round-``round_index`` sketches.

        The per-component Boruvka cut sampler: one fancy gather over the
        round slab plus an XOR reduction replaces per-member sketch
        copies and merges.
        """
        if len(members) == 0:
            raise ValueError("query_merged requires at least one member node")
        member_array = np.asarray(members, dtype=np.int64)
        self._check_destinations(member_array)
        if member_array.size == 1:
            return self.query_round(int(member_array[0]), round_index)
        if self._packed:
            packed = np.bitwise_xor.reduce(
                self._round_view("packed", round_index)[member_array], axis=0
            )
            alpha, gamma = packed >> _SHIFT32, packed & _LOW32
        else:
            alpha = np.bitwise_xor.reduce(
                self._round_view("alpha", round_index)[member_array], axis=0
            )
            gamma = np.bitwise_xor.reduce(
                self._round_view("gamma", round_index)[member_array], axis=0
            )
        base = round_index * self.num_columns
        return query_bucket_arrays(
            alpha.T,
            gamma.T,
            self.encoder.vector_length,
            self._checksum_seeds[base : base + self.num_columns],
        )

    def query_components(
        self,
        labels: np.ndarray,
        round_index: int,
        node_mask: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cut-sample **every** component of a Boruvka round in one pass.

        ``labels[node]`` is the node's component label; nodes sharing a
        label form one component.  Instead of one
        :meth:`query_merged` call per component, the whole round is a
        segmented XOR-reduce: sort node rows by component label (int16
        radix sort when the labels fit), reduce label segments over the
        round slab, and decode all merged sketches with the batched
        bucket decoder.  ``node_mask`` restricts the query to the marked
        nodes (the Boruvka driver masks out settled components).

        Columns are decoded progressively: column 0 is reduced and
        decoded for every component, and only the components it fails
        to resolve pull their remaining columns (in one batched pass) --
        most components resolve immediately, so the common case touches
        one ``(M, num_rows)`` stripe of the slab per round.

        Returns ``(roots, statuses, indices)``: the distinct labels in
        ascending order, each component's
        :data:`~repro.sketch.sketch_base.SAMPLE_ZERO` /
        ``SAMPLE_GOOD`` / ``SAMPLE_FAIL`` code, and its sampled edge
        slot (-1 unless GOOD).  Results are bit-identical to calling
        :meth:`query_merged` per component.
        """
        labels = np.asarray(labels)
        if labels.shape != (self.num_nodes,):
            raise ValueError("labels must hold one component label per node")
        if not 0 <= round_index < self.num_rounds:
            raise ValueError(f"round {round_index} outside [0, {self.num_rounds})")
        if node_mask is None:
            excluded = np.empty(0, dtype=np.int64)
        else:
            mask = np.asarray(node_mask, dtype=bool)
            if mask.shape != (self.num_nodes,):
                raise ValueError("node_mask must hold one flag per node")
            excluded = np.flatnonzero(~mask)
        sorted_nodes, seg_starts, roots = group_nodes_by_label(labels, node_mask)
        if roots.size == 0:
            return roots, np.empty(0, dtype=np.uint8), roots.copy()

        count = roots.size
        statuses = np.full(count, SAMPLE_FAIL, dtype=np.uint8)
        indices = np.full(count, -1, dtype=np.int64)
        base = round_index * self.num_columns

        # Phase 1: reduce and decode column 0 alone for every component.
        # Most components resolve here, so the common case touches only
        # an (M, num_rows) stripe of the slab per round.
        with span("query.reduce"):
            alpha0, gamma0 = self._merged_round_cols(
                sorted_nodes, seg_starts, excluded, round_index, 0, 1
            )
        decode = (
            decode_column_batch if self._kernels is None else self._kernels.decode_column
        )
        with span("query.decode"):
            good, column0_zero, index = decode(
                alpha0.reshape(count, self.num_rows),
                gamma0.reshape(count, self.num_rows),
                self.encoder.vector_length,
                self._mixed_checksum[base],
            )
        statuses[good] = SAMPLE_GOOD
        indices[good] = index[good]

        unresolved = ~good
        if not unresolved.any():
            return roots, statuses, indices
        if self.num_columns == 1:
            statuses[unresolved & column0_zero] = SAMPLE_ZERO
            return roots, statuses, indices

        # Phase 2: the components column 0 could not resolve pull all
        # their remaining columns in one batched reduce + decode
        # (instead of per-column passes over the full node set, which
        # would make the final all-zero convergence query pay
        # ``num_columns`` whole-graph reductions).
        seg_sizes = np.diff(np.append(seg_starts, sorted_nodes.size))
        rest_nodes = sorted_nodes[np.repeat(unresolved, seg_sizes)]
        rest_sizes = seg_sizes[unresolved]
        rest_starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(rest_sizes)[:-1]]
        )
        rest_excluded = np.ones(self.num_nodes, dtype=bool)
        rest_excluded[rest_nodes] = False
        rest_excluded = np.flatnonzero(rest_excluded)
        with span("query.reduce"):
            rest_alpha, rest_gamma = self._merged_round_cols(
                rest_nodes, rest_starts, rest_excluded, round_index, 1, self.num_columns
            )
        rest_shape = (rest_sizes.size, self.num_columns - 1, self.num_rows)
        with span("query.decode"):
            rest_statuses, rest_indices = query_bucket_arrays_batch(
                rest_alpha.reshape(rest_shape),
                rest_gamma.reshape(rest_shape),
                self.encoder.vector_length,
                self._checksum_seeds[base + 1 : base + self.num_columns],
                kernels=self._kernels,
            )

        positions = np.flatnonzero(unresolved)
        rest_good = rest_statuses == SAMPLE_GOOD
        statuses[positions[rest_good]] = SAMPLE_GOOD
        indices[positions[rest_good]] = rest_indices[rest_good]
        # A component is ZERO only when column 0 *and* every later
        # column were empty; otherwise the default FAIL stands.
        statuses[
            positions[column0_zero[positions] & (rest_statuses == SAMPLE_ZERO)]
        ] = SAMPLE_ZERO
        return roots, statuses, indices

    def _merged_round_cols(
        self,
        sorted_nodes: np.ndarray,
        seg_starts: np.ndarray,
        excluded_nodes: np.ndarray,
        round_index: int,
        col_start: int,
        col_stop: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-segment merged ``(alpha, gamma)`` for a span of columns.

        Returns two ``(num_segments, (col_stop - col_start) * num_rows)``
        uint arrays.  In packed mode one segmented reduction over the
        packed tensor produces both; in wide mode alpha and gamma are
        reduced separately.
        """
        if self._packed:
            merged = self._segment_round_xor(
                "packed", sorted_nodes, seg_starts,
                excluded_nodes, round_index, col_start, col_stop,
            )
            return merged >> _SHIFT32, merged & _LOW32
        alpha = self._segment_round_xor(
            "alpha", sorted_nodes, seg_starts,
            excluded_nodes, round_index, col_start, col_stop,
        )
        gamma = self._segment_round_xor(
            "gamma", sorted_nodes, seg_starts,
            excluded_nodes, round_index, col_start, col_stop,
        )
        return alpha, gamma

    def _round_slab_total(self, key: str, round_index: int) -> np.ndarray:
        """Cached XOR of *all* nodes' buckets for one round.

        One contiguous whole-slab reduction, memoised until the next
        fold touches the pool; the complement trick below uses it to
        price giant-component reductions at (amortised) zero reads.
        """
        cached = self._slab_cache.get((round_index, key))
        if cached is not None and cached[0] == self._version:
            return cached[1]
        slab = self._round_view(key, round_index)
        if self._kernels is not None:
            # One single-segment fused reduce over every node's row.
            total = self._kernels.segment_xor(
                slab,
                np.arange(self.num_nodes, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                0,
                self.num_columns,
                self.num_rows,
            )[0].reshape(self.num_columns, self.num_rows)
        else:
            total = np.bitwise_xor.reduce(slab, axis=0)
        self._slab_cache[(round_index, key)] = (self._version, total)
        return total

    def _segment_round_xor(
        self,
        key: str,
        sorted_nodes: np.ndarray,
        seg_starts: np.ndarray,
        excluded_nodes: np.ndarray,
        round_index: int,
        col_start: int,
        col_stop: int,
    ) -> np.ndarray:
        """Per-segment XOR of the ``key`` round slab's column span.

        ``sorted_nodes`` is grouped into segments by ``seg_starts``;
        ``excluded_nodes`` are the slab rows outside the query entirely
        (settled components).  Small segments are gathered and folded
        with :func:`~repro.sketch.flat_node_sketch.segmented_xor`.  A
        segment holding most of the graph (the late-round giant
        component) is instead computed by complement: the cached
        whole-slab XOR total, minus (XOR) the other segments' sums and
        the excluded rows -- XOR's self-inverse turns one contiguous
        slab scan into the giant's sum without gathering its rows.
        """
        slab = self._round_view(key, round_index)
        total = sorted_nodes.size
        width = (col_stop - col_start) * self.num_rows
        seg_sizes = np.diff(np.append(seg_starts, total))
        largest = int(seg_sizes.argmax())
        largest_size = int(seg_sizes[largest])
        # Rough cost model in gathered-element units: skipping the
        # largest segment's gather+reduce saves ~2 passes over its rows;
        # the complement pays one contiguous pass over the full-width
        # slab (unless already cached this version) plus 2 passes over
        # the excluded rows.
        slab_cost = 0 if (round_index, key) in self._slab_cache and self._slab_cache[
            (round_index, key)
        ][0] == self._version else self.num_nodes * self.num_columns * self.num_rows // 2
        use_complement = largest_size > 1 and 2 * largest_size * width > (
            slab_cost + 2 * excluded_nodes.size * width
        )
        # The native segmented XOR fuses the gather with the reduce (one
        # cache-blocked pass per segment, no reordered copy of the slab
        # rows); XOR associativity keeps it bit-identical to the
        # gather + segmented_xor composition below.
        kernels = self._kernels
        if not use_complement:
            if kernels is not None:
                return kernels.segment_xor(
                    slab, sorted_nodes, seg_starts, col_start, col_stop, self.num_rows
                )
            gathered = slab[sorted_nodes, col_start:col_stop]
            return segmented_xor(gathered.reshape(total, width), seg_starts)

        lo = int(seg_starts[largest])
        hi = lo + largest_size
        other_nodes = np.concatenate([sorted_nodes[:lo], sorted_nodes[hi:]])
        other_starts = np.delete(seg_starts, largest)
        other_starts[largest:] -= largest_size
        if kernels is not None:
            other_sums = kernels.segment_xor(
                slab, other_nodes, other_starts, col_start, col_stop, self.num_rows
            )
        else:
            other_sums = segmented_xor(
                slab[other_nodes, col_start:col_stop].reshape(other_nodes.size, width),
                other_starts,
            )
        largest_sum = (
            self._round_slab_total(key, round_index)[col_start:col_stop]
            .reshape(width)
            .copy()
        )
        if other_sums.shape[0]:
            largest_sum ^= np.bitwise_xor.reduce(other_sums, axis=0)
        if excluded_nodes.size:
            if kernels is not None:
                # One single-segment fused reduce over the excluded rows.
                largest_sum ^= kernels.segment_xor(
                    slab, excluded_nodes, np.zeros(1, dtype=np.int64),
                    col_start, col_stop, self.num_rows,
                )[0]
            else:
                largest_sum ^= np.bitwise_xor.reduce(
                    slab[excluded_nodes, col_start:col_stop].reshape(
                        excluded_nodes.size, width
                    ),
                    axis=0,
                )
        merged = np.empty((seg_starts.size, width), dtype=slab.dtype)
        merged[:largest] = other_sums[:largest]
        merged[largest] = largest_sum
        merged[largest + 1 :] = other_sums[largest:]
        return merged

    # ------------------------------------------------------------------
    # shared-memory backing (the "processes" parallel backend)
    # ------------------------------------------------------------------
    @property
    def is_shared(self) -> bool:
        """Whether the bucket tensors live in shared-memory segments."""
        return bool(self._shm)

    def to_shared_memory(self) -> None:
        """Migrate the bucket tensors into ``multiprocessing.shared_memory``.

        Allocates one named segment per backing tensor, copies the
        current state in, and swaps the pool's arrays for views of the
        segments -- every other pool operation (folds, queries, per-node
        views) keeps working unchanged.  Worker processes then
        :meth:`attach_shared` by name and fold their shards in place; a
        fold by an attached worker is immediately visible here because
        both processes map the same pages.  Idempotent.  The creating
        pool owns the segments and unlinks them in
        :meth:`release_shared`.
        """
        if self.is_shared:
            return
        if self._packed:
            self._buckets, shm = _move_to_shm(self._buckets)
            self._shm = [shm]
        else:
            self._alpha, alpha_shm = _move_to_shm(self._alpha)
            self._gamma, gamma_shm = _move_to_shm(self._gamma)
            self._shm = [alpha_shm, gamma_shm]
        self._owns_shm = True

    def shared_meta(self) -> Dict:
        """Everything a worker process needs to attach to this pool.

        Geometry and seed parameters travel by value (seed matrices are
        re-derived, which is cheap and cached); tensor state travels by
        shared-memory segment name.
        """
        if not self.is_shared:
            raise ValueError("pool is not shared-memory backed; call to_shared_memory()")
        return {
            "num_nodes": self.num_nodes,
            "graph_seed": self.graph_seed,
            "delta": self.delta,
            "num_rounds": self.num_rounds,
            "packed": self._packed,
            "shm_names": [segment.name for segment in self._shm],
            # Workers fold with the same kernel family when they can;
            # bit-identity means a worker that cannot load a native
            # provider still produces the exact same buckets via numpy.
            "kernel_backend": "auto" if self._kernels is not None else "numpy",
        }

    @classmethod
    def attach_shared(cls, meta: Dict) -> "NodeTensorPool":
        """Build a pool over another process's shared-memory tensors.

        The attached pool is a full :class:`NodeTensorPool` (folds and
        queries both work); only the tensor storage is borrowed.  Update
        accounting and the slab cache are process-local, so attached
        workers are fold-only in practice and the owning process runs
        the queries.
        """
        from multiprocessing import shared_memory

        from repro.kernels import resolve_kernels

        pool = cls(
            meta["num_nodes"],
            EdgeEncoder(meta["num_nodes"]),
            graph_seed=meta["graph_seed"],
            delta=meta["delta"],
            num_rounds=meta["num_rounds"],
            force_wide=not meta["packed"],
            kernels=resolve_kernels(meta.get("kernel_backend", "numpy")),
            _allocate=False,
        )
        shape = (pool.num_rounds, pool.num_nodes, pool.num_columns, pool.num_rows)
        # Attaching also registers with the resource tracker on
        # Python < 3.13, but worker processes share the owner's tracker
        # (its cache is a set, so repeat registrations collapse) and the
        # owner's unlink unregisters the name once -- no extra
        # bookkeeping needed, and the tracker stays a backstop that
        # unlinks the segments if the owner dies without cleanup.
        segments = [
            shared_memory.SharedMemory(name=name) for name in meta["shm_names"]
        ]
        if pool._packed:
            pool._buckets = _shm_view(segments[0], shape, np.uint64)
        else:
            pool._alpha = _shm_view(segments[0], shape, np.uint64)
            pool._gamma = _shm_view(segments[1], shape, np.uint32)
        pool._shm = segments
        pool._owns_shm = False
        return pool

    def release_shared(self, copy_back: bool = True) -> None:
        """Detach from shared memory (unlinking it when this pool owns it).

        The owning pool copies the tensor state back to private arrays
        first, so the engine keeps working after release; an attached
        worker pool just drops its views.  Idempotent.
        ``copy_back=False`` skips the copy -- destruction uses it, where
        a full-pool allocation for an object about to die would only
        spike memory.
        """
        if not self.is_shared:
            return
        if self._owns_shm and copy_back:
            if self._packed:
                self._buckets = self._buckets.copy()
            else:
                self._alpha = self._alpha.copy()
                self._gamma = self._gamma.copy()
        else:
            self._buckets = self._alpha = self._gamma = None
        segments, owns = self._shm, self._owns_shm
        self._shm, self._owns_shm = [], False
        for segment in segments:
            try:
                segment.close()
            except BufferError:
                # A caller still holds a view (raw_tensors() etc.); the
                # mapping lives until that view dies, but the segment
                # can and must still be unlinked below.
                pass
            if owns:
                segment.unlink()

    def __del__(self) -> None:
        try:
            self.release_shared(copy_back=False)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # per-node views
    # ------------------------------------------------------------------
    def _node_bundle_arrays(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """One node's ``(rounds, cols, rows)`` uint64 alpha/gamma bundle."""
        if self._packed:
            packed = self._buckets[:, node]
            return packed >> _SHIFT32, packed & _LOW32
        return np.ascontiguousarray(self._alpha[:, node]), self._gamma[:, node].astype(
            np.uint64
        )

    def _write_node_bundle(self, node: int, alpha: np.ndarray, gamma: np.ndarray) -> None:
        """Overwrite one node's buckets with uint64 alpha/gamma tensors."""
        if self._packed:
            self._buckets[:, node] = (alpha << _SHIFT32) | gamma
        else:
            self._alpha[:, node] = alpha
            self._gamma[:, node] = gamma.astype(np.uint32)

    def node_sketch(self, node: int) -> FlatNodeSketch:
        """Materialise one node's bundle as a standalone FlatNodeSketch."""
        self._check_node(node)
        sketch = FlatNodeSketch(
            node,
            self.encoder,
            graph_seed=self.graph_seed,
            delta=self.delta,
            num_rounds=self.num_rounds,
            kernels=self._kernels,
        )
        sketch._alpha, sketch._gamma = self._node_bundle_arrays(node)
        return sketch

    def load_node_sketch(self, sketch: FlatNodeSketch) -> None:
        """Replace one node's pool buckets with a standalone sketch's state."""
        if (
            sketch.num_rounds != self.num_rounds
            or sketch.graph_seed != self.graph_seed
            or sketch.num_rows != self.num_rows
            or sketch.num_columns != self.num_columns
        ):
            raise ValueError("sketch geometry/seed does not match the pool")
        if not 0 <= sketch.node < self.num_nodes:
            raise ValueError(f"sketch node {sketch.node} outside [0, {self.num_nodes})")
        self._write_node_bundle(sketch.node, sketch._alpha, sketch._gamma)
        self._version += 1

    def node_is_empty(self, node: int) -> bool:
        self._check_node(node)
        alpha, gamma = self._node_bundle_arrays(node)
        return not alpha.any() and not gamma.any()

    def _check_node(self, node: int) -> None:
        """Reject node ids the flat tensors would silently wrap."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def updates_applied(self) -> int:
        """Coordinate updates folded into the pool so far."""
        return self._updates_applied

    def node_sketch_bytes(self) -> int:
        """Payload bytes of a single node's bundle (paper accounting)."""
        return self.num_rounds * self.num_rows * self.num_columns * BYTES_PER_CUBE_BUCKET

    def size_bytes(self) -> int:
        """Payload bytes of the whole pool."""
        return self.num_nodes * self.node_sketch_bytes()

    def raw_tensors(self) -> Tuple[np.ndarray, np.ndarray]:
        """Read-only ``(alpha, gamma)`` round-major tensors.

        Shape ``(rounds, nodes, cols, rows)`` each.  In packed mode both
        are unpacked copies of the single bucket tensor; in wide mode
        they are views of the backing tensors (alpha uint64, gamma
        uint32) -- except when those live in shared memory, where copies
        are returned so a caller-held array can never pin the segment
        mapping open past :meth:`release_shared`.
        """
        if self._packed:
            alpha = self._buckets >> _SHIFT32
            gamma = self._buckets & _LOW32
        elif self.is_shared:
            alpha = self._alpha.copy()
            gamma = self._gamma.copy()
        else:
            alpha = self._alpha.view()
            gamma = self._gamma.view()
        alpha.flags.writeable = False
        gamma.flags.writeable = False
        return alpha, gamma

    def __repr__(self) -> str:
        return (
            f"NodeTensorPool(num_nodes={self.num_nodes}, rounds={self.num_rounds}, "
            f"rows={self.num_rows}, cols={self.num_columns}, "
            f"packed={self._packed}, bytes={self.size_bytes()})"
        )
