"""Closed-form size and shape accounting for both l0-samplers.

Figure 5 of the paper compares the byte size of CubeSketch and the
general-purpose sampler across vector lengths from 10^3 to 10^12.  The
largest of those sketches are never instantiated in this reproduction
(nor do they need to be -- size is a deterministic function of the
parameters), so the benchmark uses these closed forms, and the concrete
sketch classes use the same constants for their ``size_bytes`` methods
to keep the two views consistent.
"""

from __future__ import annotations

import math

#: A CubeSketch bucket is a 64-bit ``alpha`` plus a 32-bit ``gamma``.
BYTES_PER_CUBE_BUCKET = 12

#: Machine word used by the general sampler for vectors shorter than
#: :data:`WIDE_ARITHMETIC_THRESHOLD` (64-bit integers).
STANDARD_WORD_BYTES = 8

#: Word used once 128-bit arithmetic becomes necessary.
STANDARD_WIDE_WORD_BYTES = 16

#: Vector length at which the general sampler must switch to 128-bit
#: arithmetic (the paper places this at 10^10 coordinates, i.e. graphs
#: with >= 10^5 nodes).
WIDE_ARITHMETIC_THRESHOLD = 10**10

#: Vector length at which CubeSketch would need more than 64-bit alphas
#: (graphs with tens of billions of nodes); included for completeness.
CUBESKETCH_WIDE_THRESHOLD = 2**62


def cubesketch_num_columns(delta: float) -> int:
    """Number of columns needed for failure probability ``delta``.

    ``ceil(log2(1/delta))`` -- 7 columns for the paper's delta = 1/100.
    """
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    return max(1, math.ceil(math.log2(1.0 / delta)))


def cubesketch_num_rows(vector_length: int) -> int:
    """Number of bucket rows: ``ceil(log2(n)) + 1`` (row 0 catches all)."""
    if vector_length < 1:
        raise ValueError("vector_length must be at least 1")
    return max(1, math.ceil(math.log2(max(vector_length, 2)))) + 1


def cubesketch_num_buckets(vector_length: int, delta: float = 0.01) -> int:
    """Total bucket count of a CubeSketch with the default geometry."""
    return cubesketch_num_rows(vector_length) * cubesketch_num_columns(delta)


def cubesketch_size_bytes(vector_length: int, delta: float = 0.01) -> int:
    """Payload bytes of a CubeSketch (12 bytes per bucket)."""
    return cubesketch_num_buckets(vector_length, delta) * BYTES_PER_CUBE_BUCKET


def standard_l0_num_buckets(vector_length: int, delta: float = 0.01) -> int:
    """Total bucket count of the general sampler (same geometry)."""
    return cubesketch_num_rows(vector_length) * cubesketch_num_columns(delta)


def standard_l0_word_bytes(vector_length: int) -> int:
    """Bytes per stored integer for the general sampler at this length."""
    if vector_length >= WIDE_ARITHMETIC_THRESHOLD:
        return STANDARD_WIDE_WORD_BYTES
    return STANDARD_WORD_BYTES


def standard_l0_size_bytes(vector_length: int, delta: float = 0.01) -> int:
    """Payload bytes of the general sampler: three words per bucket."""
    words = 3 * standard_l0_num_buckets(vector_length, delta)
    return words * standard_l0_word_bytes(vector_length)


def node_sketch_size_bytes(num_nodes: int, delta: float = 0.01) -> int:
    """Bytes of one GraphZeppelin node sketch.

    A node sketch is ``ceil(log2(V))`` CubeSketches over vectors of
    length ``V^2`` (the edge-slot universe), one per Boruvka round.
    """
    if num_nodes < 2:
        raise ValueError("a graph needs at least two nodes")
    rounds = max(1, math.ceil(math.log2(num_nodes)))
    return rounds * cubesketch_size_bytes(num_nodes * num_nodes, delta)


def graph_sketch_size_bytes(num_nodes: int, delta: float = 0.01) -> int:
    """Bytes of the whole GraphZeppelin sketch structure (V node sketches)."""
    return num_nodes * node_sketch_size_bytes(num_nodes, delta)
