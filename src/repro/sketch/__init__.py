"""l0-sampling sketches.

Two samplers are provided:

* :class:`repro.sketch.cubesketch.CubeSketch` -- the paper's
  contribution: an l0-sampler specialised to vectors over the integers
  mod 2 whose buckets hold a single XOR accumulator and a small XOR
  checksum.  Updates are a few XORs; there is no modular arithmetic.
* :class:`repro.sketch.standard_l0.StandardL0Sketch` -- the
  general-purpose sampler (after Cormode & Firmani) whose buckets hold
  three wide integers and whose checksum requires modular
  exponentiation.  It is the baseline the paper compares against in
  Figures 4 and 5.

Both implement the :class:`repro.sketch.sketch_base.L0Sampler` interface
(update / merge / query / size accounting) so the connectivity layer and
the benchmark harness can swap between them.

On top of the samplers sits the columnar sketch engine:

* :class:`repro.sketch.flat_node_sketch.FlatNodeSketch` -- one node's
  entire bundle of per-round CubeSketches flattened into two contiguous
  uint64 tensors, updated by a single hash-matrix + argsort +
  XOR-prefix-scan kernel instead of Python loops over rounds and
  columns (bit-identical to the legacy bundles under the same seed);
* :class:`repro.sketch.tensor_pool.NodeTensorPool` -- the whole graph's
  sketch state in one tensor pair, able to fold mixed multi-node update
  columns in one kernel pass and answer Boruvka cut queries with one
  gather + XOR reduction;
* :class:`repro.sketch.paged_pool.PagedTensorPool` -- the out-of-core
  twin: the same round-major tensors partitioned into node-group pages
  stored through the hybrid memory, with an LRU-pinned working set,
  dirty write-back, per-page or combined folds, and round slabs
  assembled via partial-range reads.
"""

from repro.sketch.bucket import CubeBucket, StandardBucket
from repro.sketch.cubesketch import CubeSketch
from repro.sketch.flat_node_sketch import (
    FlatNodeSketch,
    merged_round_query,
    query_bucket_arrays_batch,
)
from repro.sketch.sketch_base import (
    SAMPLE_FAIL,
    SAMPLE_GOOD,
    SAMPLE_ZERO,
    L0Sampler,
    SampleOutcome,
    SampleResult,
)
from repro.sketch.sizes import (
    cubesketch_num_buckets,
    cubesketch_size_bytes,
    standard_l0_num_buckets,
    standard_l0_size_bytes,
)
from repro.sketch.paged_pool import PagedTensorPool
from repro.sketch.standard_l0 import StandardL0Sketch
from repro.sketch.tensor_pool import NodeTensorPool

__all__ = [
    "CubeBucket",
    "CubeSketch",
    "FlatNodeSketch",
    "L0Sampler",
    "NodeTensorPool",
    "PagedTensorPool",
    "merged_round_query",
    "query_bucket_arrays_batch",
    "SAMPLE_FAIL",
    "SAMPLE_GOOD",
    "SAMPLE_ZERO",
    "SampleOutcome",
    "SampleResult",
    "StandardBucket",
    "StandardL0Sketch",
    "cubesketch_num_buckets",
    "cubesketch_size_bytes",
    "standard_l0_num_buckets",
    "standard_l0_size_bytes",
]
