"""Bucket value objects for the two l0-samplers.

The performance-critical sketches store their buckets in flat numpy
arrays; these dataclasses are the *logical* view of a single bucket,
used by queries, tests, and debugging output.  They mirror the paper's
notation:

* a CubeSketch bucket holds ``alpha`` (XOR of inserted indices) and
  ``gamma`` (XOR of their checksums) -- Figure 6,
* a standard-l0 bucket holds ``a`` (sum of ``index * delta``), ``b``
  (sum of ``delta``) and ``c`` (sum of ``delta * r^index mod p``) --
  Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CubeBucket:
    """Logical contents of one CubeSketch bucket."""

    alpha: int
    gamma: int

    @property
    def is_empty(self) -> bool:
        """True when no update has touched the bucket (or all cancelled)."""
        return self.alpha == 0 and self.gamma == 0

    def toggled(self, index: int, checksum: int) -> "CubeBucket":
        """The bucket after XOR-ing in one update (pure helper for tests)."""
        return CubeBucket(self.alpha ^ index, self.gamma ^ checksum)


@dataclass(frozen=True, slots=True)
class StandardBucket:
    """Logical contents of one general-purpose l0-sampler bucket."""

    a: int
    b: int
    c: int

    @property
    def is_empty(self) -> bool:
        return self.a == 0 and self.b == 0 and self.c == 0

    def applied(self, index: int, delta: int, checksum_term: int, prime: int) -> "StandardBucket":
        """The bucket after applying one update (pure helper for tests)."""
        return StandardBucket(
            a=self.a + index * delta,
            b=self.b + delta,
            c=(self.c + delta * checksum_term) % prime,
        )
