"""Columnar node sketches: a node's whole sketch bundle as two tensors.

The legacy :class:`~repro.core.node_sketch.NodeSketch` keeps
``ceil(log2 V)`` independent :class:`~repro.sketch.cubesketch.CubeSketch`
objects, each of which loops over its columns in Python.  A batched
update therefore crosses the interpreter ``num_rounds x num_columns``
times.  :class:`FlatNodeSketch` stores the same state as two contiguous
uint64 tensors (``alpha`` and ``gamma``) covering every
``(round, row, column)`` bucket, and precomputes every (round, column)
hash seed into one seed matrix, so a batch of ``K`` edge-slot indices is

1. hashed **once** as a ``(K, rounds x columns)`` matrix
   (:func:`~repro.hashing.mixers.seeded_hash64_matrix`),
2. mapped to bucket depths with one vectorised pass, and
3. folded into every bucket with a single argsort + cumulative-XOR
   prefix scan over the flattened update set
   (:func:`columnar_fold`).

The arithmetic is bit-for-bit identical to the legacy path: the seeds
are derived with the same labels, the hashes are the same functions, and
XOR folding is order-independent, so a FlatNodeSketch and a NodeSketch
fed the same stream hold identical buckets (the property tests assert
this).

Internally the tensors are laid out slot-major with bucket rows
innermost -- shape ``(num_rounds, num_columns, num_rows)`` -- so that a
bucket's flat offset is ``slot * num_rows + row``.  That makes the fold
kernel's scatter targets a single linear expression, and it is the same
layout :class:`~repro.sketch.tensor_pool.NodeTensorPool` uses to hold
*every* node's bundle in one allocation.  The public accessors
(:meth:`FlatNodeSketch.raw_tensors`, :meth:`FlatNodeSketch.round_arrays`)
present the conventional ``(rounds, rows, cols)`` / ``(rows, cols)``
orientation as transposed views.  Serialisation writes the two tensors
as single ``tobytes`` blobs: one node's entire bundle moves as one
contiguous payload, which is what makes the out-of-core configuration's
disk layout sequential.
"""

from __future__ import annotations

import threading
from functools import lru_cache
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.edge_encoding import EdgeEncoder
from repro.exceptions import ConfigurationError, IncompatibleSketchError
from repro.hashing.mixers import (
    finalise_hash64_inplace,
    hash_to_depth,
    mix_seed_array,
    seeded_hash64,
    seeded_hash64_matrix,
)
from repro.hashing.prng import derive_seed
from repro.sketch.cubesketch import CubeSketch, _CHECKSUM_LABEL, _MEMBERSHIP_LABEL
from repro.sketch.sizes import (
    BYTES_PER_CUBE_BUCKET,
    cubesketch_num_columns,
    cubesketch_num_rows,
)
from repro.sketch.sketch_base import SAMPLE_FAIL, SAMPLE_GOOD, SAMPLE_ZERO, SampleResult

_GAMMA_MASK = np.uint64(0xFFFFFFFF)
_ZERO64 = np.uint64(0)

#: Updates per internal chunk of the fold kernel; bounds the
#: ``(K, slots)`` temporaries to a few tens of megabytes while keeping
#: per-chunk fixed costs amortised.
BATCH_CHUNK = 1 << 15

#: Thread-local scratch arena for the fold kernel's large temporaries
#: (the ``(K, S)`` hash matrices and the ``(S, K)`` int16 sort keys).
#: Chunked ingest folds millions of same-shaped batches, so reusing the
#: buffers removes the dominant allocator churn of the numpy path;
#: thread-local storage keeps concurrent shard folds from sharing them.
_FOLD_SCRATCH = threading.local()


def fold_scratch(tag: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
    """A reusable per-thread scratch buffer keyed by role, shape and dtype.

    Buffers live until the thread exits; distinct batch shapes get
    distinct buffers, and the chunked callers quantise their batch
    sizes, so the arena stays small.  Callers must finish consuming a
    buffer before requesting the same ``(tag, shape, dtype)`` again on
    the same thread.
    """
    buffers = getattr(_FOLD_SCRATCH, "buffers", None)
    if buffers is None:
        buffers = {}
        _FOLD_SCRATCH.buffers = buffers
    key = (tag, shape, np.dtype(dtype).str)
    buffer = buffers.get(key)
    if buffer is None:
        buffer = np.empty(shape, dtype=dtype)
        buffers[key] = buffer
    return buffer


@lru_cache(maxsize=64)
def flat_seed_matrices(
    graph_seed: int, num_rounds: int, num_columns: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-(round, column) hash seeds, flattened round-major.

    Returns ``(membership, checksum, mixed_membership, mixed_checksum)``
    where each array has ``num_rounds * num_columns`` entries and slot
    ``s = round * num_columns + column``.  The raw seeds match the ones
    the legacy per-round CubeSketches derive; the mixed variants are
    pre-diffused for :func:`~repro.hashing.mixers.seeded_hash64_matrix`.
    Seeds depend only on the graph seed and the geometry, so they are
    cached and shared across every node of an engine.
    """
    # Local import: the legacy NodeSketch module imports CubeSketch from
    # this package, so round_seed cannot be imported at module top.
    from repro.core.node_sketch import round_seed

    membership = np.empty(num_rounds * num_columns, dtype=np.uint64)
    checksum = np.empty(num_rounds * num_columns, dtype=np.uint64)
    for round_index in range(num_rounds):
        seed = round_seed(graph_seed, round_index)
        base = round_index * num_columns
        for col in range(num_columns):
            membership[base + col] = derive_seed(seed, _MEMBERSHIP_LABEL, col)
            checksum[base + col] = derive_seed(seed, _CHECKSUM_LABEL, col)
    mixed_membership = mix_seed_array(membership)
    mixed_checksum = mix_seed_array(checksum)
    for array in (membership, checksum, mixed_membership, mixed_checksum):
        array.flags.writeable = False
    return membership, checksum, mixed_membership, mixed_checksum


def validate_indices(indices, vector_length: int) -> Optional[np.ndarray]:
    """Validate a raw edge-slot index batch, mirroring the legacy guard.

    Matches :meth:`CubeSketch.update_batch`'s input handling: a negative
    or out-of-range index raises ``ValueError`` instead of wrapping
    through the uint64 cast and silently corrupting buckets.  Returns
    the batch as a uint64 array, or ``None`` for an empty batch.
    """
    idx = np.asarray(indices)
    if idx.size == 0:
        return None
    if idx.ndim != 1:
        raise ValueError("expected a one-dimensional index array")
    if idx.dtype.kind in "if" and (idx < 0).any():
        raise ValueError("batch contains a negative index")
    idx = idx.astype(np.uint64, copy=False)
    if int(idx.max()) >= vector_length:
        raise ValueError("batch contains an index outside the sketched vector")
    return idx


def hash_depths_checksums(
    indices: np.ndarray,
    mixed_membership: np.ndarray,
    mixed_checksum: np.ndarray,
    num_rows: int,
    reuse_scratch: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Hash phase of the fold kernel: ``(K, S)`` depths and checksums.

    Split out so callers folding the *same* indices into several
    destinations (the mirrored halves of an edge batch) hash once and
    reuse the matrices.  ``reuse_scratch`` backs the hash matrices with
    the per-thread :func:`fold_scratch` arena instead of fresh
    allocations; the returned arrays are then only valid until this
    thread's next ``reuse_scratch`` call with the same batch shape, so
    it is for callers (like :func:`columnar_fold`) that consume them
    immediately.
    """
    idx = indices.astype(np.uint64, copy=False)
    shape = (idx.size, mixed_membership.size)
    membership = seeded_hash64_matrix(
        idx,
        mixed_membership,
        out=fold_scratch("membership", shape, np.uint64) if reuse_scratch else None,
    )
    depths = hash_to_depth(membership, num_rows)
    checksums = seeded_hash64_matrix(
        idx,
        mixed_checksum,
        out=fold_scratch("checksum", shape, np.uint64) if reuse_scratch else None,
    )
    checksums &= _GAMMA_MASK
    return depths, checksums


def max_radix_dst_span(num_rows: int) -> int:
    """Widest destination-node span the int16 fold fast path supports.

    The multi-destination fast path of :func:`fold_hashed` sorts each
    slot column by the composite key
    ``(dst - dst_min) * (num_rows + 1) + inverted_depth``, which must
    fit in an int16 for numpy's radix sort to apply.  Shard planners
    size their node ranges against this bound.
    """
    return max((np.iinfo(np.int16).max - num_rows) // (num_rows + 1), 1)


def fold_hashed(
    indices: np.ndarray,
    depths: np.ndarray,
    checksums: np.ndarray,
    num_rows: int,
    dsts: Optional[np.ndarray] = None,
    dst_stride: Optional[int] = None,
    slot_offsets: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reduction phase of the fold kernel (see :func:`columnar_fold`).

    ``dst_stride`` and ``slot_offsets`` let a multi-destination caller
    relocate bucket ``(dst, slot)`` to segment
    ``dst * dst_stride + slot_offsets[slot]`` instead of the default
    node-major ``dst * num_slots + slot``; the tensor pool uses this to
    emit round-major flat offsets directly from the kernel.  The mapping
    must stay injective over ``(dst, slot)`` pairs.
    """
    idx = indices.astype(np.uint64, copy=False)
    k = idx.size
    num_slots = depths.shape[1]

    slot_ids = np.arange(num_slots, dtype=np.int64)
    # Custom slot offsets must ascend with the slot id so that the
    # per-slot fast path's slot-order emission still matches the flat
    # composite-key sort order.
    offsets = slot_ids if slot_offsets is None else slot_offsets
    dst_arr = dst_min = None
    if dsts is not None:
        dst_arr = np.asarray(dsts).astype(np.int64, copy=False)
        dst_min = int(dst_arr.min())
        if int(dst_arr.max()) - dst_min > max_radix_dst_span(num_rows) - 1:
            dst_arr = None
    if dsts is None and num_rows < np.iinfo(np.int16).max:
        # Single-destination batch: every slot is one segment holding
        # exactly ``k`` updates, so the composite (segment, inverted
        # depth) key collapses to the inverted depth alone -- an int16.
        # Sorting each slot column independently lets numpy use its
        # radix sort for short integers (~7x faster than argsorting the
        # flat int64 composite key) and the segment structure is known
        # without decoding any keys.  The (S, K) key buffer comes from
        # the per-thread scratch arena (it never escapes this call) and
        # the subtract writes it directly, skipping the int64
        # intermediate the expression form would materialise.
        inv_depth = fold_scratch("key16", (num_slots, k), np.int16)
        np.subtract(np.int64(num_rows), depths.T, out=inv_depth, casting="unsafe")
        order_rows = np.argsort(inv_depth, axis=1, kind="stable")
        sorted_depth = np.int64(num_rows) - np.take_along_axis(
            inv_depth, order_rows, axis=1
        ).ravel().astype(np.int64)
        # Column s's entries live at flat positions k_i * S + s of the
        # row-major (K, S) matrices; emitting columns in slot order
        # reproduces the flat composite-key sort order exactly.
        order = (order_rows * np.int64(num_slots) + slot_ids[:, None]).ravel()
        sorted_seg = np.repeat(offsets, k)
        total = k * num_slots
        new_seg = np.zeros(total, dtype=bool)
        new_seg[::k] = True
    elif dst_arr is not None:
        # Multi-destination batch over a narrow node range (a shard):
        # the composite (node-local destination, inverted depth) key
        # fits an int16, so each slot column sorts with the same radix
        # fast path the single-destination branch uses.  This is what
        # makes sharded ingest faster than the flat int64 argsort even
        # before any threads join in; the shard planner picks node
        # ranges no wider than :func:`max_radix_dst_span`.
        stride = num_slots if dst_stride is None else int(dst_stride)
        dloc = dst_arr - np.int64(dst_min)
        # Same arena-backed (S, K) key buffer as the single-destination
        # branch: inverted depth written in place, then the node-local
        # destination term added broadcast per column.
        key16 = fold_scratch("key16", (num_slots, k), np.int16)
        np.subtract(np.int64(num_rows), depths.T, out=key16, casting="unsafe")
        key16 += (dloc * np.int64(num_rows + 1)).astype(np.int16)[None, :]
        order_rows = np.argsort(key16, axis=1, kind="stable")
        sorted_key = (
            np.take_along_axis(key16, order_rows, axis=1).astype(np.int64).ravel()
        )
        sorted_dloc = sorted_key // (num_rows + 1)
        sorted_depth = np.int64(num_rows) - (
            sorted_key - sorted_dloc * (num_rows + 1)
        )
        order = (order_rows.astype(np.int64) * num_slots + slot_ids[:, None]).ravel()
        sorted_seg = np.repeat(offsets, k) + (sorted_dloc + np.int64(dst_min)) * stride
        total = k * num_slots
        # A segment boundary is a destination change within a slot
        # column or the start of the next column (``[::k]``).
        new_seg = np.empty(total, dtype=bool)
        new_seg[0] = True
        np.not_equal(sorted_dloc[1:], sorted_dloc[:-1], out=new_seg[1:])
        new_seg[::k] = True
    else:
        # Composite sort key: (destination, slot) segment-major, deepest
        # updates first within a segment.  depth is in [1, num_rows], so
        # (num_rows - depth) orders a segment's updates descending by
        # depth without colliding across segments.
        if dsts is None:
            seg = np.broadcast_to(offsets, (k, num_slots))
        else:
            stride = num_slots if dst_stride is None else int(dst_stride)
            seg = dsts.astype(np.int64, copy=False)[:, None] * stride + offsets
        key = (seg * (num_rows + 1) + (np.int64(num_rows) - depths)).ravel()
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        sorted_seg = sorted_key // (num_rows + 1)
        sorted_depth = np.int64(num_rows) - (sorted_key - sorted_seg * (num_rows + 1))
        total = sorted_key.size
        new_seg = np.empty(total, dtype=bool)
        new_seg[0] = True
        np.not_equal(sorted_seg[1:], sorted_seg[:-1], out=new_seg[1:])

    cum_alpha = np.bitwise_xor.accumulate(
        np.broadcast_to(idx[:, None], (k, num_slots)).ravel()[order]
    )
    cum_gamma = np.bitwise_xor.accumulate(checksums.ravel()[order])

    # Cumulative XOR runs over the whole sorted array; each segment's
    # fold needs the scan *restarted* at its start, which XOR's
    # self-inverse gives for free: subtract (XOR) the prefix just before
    # the segment.
    seg_starts = np.flatnonzero(new_seg)
    seg_index = np.cumsum(new_seg) - 1
    prefix_alpha = np.where(
        seg_starts > 0, cum_alpha[np.maximum(seg_starts - 1, 0)], _ZERO64
    )[seg_index]
    prefix_gamma = np.where(
        seg_starts > 0, cum_gamma[np.maximum(seg_starts - 1, 0)], _ZERO64
    )[seg_index]

    # Element p (depth d_p) is the newest member of bucket rows
    # [next_depth, d_p) of its segment, where next_depth is the depth of
    # the following element (0 at segment end).  Those rows' final fold
    # value is exactly the prefix XOR through p, so each element emits a
    # run of (row, value) pairs and every bucket is emitted at most once.
    next_depth = np.empty(total, dtype=np.int64)
    next_depth[-1] = 0
    np.copyto(next_depth[:-1], np.where(new_seg[1:], 0, sorted_depth[1:]))
    runs = sorted_depth - next_depth

    emit = runs > 0
    runs = runs[emit]
    emit_seg = sorted_seg[emit]
    emit_base = next_depth[emit]
    emit_alpha = cum_alpha[emit] ^ prefix_alpha[emit]
    emit_gamma = cum_gamma[emit] ^ prefix_gamma[emit]

    run_starts = np.cumsum(runs) - runs
    rows = np.arange(int(runs.sum()), dtype=np.int64) - np.repeat(run_starts, runs)
    rows += np.repeat(emit_base, runs)
    targets = np.repeat(emit_seg * num_rows, runs) + rows
    return targets, np.repeat(emit_alpha, runs), np.repeat(emit_gamma, runs)


def columnar_fold(
    indices: np.ndarray,
    mixed_membership: np.ndarray,
    mixed_checksum: np.ndarray,
    num_rows: int,
    dsts: Optional[np.ndarray] = None,
    dst_stride: Optional[int] = None,
    slot_offsets: Optional[np.ndarray] = None,
    reuse_scratch: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The columnar engine's whole update kernel, over one chunk.

    Hashes ``K`` edge-slot ``indices`` against all ``S`` (round, column)
    hash functions as one ``(K, S)`` matrix, computes bucket depths
    vectorised, and reduces every bucket's XOR contribution with a
    single argsort + cumulative-XOR prefix scan over the flattened
    ``K x S`` update set.

    When ``dsts`` is given (one destination node per update), updates
    for *all* nodes are folded in the same pass: the sort key simply
    gains the node id, so ingesting a mixed multi-node batch costs one
    kernel invocation instead of one per node.

    Returns ``(targets, alpha_values, gamma_values)``: flat bucket
    offsets -- ``(dst * S + slot) * num_rows + row`` into a rows-innermost
    tensor pool -- and the values to XOR into them.  Targets are unique
    within one call, so the caller can fold with a fancy-indexed
    ``pool[targets] ^= values`` (no slow ``ufunc.at`` scatter needed).

    The ``(K, S)`` hash matrices live in the per-thread scratch arena by
    default (they are consumed before this function returns); pass
    ``reuse_scratch=False`` to force fresh allocations.
    """
    depths, checksums = hash_depths_checksums(
        indices, mixed_membership, mixed_checksum, num_rows,
        reuse_scratch=reuse_scratch,
    )
    return fold_hashed(
        indices,
        depths,
        checksums,
        num_rows,
        dsts=dsts,
        dst_stride=dst_stride,
        slot_offsets=slot_offsets,
    )


def query_bucket_arrays(
    alpha: np.ndarray,
    gamma: np.ndarray,
    vector_length: int,
    checksum_seeds: Sequence[int],
) -> SampleResult:
    """CubeSketch's query over raw ``(rows, cols)`` bucket arrays.

    Scans buckets in the same order as
    :meth:`~repro.sketch.cubesketch.CubeSketch.query` (columns outer,
    deepest row first) so flat and legacy sketches in identical states
    return identical samples.
    """
    num_rows, num_columns = alpha.shape
    if not (alpha.any() or gamma.any()):
        return SampleResult.zero()
    for col in range(num_columns):
        checksum_seed = int(checksum_seeds[col])
        for row in range(num_rows - 1, -1, -1):
            a = int(alpha[row, col])
            g = int(gamma[row, col])
            if a == 0 and g == 0:
                continue
            if a >= vector_length:
                continue
            if (seeded_hash64(a, checksum_seed) & 0xFFFFFFFF) == g:
                return SampleResult.good(a)
    return SampleResult.fail()


#: Rows per block of the two-level segmented XOR.  Block sums reduce
#: through ``bitwise_xor.reduce`` (SIMD-vectorised elementwise row ops),
#: side-stepping ``reduceat``'s ~5ns/element scalar inner loop; 64 rows
#: keeps the boundary-correction gather small while leaving long
#: segments almost entirely to the fast block pass.
_XOR_BLOCK_ROWS = 64


def _segmented_xor_blocked(
    values: np.ndarray, seg_starts: np.ndarray, seg_ends: np.ndarray
) -> np.ndarray:
    """Two-level segmented XOR: block sums plus boundary corrections.

    Level 1 XOR-reduces fixed ``_XOR_BLOCK_ROWS``-row blocks with the
    vectorised ``reduce`` kernel and prefix-scans the block sums, so a
    segment's fully-covered blocks cost two row lookups.  Level 2
    gathers only the head/tail rows that straddle a block boundary and
    reduces those fragments with ``reduceat``.  XOR is exact and
    associative, so the result is bit-identical to a flat ``reduceat``.
    """
    num_rows, width = values.shape
    block = _XOR_BLOCK_ROWS
    num_blocks = num_rows // block
    block_sums = np.bitwise_xor.reduce(
        values[: num_blocks * block].reshape(num_blocks, block, width), axis=1
    )
    prefix = np.zeros((num_blocks + 1, width), dtype=values.dtype)
    np.bitwise_xor.accumulate(block_sums, axis=0, out=prefix[1:])

    # Full blocks inside segment [s, e): [ceil(s / block), floor(e / block)),
    # clamped to the blocked prefix of the array; a segment contained in
    # one block has none (first >= last) and is all boundary rows.
    first = np.minimum(-(-seg_starts // block), num_blocks)
    last = np.minimum(seg_ends // block, num_blocks)
    last = np.maximum(last, first)
    result = prefix[last] ^ prefix[first]

    # Clamp the fragment boundaries into each segment: a segment inside
    # a single block is all head, one past the blocked prefix all tail.
    head_stops = np.clip(first * block, seg_starts, seg_ends)
    tail_starts = np.clip(last * block, head_stops, seg_ends)
    counts = (head_stops - seg_starts) + (seg_ends - tail_starts)
    nonzero = np.flatnonzero(counts)
    if nonzero.size:
        # Boundary rows gathered in segment order (each segment's head
        # fragment immediately followed by its tail fragment), so one
        # reduceat over the gather with per-segment offsets reduces them.
        spans = np.stack(
            [seg_starts, head_stops, tail_starts, seg_ends], axis=1
        ).reshape(-1)
        lengths = np.diff(spans.reshape(-1, 2), axis=1).reshape(-1)
        keep = lengths > 0
        starts_kept, lengths_kept = spans[::2][keep], lengths[keep]
        offsets = np.repeat(starts_kept - np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(lengths_kept)[:-1]]
        ), lengths_kept)
        rows = np.arange(int(lengths_kept.sum()), dtype=np.int64) + offsets
        frag_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts[nonzero])[:-1]]
        )
        result[nonzero] ^= np.bitwise_xor.reduceat(values[rows], frag_offsets, axis=0)
    return result


def segmented_xor(values: np.ndarray, seg_starts: np.ndarray) -> np.ndarray:
    """XOR-reduce consecutive row segments of a 2-D array in one pass.

    ``values`` is ``(M, W)`` with rows already grouped into segments;
    ``seg_starts`` holds each segment's first row (``seg_starts[0]`` must
    be 0 and segments must be non-empty).  Returns the
    ``(num_segments, W)`` per-segment XOR -- the query-side twin of the
    fold kernel's segmented reduction.  XOR is exact and associative, so
    every path below is bit-identical.  When every segment is a single
    row the input is returned as-is, so callers must treat the result
    as read-only.

    Short segments go through ``reduceat``, which writes only the
    segment results (measured ~3x faster here than a full
    cumulative-XOR prefix scan plus boundary picks).  ``reduceat``'s
    scalar inner loop (~5ns/element, no SIMD) is however the floor of
    whole-round queries on *large* segments, so once a segment spans
    several :data:`_XOR_BLOCK_ROWS` blocks the reduction switches to the
    blocked two-level scheme of :func:`_segmented_xor_blocked`.
    """
    num_rows = values.shape[0]
    if seg_starts.size == num_rows:
        return values
    seg_ends = np.append(seg_starts[1:], num_rows)
    # Blocked pays off only when full blocks absorb most rows: require a
    # segment spanning several blocks and boundary fragments (at most
    # ~2 blocks per segment) clearly smaller than the whole array.
    sizes = seg_ends - seg_starts
    if (
        int(sizes.max()) >= 4 * _XOR_BLOCK_ROWS
        and 2 * _XOR_BLOCK_ROWS * seg_starts.size < num_rows
    ):
        return _segmented_xor_blocked(values, seg_starts, seg_ends)
    return np.bitwise_xor.reduceat(values, seg_starts, axis=0)


#: Largest label value the int16 radix argsort fast path can represent.
_INT16_LABEL_LIMIT = int(np.iinfo(np.int16).max)


def group_nodes_by_label(
    labels: np.ndarray, node_mask: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group node ids into contiguous per-label segments.

    The shared front half of every whole-round cut query: select the
    nodes (``node_mask`` restricts to the marked ones), stable-sort
    them by label -- through numpy's int16 radix sort when every label
    fits, ~7x faster than the int64 comparison sort -- and mark the
    segment boundaries.  Returns ``(sorted_nodes, seg_starts, roots)``
    where ``roots`` holds the distinct labels in ascending order, one
    per segment.
    """
    if node_mask is None:
        nodes = np.arange(labels.size, dtype=np.int64)
        selected = np.asarray(labels, dtype=np.int64)
    else:
        nodes = np.flatnonzero(np.asarray(node_mask, dtype=bool))
        selected = np.asarray(labels, dtype=np.int64)[nodes]
    if nodes.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    # Gate the fast path on the actual label values -- labels are
    # caller-supplied and need not be node ids; an out-of-range value
    # would wrap through the cast and mis-group components.
    if int(selected.min()) >= 0 and int(selected.max()) <= _INT16_LABEL_LIMIT:
        order = np.argsort(selected.astype(np.int16), kind="stable")
    else:
        order = np.argsort(selected, kind="stable")
    sorted_nodes = nodes[order]
    sorted_labels = selected[order]
    new_seg = np.empty(sorted_labels.size, dtype=bool)
    new_seg[0] = True
    np.not_equal(sorted_labels[1:], sorted_labels[:-1], out=new_seg[1:])
    seg_starts = np.flatnonzero(new_seg)
    return sorted_nodes, seg_starts, sorted_labels[seg_starts]


def decode_column_batch(
    alpha: np.ndarray,
    gamma: np.ndarray,
    vector_length: int,
    mixed_checksum_seed: np.uint64,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode one column's buckets for many components at once.

    ``alpha`` and ``gamma`` are ``(C, num_rows)``: one column of ``C``
    merged component sketches.  Scans rows deepest-first exactly like
    :func:`query_bucket_arrays` does within a column, checksum-verifying
    with one broadcasted hash pipeline.  Returns ``(good, zero, index)``
    where ``good[c]`` flags a verified bucket, ``zero[c]`` flags an
    all-empty column, and ``index[c]`` is the recovered edge slot (-1
    when not good).  ``mixed_checksum_seed`` is the column's checksum
    seed pre-diffused with :func:`~repro.hashing.mixers.mix_seed_array`.
    """
    count, num_rows = alpha.shape
    nonzero = (alpha != _ZERO64) | (gamma != _ZERO64)
    zero = ~nonzero.any(axis=1)
    candidates = nonzero & (alpha < np.uint64(vector_length))
    good = np.zeros(count, dtype=bool)
    index = np.full(count, -1, dtype=np.int64)
    # Checksum-hash only the candidate buckets (typically a small
    # fraction -- most buckets are empty or hold deep collisions), as a
    # compressed 1-D batch instead of the full (C, num_rows) matrix.
    flat_positions = np.flatnonzero(candidates)
    if flat_positions.size == 0:
        return good, zero, index
    flat_alpha = alpha.ravel()[flat_positions]
    hashed = finalise_hash64_inplace(flat_alpha ^ mixed_checksum_seed)
    verified = flat_positions[(hashed & _GAMMA_MASK) == gamma.ravel()[flat_positions]]
    if verified.size == 0:
        return good, zero, index
    # ``verified`` ascends component-major with rows ascending inside a
    # component; the deepest valid row is therefore each component's
    # *last* entry, i.e. the first occurrence scanning from the back.
    components = verified // num_rows
    hit_components, first_from_back = np.unique(components[::-1], return_index=True)
    picked = verified[components.size - 1 - first_from_back]
    good[hit_components] = True
    index[hit_components] = alpha.ravel()[picked].astype(np.int64)
    return good, zero, index


def query_bucket_arrays_batch(
    alpha: np.ndarray,
    gamma: np.ndarray,
    vector_length: int,
    checksum_seeds: Sequence[int],
    kernels=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """CubeSketch's query over ``C`` components' bucket tensors at once.

    The batched twin of :func:`query_bucket_arrays`: ``alpha`` and
    ``gamma`` are ``(C, num_columns, num_rows)`` slot-major tensors (the
    tensor pool's native round-slice layout -- note the transpose
    relative to the scalar function's ``(rows, cols)`` arguments), and
    instead of ``C`` :class:`SampleResult` objects the result is a pair
    of arrays: ``statuses`` (:data:`~repro.sketch.sketch_base.SAMPLE_ZERO`
    / ``SAMPLE_GOOD`` / ``SAMPLE_FAIL`` codes, uint8) and ``indices``
    (the sampled edge slot per GOOD component, -1 elsewhere).

    Columns are scanned in ascending order with deepest rows first, so
    each component reports exactly the bucket the scalar scan would --
    components resolved by an early column drop out of later columns'
    work, which is what makes whole-round Boruvka queries cheap: most
    components sample successfully from column 0.

    ``kernels``, when given, is a native kernel provider (see
    :mod:`repro.kernels`) whose bit-identical compiled decoder replaces
    :func:`decode_column_batch` for each column pass.
    """
    alpha = np.asarray(alpha)
    gamma = np.asarray(gamma)
    if alpha.shape != gamma.shape or alpha.ndim != 3:
        raise ValueError("expected matching (C, num_columns, num_rows) bucket tensors")
    count, num_columns, _ = alpha.shape
    seeds = np.asarray(checksum_seeds, dtype=np.uint64)
    if seeds.shape != (num_columns,):
        raise ValueError("need exactly one checksum seed per column")
    mixed = mix_seed_array(seeds)
    decode = decode_column_batch if kernels is None else kernels.decode_column

    statuses = np.full(count, SAMPLE_FAIL, dtype=np.uint8)
    indices = np.full(count, -1, dtype=np.int64)
    seen_nonzero = np.zeros(count, dtype=bool)
    undecided = np.arange(count)
    for col in range(num_columns):
        good, zero, index = decode(
            alpha[undecided, col], gamma[undecided, col], vector_length, mixed[col]
        )
        seen_nonzero[undecided] |= ~zero
        hits = undecided[good]
        statuses[hits] = SAMPLE_GOOD
        indices[hits] = index[good]
        undecided = undecided[~good]
        if undecided.size == 0:
            break
    statuses[(statuses != SAMPLE_GOOD) & ~seen_nonzero] = SAMPLE_ZERO
    return statuses, indices


class FlatNodeSketch:
    """A node's entire sketch bundle as two contiguous uint64 tensors.

    Drop-in replacement for the legacy
    :class:`~repro.core.node_sketch.NodeSketch` (same constructor, same
    update/query/merge surface), with all per-round, per-column state
    flattened so batched updates run as single numpy kernels.
    """

    __slots__ = (
        "node",
        "encoder",
        "graph_seed",
        "delta",
        "num_rounds",
        "num_rows",
        "num_columns",
        "_alpha",
        "_gamma",
        "_membership_seeds",
        "_checksum_seeds",
        "_mixed_membership",
        "_mixed_checksum",
        "_kernels",
    )

    def __init__(
        self,
        node: int,
        encoder: EdgeEncoder,
        graph_seed: int = 0,
        delta: float = 0.01,
        num_rounds: int | None = None,
        kernels=None,
    ) -> None:
        from repro.core.node_sketch import num_boruvka_rounds

        if not 0 < delta < 1:
            raise ConfigurationError("delta must be in (0, 1)")
        self.node = int(node)
        self.encoder = encoder
        self.graph_seed = int(graph_seed)
        self.delta = float(delta)
        self.num_rounds = (
            int(num_rounds) if num_rounds is not None else num_boruvka_rounds(encoder.num_nodes)
        )
        if self.num_rounds < 1:
            raise ConfigurationError("a node sketch needs at least one round")
        self.num_rows = cubesketch_num_rows(encoder.vector_length)
        self.num_columns = cubesketch_num_columns(delta)
        # Slot-major, rows innermost: bucket (round, row, col) lives at
        # flat offset (round * num_columns + col) * num_rows + row.
        shape = (self.num_rounds, self.num_columns, self.num_rows)
        self._alpha = np.zeros(shape, dtype=np.uint64)
        self._gamma = np.zeros(shape, dtype=np.uint64)
        (
            self._membership_seeds,
            self._checksum_seeds,
            self._mixed_membership,
            self._mixed_checksum,
        ) = flat_seed_matrices(self.graph_seed, self.num_rounds, self.num_columns)
        #: Optional native kernel provider (see :mod:`repro.kernels`);
        #: ``None`` keeps the numpy fold.  Bit-identical either way.
        self._kernels = kernels

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        """Number of (round, column) hash slots."""
        return self.num_rounds * self.num_columns

    @property
    def vector_length(self) -> int:
        return self.encoder.vector_length

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def apply_edge(self, other_endpoint: int) -> None:
        """Toggle the edge ``{self.node, other_endpoint}`` in every round."""
        index = self.encoder.encode(self.node, other_endpoint)
        self.apply_indices(np.asarray([index], dtype=np.uint64))

    def apply_batch(self, neighbors: Iterable[int]) -> None:
        """Toggle a batch of edges ``{self.node, w}`` in every round."""
        indices = self.encoder.encode_batch(self.node, neighbors)
        self.apply_indices(indices)

    def apply_indices(self, indices: np.ndarray) -> None:
        """Fold pre-encoded edge-slot indices into every round at once."""
        idx = validate_indices(indices, self.encoder.vector_length)
        if idx is None:
            return
        kernels = getattr(self, "_kernels", None)
        if kernels is not None:
            kernels.fold_bundle(self, idx)
            return
        alpha_flat = self._alpha.reshape(-1)
        gamma_flat = self._gamma.reshape(-1)
        for start in range(0, idx.size, BATCH_CHUNK):
            targets, alpha_vals, gamma_vals = columnar_fold(
                idx[start : start + BATCH_CHUNK],
                self._mixed_membership,
                self._mixed_checksum,
                self.num_rows,
            )
            alpha_flat[targets] ^= alpha_vals
            gamma_flat[targets] ^= gamma_vals

    # ------------------------------------------------------------------
    # queries and merging
    # ------------------------------------------------------------------
    def query_round(self, round_index: int) -> SampleResult:
        """Query the sketch reserved for Boruvka round ``round_index``."""
        base = round_index * self.num_columns
        return query_bucket_arrays(
            self._alpha[round_index].T,
            self._gamma[round_index].T,
            self.encoder.vector_length,
            self._checksum_seeds[base : base + self.num_columns],
        )

    def round_arrays(self, round_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Read-only ``(rows, cols)`` views of one round's buckets."""
        alpha = self._alpha[round_index].T.view()
        gamma = self._gamma[round_index].T.view()
        alpha.flags.writeable = False
        gamma.flags.writeable = False
        return alpha, gamma

    def round_sketch(self, round_index: int) -> CubeSketch:
        """A legacy CubeSketch materialised from one round (compat/tests)."""
        from repro.core.node_sketch import round_seed

        sketch = CubeSketch(
            self.encoder.vector_length,
            delta=self.delta,
            seed=round_seed(self.graph_seed, round_index),
            num_columns=self.num_columns,
            num_rows=self.num_rows,
        )
        sketch.load_raw_arrays(
            np.ascontiguousarray(self._alpha[round_index].T),
            np.ascontiguousarray(self._gamma[round_index].T),
        )
        return sketch

    def merge(self, other: "FlatNodeSketch") -> None:
        """Fold another node's bundle into this one (supernode merge)."""
        if not self.is_compatible(other):
            raise IncompatibleSketchError(
                "node sketches from different graphs/seeds cannot be merged"
            )
        self._alpha ^= other._alpha
        self._gamma ^= other._gamma

    def is_compatible(self, other: object) -> bool:
        return (
            isinstance(other, FlatNodeSketch)
            and other.encoder.num_nodes == self.encoder.num_nodes
            and other.num_rounds == self.num_rounds
            and other.graph_seed == self.graph_seed
            and other.num_rows == self.num_rows
            and other.num_columns == self.num_columns
        )

    def copy(self) -> "FlatNodeSketch":
        clone = FlatNodeSketch.__new__(FlatNodeSketch)
        clone.node = self.node
        clone.encoder = self.encoder
        clone.graph_seed = self.graph_seed
        clone.delta = self.delta
        clone.num_rounds = self.num_rounds
        clone.num_rows = self.num_rows
        clone.num_columns = self.num_columns
        clone._alpha = self._alpha.copy()
        clone._gamma = self._gamma.copy()
        clone._membership_seeds = self._membership_seeds
        clone._checksum_seeds = self._checksum_seeds
        clone._mixed_membership = self._mixed_membership
        clone._mixed_checksum = self._mixed_checksum
        clone._kernels = getattr(self, "_kernels", None)
        return clone

    # ------------------------------------------------------------------
    # accounting and serialisation
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Total payload bytes across all rounds (paper's accounting)."""
        return self.num_rounds * self.num_rows * self.num_columns * BYTES_PER_CUBE_BUCKET

    def is_empty(self) -> bool:
        return not self._alpha.any() and not self._gamma.any()

    def raw_tensors(self) -> Tuple[np.ndarray, np.ndarray]:
        """Read-only ``(rounds, rows, cols)`` views of the full tensors."""
        alpha = self._alpha.transpose(0, 2, 1).view()
        gamma = self._gamma.transpose(0, 2, 1).view()
        alpha.flags.writeable = False
        gamma.flags.writeable = False
        return alpha, gamma

    def to_bytes(self) -> bytes:
        """Serialise the whole bundle as one contiguous blob."""
        from repro.sketch.serialization import flat_node_sketch_to_bytes

        return flat_node_sketch_to_bytes(self)

    @classmethod
    def from_bytes(
        cls,
        payload: bytes,
        encoder: EdgeEncoder,
        graph_seed: int,
        delta: float = 0.01,
        kernels=None,
    ) -> "FlatNodeSketch":
        """Reconstruct a bundle serialised with :meth:`to_bytes`."""
        from repro.sketch.serialization import flat_node_sketch_from_bytes

        sketch = flat_node_sketch_from_bytes(
            payload, encoder, graph_seed=graph_seed, delta=delta
        )
        sketch._kernels = kernels
        return sketch

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlatNodeSketch):
            return NotImplemented
        return (
            self.is_compatible(other)
            and np.array_equal(self._alpha, other._alpha)
            and np.array_equal(self._gamma, other._gamma)
        )

    def __repr__(self) -> str:
        return (
            f"FlatNodeSketch(node={self.node}, rounds={self.num_rounds}, "
            f"rows={self.num_rows}, cols={self.num_columns}, bytes={self.size_bytes()})"
        )


def merged_round_query(
    node_sketches: Sequence[FlatNodeSketch],
    round_index: int,
) -> SampleResult:
    """Query the XOR of several nodes' round-``round_index`` buckets.

    The Boruvka cut-merge inner loop: instead of materialising a merged
    CubeSketch object, the members' round slices are XOR-reduced in one
    stacked numpy reduction and queried in place.  Inputs are not
    mutated, so the stream can continue after the query.
    """
    if not node_sketches:
        raise ValueError("merged_round_query requires at least one node sketch")
    first = node_sketches[0]
    for sketch in node_sketches[1:]:
        if not first.is_compatible(sketch):
            raise IncompatibleSketchError(
                "node sketches from different graphs/seeds cannot be merged"
            )
    if len(node_sketches) == 1:
        return first.query_round(round_index)
    alpha = np.bitwise_xor.reduce(
        np.stack([sketch._alpha[round_index] for sketch in node_sketches])
    )
    gamma = np.bitwise_xor.reduce(
        np.stack([sketch._gamma[round_index] for sketch in node_sketches])
    )
    base = round_index * first.num_columns
    return query_bucket_arrays(
        alpha.T,
        gamma.T,
        first.encoder.vector_length,
        first._checksum_seeds[base : base + first.num_columns],
    )
