"""The general-purpose l0-sampler baseline (after Cormode & Firmani).

This is the "standard l0" algorithm of Figure 3 in the paper: each
bucket stores three integers

* ``a`` -- the running sum of ``index * delta``,
* ``b`` -- the running sum of ``delta`` (the bucket's support size when
  every coordinate is 0/1),
* ``c`` -- the running sum of ``delta * r^index mod p`` for a random
  per-column base ``r`` and prime ``p``.

A bucket with a single surviving coordinate has ``a / b`` equal to that
coordinate, which the query verifies through the modular-exponentiation
checksum.  The checksum is exactly the expensive part: every update
performs ``O(log n)``-bit modular exponentiation per column, and once
the vector is longer than ``10^10`` coordinates the arithmetic no
longer fits in a 64-bit word (the paper's 128-bit cliff, visible in
Figure 4).  Python integers emulate that wide arithmetic directly,
which keeps the baseline faithful -- and appropriately slow.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, IncompatibleSketchError
from repro.hashing.carter_wegman import MERSENNE_PRIME_61
from repro.hashing.mixers import seeded_hash64, trailing_zeros64
from repro.hashing.prng import derive_seed
from repro.sketch.bucket import StandardBucket
from repro.sketch.sketch_base import L0Sampler, SampleResult
from repro.sketch.sizes import (
    WIDE_ARITHMETIC_THRESHOLD,
    cubesketch_num_columns,
    cubesketch_num_rows,
    standard_l0_size_bytes,
)

#: Mersenne prime 2^127 - 1, used once 64-bit arithmetic is insufficient.
MERSENNE_PRIME_127 = (1 << 127) - 1

_MEMBERSHIP_LABEL = 11
_BASE_LABEL = 12


class StandardL0Sketch(L0Sampler):
    """General-purpose l0-sampler over integer vectors.

    Parameters mirror :class:`repro.sketch.cubesketch.CubeSketch`; the
    additional ``force_wide_arithmetic`` flag lets benchmarks exercise
    the 128-bit code path on small vectors.
    """

    def __init__(
        self,
        vector_length: int,
        delta: float = 0.01,
        seed: int = 0,
        num_columns: Optional[int] = None,
        num_rows: Optional[int] = None,
        force_wide_arithmetic: bool = False,
    ) -> None:
        if vector_length < 1:
            raise ConfigurationError("vector_length must be at least 1")
        if not 0 < delta < 1:
            raise ConfigurationError("delta must be in (0, 1)")

        self.vector_length = int(vector_length)
        self.delta = float(delta)
        self.seed = int(seed)
        self.num_columns = int(
            num_columns if num_columns is not None else cubesketch_num_columns(delta)
        )
        self.num_rows = int(
            num_rows if num_rows is not None else cubesketch_num_rows(vector_length)
        )
        if self.num_columns < 1 or self.num_rows < 1:
            raise ConfigurationError("sketch must have at least one row and column")

        self.uses_wide_arithmetic = (
            force_wide_arithmetic or self.vector_length >= WIDE_ARITHMETIC_THRESHOLD
        )
        self.prime = MERSENNE_PRIME_127 if self.uses_wide_arithmetic else MERSENNE_PRIME_61

        self._membership_seeds = [
            derive_seed(self.seed, _MEMBERSHIP_LABEL, col) for col in range(self.num_columns)
        ]
        # Per-column base r for the checksum r^index mod p.
        self._bases = [
            (derive_seed(self.seed, _BASE_LABEL, col) % (self.prime - 2)) + 2
            for col in range(self.num_columns)
        ]
        # Buckets hold arbitrarily large Python integers (a can reach
        # n * number_of_updates), so plain nested lists are the honest
        # representation of the baseline's storage.
        self._a: List[List[int]] = [[0] * self.num_columns for _ in range(self.num_rows)]
        self._b: List[List[int]] = [[0] * self.num_columns for _ in range(self.num_rows)]
        self._c: List[List[int]] = [[0] * self.num_columns for _ in range(self.num_rows)]
        self._updates_applied = 0

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update(self, index: int, delta: int = 1) -> None:
        """Add ``delta`` to coordinate ``index`` of the sketched vector."""
        if delta == 0:
            raise ValueError("delta must be non-zero")
        if not 0 <= index < self.vector_length:
            raise ValueError(
                f"index {index} outside sketched vector of length {self.vector_length}"
            )
        prime = self.prime
        for col in range(self.num_columns):
            membership = seeded_hash64(index, self._membership_seeds[col])
            depth = min(trailing_zeros64(membership) + 1, self.num_rows)
            checksum_term = pow(self._bases[col], index, prime)
            for row in range(depth):
                self._a[row][col] += index * delta
                self._b[row][col] += delta
                self._c[row][col] = (self._c[row][col] + delta * checksum_term) % prime
        self._updates_applied += 1

    def update_batch(self, indices: Iterable[int]) -> None:
        """Apply a batch of +1 updates (no vectorised fast path exists).

        The baseline's cost is dominated by per-update modular
        exponentiation, so batching cannot amortise it -- which is
        exactly the behaviour the paper measures.
        """
        if isinstance(indices, np.ndarray):
            indices = indices.tolist()
        for index in indices:
            self.update(int(index), 1)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self) -> SampleResult:
        """Recover a nonzero coordinate, scanning deepest buckets first."""
        any_nonempty = False
        prime = self.prime
        for col in range(self.num_columns):
            base = self._bases[col]
            for row in range(self.num_rows - 1, -1, -1):
                a = self._a[row][col]
                b = self._b[row][col]
                c = self._c[row][col]
                if a == 0 and b == 0 and c == 0:
                    continue
                any_nonempty = True
                if b == 0 or a % b != 0:
                    continue
                value = a // b
                if not 0 <= value < self.vector_length:
                    continue
                if c % prime == (b * pow(base, value, prime)) % prime:
                    return SampleResult.good(value)
        if not any_nonempty:
            return SampleResult.zero()
        return SampleResult.fail()

    def is_empty(self) -> bool:
        """True when every bucket is zero."""
        return all(
            self._a[r][c] == 0 and self._b[r][c] == 0 and self._c[r][c] == 0
            for r in range(self.num_rows)
            for c in range(self.num_columns)
        )

    def bucket(self, row: int, col: int) -> StandardBucket:
        """The logical contents of one bucket (testing / debugging)."""
        return StandardBucket(self._a[row][col], self._b[row][col], self._c[row][col])

    # ------------------------------------------------------------------
    # linearity
    # ------------------------------------------------------------------
    def merge(self, other: "L0Sampler") -> None:
        if not self.is_compatible(other):
            raise IncompatibleSketchError(
                "cannot merge StandardL0Sketches with different shapes or seeds"
            )
        assert isinstance(other, StandardL0Sketch)
        prime = self.prime
        for row in range(self.num_rows):
            for col in range(self.num_columns):
                self._a[row][col] += other._a[row][col]
                self._b[row][col] += other._b[row][col]
                self._c[row][col] = (self._c[row][col] + other._c[row][col]) % prime
        self._updates_applied += other._updates_applied

    def is_compatible(self, other: "L0Sampler") -> bool:
        return (
            isinstance(other, StandardL0Sketch)
            and other.vector_length == self.vector_length
            and other.num_rows == self.num_rows
            and other.num_columns == self.num_columns
            and other.seed == self.seed
            and other.prime == self.prime
        )

    def copy(self) -> "StandardL0Sketch":
        clone = StandardL0Sketch(
            self.vector_length,
            delta=self.delta,
            seed=self.seed,
            num_columns=self.num_columns,
            num_rows=self.num_rows,
            force_wide_arithmetic=self.uses_wide_arithmetic,
        )
        clone._a = [row[:] for row in self._a]
        clone._b = [row[:] for row in self._b]
        clone._c = [row[:] for row in self._c]
        clone._updates_applied = self._updates_applied
        return clone

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        return self.num_rows * self.num_columns

    @property
    def updates_applied(self) -> int:
        return self._updates_applied

    def size_bytes(self) -> int:
        """Size under the paper's three-words-per-bucket accounting."""
        return standard_l0_size_bytes(self.vector_length, self.delta)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StandardL0Sketch):
            return NotImplemented
        return (
            self.is_compatible(other)
            and self._a == other._a
            and self._b == other._b
            and self._c == other._c
        )

    def __repr__(self) -> str:
        return (
            f"StandardL0Sketch(vector_length={self.vector_length}, delta={self.delta}, "
            f"rows={self.num_rows}, cols={self.num_columns}, seed={self.seed}, "
            f"wide={self.uses_wide_arithmetic})"
        )
