"""Carter--Wegman 2-wise independent hash family modulo ``2^61 - 1``.

The analysis of both l0-samplers (Lemma 1 / Lemma 2 in the paper, after
Cormode & Firmani) assumes hash functions drawn from a 2-wise
independent family.  The classical construction is

    h(x) = ((a * x + b) mod p) mod m,     a in [1, p), b in [0, p)

with ``p`` prime and larger than the key universe.  We use the Mersenne
prime ``p = 2^61 - 1`` which admits fast modular reduction and covers
every vector index that arises for graphs with up to ~1.5 billion nodes;
larger universes transparently fall back to Python integers.

The general-purpose l0-sampler baseline uses this family directly, and
the test-suite uses it to check pairwise-independence properties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

MERSENNE_PRIME_61 = (1 << 61) - 1


def _mod_mersenne61(value: int) -> int:
    """Reduce a non-negative integer modulo ``2^61 - 1`` without division."""
    p = MERSENNE_PRIME_61
    while value > p:
        value = (value & p) + (value >> 61)
    if value == p:
        return 0
    return value


@dataclass(frozen=True)
class CarterWegmanHash:
    """A single member ``h(x) = ((a x + b) mod p) mod m`` of the CW family.

    Parameters
    ----------
    a, b:
        Coefficients; ``a`` must be in ``[1, p)`` and ``b`` in ``[0, p)``.
    output_range:
        ``m``, the size of the output range.  ``0`` means "no final
        reduction": the raw value modulo ``p`` is returned.
    """

    a: int
    b: int
    output_range: int = 0

    def __post_init__(self) -> None:
        p = MERSENNE_PRIME_61
        if not 1 <= self.a < p:
            raise ValueError(f"coefficient a={self.a} outside [1, p)")
        if not 0 <= self.b < p:
            raise ValueError(f"coefficient b={self.b} outside [0, p)")
        if self.output_range < 0:
            raise ValueError("output_range must be non-negative")

    @classmethod
    def random(cls, rng: np.random.Generator, output_range: int = 0) -> "CarterWegmanHash":
        """Draw a uniformly random member of the family."""
        p = MERSENNE_PRIME_61
        a = int(rng.integers(1, p))
        b = int(rng.integers(0, p))
        return cls(a=a, b=b, output_range=output_range)

    def __call__(self, key: int) -> int:
        if key < 0:
            raise ValueError("keys must be non-negative")
        value = _mod_mersenne61(self.a * key + self.b)
        if self.output_range:
            return value % self.output_range
        return value

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Hash an array of keys.

        Keys must fit in 64 bits.  The multiplication is carried out with
        Python integers via ``object`` dtype to avoid overflow; this path
        exists for completeness and testing -- the performance-critical
        sketch code uses :mod:`repro.hashing.mixers` instead.
        """
        out = np.empty(len(keys), dtype=np.uint64)
        for i, key in enumerate(keys):
            out[i] = self(int(key))
        return out
