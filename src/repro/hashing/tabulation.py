"""Simple tabulation hashing.

Tabulation hashing splits a 64-bit key into 8 bytes and XORs together a
random table entry per byte.  It is 3-wise independent, very fast to
evaluate (a handful of table lookups), and vectorises well with numpy
fancy indexing, which makes it a good alternative hash family for the
sketch structures when stronger-than-mixer guarantees are wanted.
"""

from __future__ import annotations

import numpy as np

_NUM_CHUNKS = 8
_CHUNK_BITS = 8
_TABLE_SIZE = 1 << _CHUNK_BITS


class TabulationHash:
    """A randomly initialised simple tabulation hash for 64-bit keys.

    Parameters
    ----------
    seed:
        Seed for the table contents; two instances with the same seed
        compute the same function.
    """

    def __init__(self, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self._tables = rng.integers(
            0, 1 << 64, size=(_NUM_CHUNKS, _TABLE_SIZE), dtype=np.uint64
        )
        self._seed = seed

    @property
    def seed(self) -> int:
        return self._seed

    def __call__(self, key: int) -> int:
        if key < 0:
            raise ValueError("keys must be non-negative")
        key &= (1 << 64) - 1
        result = 0
        for chunk in range(_NUM_CHUNKS):
            byte = (key >> (chunk * _CHUNK_BITS)) & 0xFF
            result ^= int(self._tables[chunk, byte])
        return result

    def hash_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised evaluation over a ``uint64`` array of keys."""
        k = keys.astype(np.uint64, copy=False)
        result = np.zeros(k.shape, dtype=np.uint64)
        for chunk in range(_NUM_CHUNKS):
            bytes_ = (k >> np.uint64(chunk * _CHUNK_BITS)) & np.uint64(0xFF)
            result ^= self._tables[chunk, bytes_.astype(np.intp)]
        return result

    def __repr__(self) -> str:
        return f"TabulationHash(seed={self._seed})"
