"""A specification-faithful pure-Python implementation of xxHash64.

The GraphZeppelin system uses xxHash (Collet, 2016) to compute bucket
membership and bucket checksums.  This module implements the 64-bit
variant exactly as specified by the reference implementation, so hash
values match the C library for the same input bytes and seed.

The scalar implementation is used for single values (for example when
hashing string node identifiers to integer ids); the batched sketch
update path uses the vectorised mixers in :mod:`repro.hashing.mixers`
instead, which are much faster in numpy.
"""

from __future__ import annotations

MASK64 = 0xFFFFFFFFFFFFFFFF

PRIME64_1 = 0x9E3779B185EBCA87
PRIME64_2 = 0xC2B2AE3D27D4EB4F
PRIME64_3 = 0x165667B19E3779F9
PRIME64_4 = 0x85EBCA77C2B2AE63
PRIME64_5 = 0x27D4EB2F165667C5


def _rotl64(value: int, amount: int) -> int:
    """Rotate a 64-bit integer left by ``amount`` bits."""
    value &= MASK64
    return ((value << amount) | (value >> (64 - amount))) & MASK64


def _round(acc: int, lane: int) -> int:
    acc = (acc + lane * PRIME64_2) & MASK64
    acc = _rotl64(acc, 31)
    return (acc * PRIME64_1) & MASK64


def _merge_round(acc: int, val: int) -> int:
    val = _round(0, val)
    acc = (acc ^ val) & MASK64
    return (acc * PRIME64_1 + PRIME64_4) & MASK64


def _avalanche(value: int) -> int:
    value &= MASK64
    value ^= value >> 33
    value = (value * PRIME64_2) & MASK64
    value ^= value >> 29
    value = (value * PRIME64_3) & MASK64
    value ^= value >> 32
    return value


def xxhash64(data: bytes, seed: int = 0) -> int:
    """Compute the xxHash64 digest of ``data`` with the given ``seed``.

    Matches the reference C implementation bit-for-bit.

    >>> hex(xxhash64(b""))
    '0xef46db3751d8e999'
    >>> hex(xxhash64(b"xxhash", seed=20141025))
    '0xb559b98d844e0635'
    """
    seed &= MASK64
    length = len(data)
    offset = 0

    if length >= 32:
        v1 = (seed + PRIME64_1 + PRIME64_2) & MASK64
        v2 = (seed + PRIME64_2) & MASK64
        v3 = seed
        v4 = (seed - PRIME64_1) & MASK64
        limit = length - 32
        while offset <= limit:
            v1 = _round(v1, int.from_bytes(data[offset : offset + 8], "little"))
            v2 = _round(v2, int.from_bytes(data[offset + 8 : offset + 16], "little"))
            v3 = _round(v3, int.from_bytes(data[offset + 16 : offset + 24], "little"))
            v4 = _round(v4, int.from_bytes(data[offset + 24 : offset + 32], "little"))
            offset += 32
        acc = (
            _rotl64(v1, 1) + _rotl64(v2, 7) + _rotl64(v3, 12) + _rotl64(v4, 18)
        ) & MASK64
        acc = _merge_round(acc, v1)
        acc = _merge_round(acc, v2)
        acc = _merge_round(acc, v3)
        acc = _merge_round(acc, v4)
    else:
        acc = (seed + PRIME64_5) & MASK64

    acc = (acc + length) & MASK64

    while offset + 8 <= length:
        lane = int.from_bytes(data[offset : offset + 8], "little")
        acc ^= _round(0, lane)
        acc = (_rotl64(acc, 27) * PRIME64_1 + PRIME64_4) & MASK64
        offset += 8

    if offset + 4 <= length:
        lane = int.from_bytes(data[offset : offset + 4], "little")
        acc ^= (lane * PRIME64_1) & MASK64
        acc = (_rotl64(acc, 23) * PRIME64_2 + PRIME64_3) & MASK64
        offset += 4

    while offset < length:
        acc ^= (data[offset] * PRIME64_5) & MASK64
        acc = (_rotl64(acc, 11) * PRIME64_1) & MASK64
        offset += 1

    return _avalanche(acc)


def xxhash64_int(value: int, seed: int = 0) -> int:
    """Hash a non-negative integer by hashing its 8-byte little-endian form.

    Integers that do not fit in 64 bits are hashed over their minimal
    byte representation so arbitrarily large vector indices (for example
    edge slots of a graph with billions of nodes) remain hashable.
    """
    if value < 0:
        raise ValueError("xxhash64_int expects a non-negative integer")
    if value <= MASK64:
        return xxhash64(value.to_bytes(8, "little"), seed)
    nbytes = (value.bit_length() + 7) // 8
    return xxhash64(value.to_bytes(nbytes, "little"), seed)
