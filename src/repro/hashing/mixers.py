"""Vectorised 64-bit mixing hashes for the batched sketch-update path.

The CubeSketch update loop hashes every vector index once per column:
with millions of stream updates, scalar Python hashing would dominate
runtime.  These functions implement well-known 64-bit finalisers
(splitmix64 and the xxHash64 avalanche) both for scalars and for numpy
``uint64`` arrays, so a whole batch of updates is hashed with a handful
of vectorised instructions.

A seeded hash is obtained by mixing the seed into the key before the
finaliser; distinct seeds produce effectively independent functions,
which stands in for the 2-wise-independent family the analysis assumes
(the same substitution the paper's implementation makes by using
xxHash).
"""

from __future__ import annotations

import numpy as np

MASK64 = 0xFFFFFFFFFFFFFFFF

_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_SPLITMIX_MUL1 = 0xBF58476D1CE4E5B9
_SPLITMIX_MUL2 = 0x94D049BB133111EB

_XX_PRIME_2 = 0xC2B2AE3D27D4EB4F
_XX_PRIME_3 = 0x165667B19E3779F9


def splitmix64(value: int) -> int:
    """The splitmix64 finaliser for a scalar 64-bit integer."""
    value = (value + _SPLITMIX_GAMMA) & MASK64
    value ^= value >> 30
    value = (value * _SPLITMIX_MUL1) & MASK64
    value ^= value >> 27
    value = (value * _SPLITMIX_MUL2) & MASK64
    value ^= value >> 31
    return value


def xxhash_avalanche(value: int) -> int:
    """The xxHash64 avalanche finaliser for a scalar 64-bit integer."""
    value &= MASK64
    value ^= value >> 33
    value = (value * _XX_PRIME_2) & MASK64
    value ^= value >> 29
    value = (value * _XX_PRIME_3) & MASK64
    value ^= value >> 32
    return value


def seeded_hash64(value: int, seed: int) -> int:
    """Hash a scalar integer under a given seed.

    The seed is itself diffused through splitmix64 before being combined
    with the key so that nearby seeds (0, 1, 2, ...) give unrelated
    functions.
    """
    mixed_seed = splitmix64(seed & MASK64)
    return xxhash_avalanche(splitmix64((value ^ mixed_seed) & MASK64))


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 over a ``uint64`` array (returns a new array)."""
    v = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        v += np.uint64(_SPLITMIX_GAMMA)
        v ^= v >> np.uint64(30)
        v *= np.uint64(_SPLITMIX_MUL1)
        v ^= v >> np.uint64(27)
        v *= np.uint64(_SPLITMIX_MUL2)
        v ^= v >> np.uint64(31)
    return v


def splitmix64_inplace(values: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 mutating ``values`` in place (any shape, uint64).

    The storage-digest word stage: splitmix64 is a full-avalanche
    64-bit finaliser on its own, so hashing payload words with just its
    five passes (instead of the ten of :func:`finalise_hash64_inplace`)
    halves the per-byte checksum cost without weakening bit-flip
    detection -- the digest's final scalar still goes through the
    xxHash avalanche.
    """
    v = values
    with np.errstate(over="ignore"):
        v += np.uint64(_SPLITMIX_GAMMA)
        v ^= v >> np.uint64(30)
        v *= np.uint64(_SPLITMIX_MUL1)
        v ^= v >> np.uint64(27)
        v *= np.uint64(_SPLITMIX_MUL2)
        v ^= v >> np.uint64(31)
    return v


def xxhash_avalanche_array(values: np.ndarray) -> np.ndarray:
    """Vectorised xxHash64 avalanche over a ``uint64`` array."""
    v = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        v ^= v >> np.uint64(33)
        v *= np.uint64(_XX_PRIME_2)
        v ^= v >> np.uint64(29)
        v *= np.uint64(_XX_PRIME_3)
        v ^= v >> np.uint64(32)
    return v


def seeded_hash64_array(values: np.ndarray, seed: int) -> np.ndarray:
    """Vectorised seeded hash matching :func:`seeded_hash64` elementwise."""
    mixed_seed = np.uint64(splitmix64(seed & MASK64))
    v = values.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        v ^= mixed_seed
    return xxhash_avalanche_array(splitmix64_array(v))


def mix_seed_array(seeds: np.ndarray) -> np.ndarray:
    """Pre-diffuse an array of seeds the way :func:`seeded_hash64` does.

    ``seeded_hash64(value, seed)`` first runs the seed through splitmix64
    before XOR-ing it into the key.  Hashing a batch of keys against many
    seeds repeats that per-seed diffusion every call; callers on the hot
    path (the flat node sketch) premix their whole seed matrix once at
    construction and pass the result to :func:`seeded_hash64_matrix`.
    """
    return splitmix64_array(np.asarray(seeds).astype(np.uint64, copy=False))


def _finalise_inplace(v: np.ndarray) -> np.ndarray:
    """splitmix64 followed by the xxHash avalanche, mutating ``v`` in place.

    The broadcasted ``(K, S)`` hash matrices are large enough that the
    temporaries of the copying array variants dominate; the in-place
    pipeline touches the matrix once per operation and allocates nothing.
    """
    with np.errstate(over="ignore"):
        v += np.uint64(_SPLITMIX_GAMMA)
        v ^= v >> np.uint64(30)
        v *= np.uint64(_SPLITMIX_MUL1)
        v ^= v >> np.uint64(27)
        v *= np.uint64(_SPLITMIX_MUL2)
        v ^= v >> np.uint64(31)
        v ^= v >> np.uint64(33)
        v *= np.uint64(_XX_PRIME_2)
        v ^= v >> np.uint64(29)
        v *= np.uint64(_XX_PRIME_3)
        v ^= v >> np.uint64(32)
    return v


def finalise_hash64_inplace(keys: np.ndarray) -> np.ndarray:
    """Finalise pre-mixed hash keys in place (any shape, uint64).

    ``keys`` must be ``value ^ mixed_seed`` terms (seeds diffused with
    :func:`mix_seed_array`); afterwards each entry equals
    ``seeded_hash64(value, seed)`` bit-for-bit.  The batched bucket
    decoder uses this to checksum-verify every component's buckets with
    one broadcasted pipeline and no temporaries beyond ``keys`` itself.
    """
    return _finalise_inplace(keys)


def seeded_hash64_matrix(
    values: np.ndarray, mixed_seeds: np.ndarray, out: np.ndarray = None
) -> np.ndarray:
    """Hash ``K`` values under ``S`` seeds in one shot, as a ``(K, S)`` matrix.

    ``mixed_seeds`` must already be diffused with :func:`mix_seed_array`;
    entry ``[k, s]`` of the result then equals
    ``seeded_hash64(values[k], seeds[s])`` bit-for-bit.  This is the
    kernel of the columnar sketch engine: one batch of edge-slot indices
    is hashed against every (round, column) hash function with a single
    broadcasted expression instead of a Python loop per column.
    ``out``, when given, must be a ``(K, S)`` uint64 buffer and receives
    the result in place of a fresh allocation -- the fold kernel's
    scratch arena threads its reusable hash buffers through here.
    """
    v = np.asarray(values).astype(np.uint64, copy=False)
    m = np.asarray(mixed_seeds).astype(np.uint64, copy=False)
    if v.ndim != 1 or m.ndim != 1:
        raise ValueError("seeded_hash64_matrix expects 1-D values and 1-D seeds")
    with np.errstate(over="ignore"):
        keys = np.bitwise_xor(v[:, None], m[None, :], out=out)
    return _finalise_inplace(keys)


def hash_to_depth(hashes: np.ndarray, max_depth: int) -> np.ndarray:
    """Map hash values to geometric bucket depths.

    A vector index belongs to bucket row ``r`` when the low ``r`` bits of
    its membership hash are all zero (``hash == 0 (mod 2^r)``), matching
    line 3 of the paper's update pseudocode.  The returned *depth* is the
    number of rows the index belongs to, i.e. ``1 + (number of trailing
    zero bits)``, clamped to ``max_depth``.  Row 0 receives every index.

    Parameters
    ----------
    hashes:
        ``uint64`` array of membership hash values.
    max_depth:
        Total number of bucket rows (``ceil(log2(n)) + 1``).
    """
    if max_depth < 1:
        raise ValueError("max_depth must be at least 1")
    h = hashes.astype(np.uint64, copy=False)
    # depth = 1 + (trailing zero bits), clamped to max_depth.  The lowest
    # set bit ``h & -h`` is a power of two, which float64 represents
    # exactly up to 2^63, so log2 recovers the trailing-zero count with
    # three vectorised passes instead of a Python loop over rows.
    with np.errstate(over="ignore"):
        lowest_bit = h & (np.uint64(0) - h)
    with np.errstate(divide="ignore"):
        trailing = np.log2(lowest_bit.astype(np.float64))
    # h == 0 gives log2(0) = -inf; clamp into [0, max_depth - 1] before the
    # integer cast and patch those entries to the full depth afterwards.
    clamped = np.clip(trailing, 0.0, float(max_depth - 1)).astype(np.int64)
    depths = np.where(lowest_bit == 0, np.int64(max_depth), clamped + 1)
    return depths


def trailing_zeros64(value: int) -> int:
    """Number of trailing zero bits of a 64-bit value (64 for zero)."""
    value &= MASK64
    if value == 0:
        return 64
    return (value & -value).bit_length() - 1
