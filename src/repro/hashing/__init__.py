"""Hashing substrate used by the sketching data structures.

GraphZeppelin's C++ implementation uses xxHash for bucket membership and
checksums.  This package provides:

* :mod:`repro.hashing.xxhash64` -- a specification-faithful scalar
  xxHash64 for bytes and integers,
* :mod:`repro.hashing.mixers` -- vectorised 64-bit mixing hashes
  (splitmix64 / xxHash avalanche) over numpy arrays, used by the hot
  batched sketch-update path,
* :mod:`repro.hashing.carter_wegman` -- a classical 2-wise-independent
  hash family modulo the Mersenne prime ``2^61 - 1``, used by the
  general-purpose l0-sampler baseline and by tests of independence,
* :mod:`repro.hashing.tabulation` -- tabulation hashing (3-wise
  independent), an alternative vectorisable family,
* :mod:`repro.hashing.prng` -- deterministic seed derivation so an
  entire GraphZeppelin instance is reproducible from one integer seed.
"""

from repro.hashing.carter_wegman import CarterWegmanHash, MERSENNE_PRIME_61
from repro.hashing.mixers import (
    hash_to_depth,
    mix_seed_array,
    seeded_hash64,
    seeded_hash64_array,
    seeded_hash64_matrix,
    splitmix64,
    splitmix64_array,
    xxhash_avalanche,
    xxhash_avalanche_array,
)
from repro.hashing.prng import SeedSequenceFactory, derive_seed
from repro.hashing.tabulation import TabulationHash
from repro.hashing.xxhash64 import xxhash64, xxhash64_int

__all__ = [
    "CarterWegmanHash",
    "MERSENNE_PRIME_61",
    "SeedSequenceFactory",
    "TabulationHash",
    "derive_seed",
    "hash_to_depth",
    "mix_seed_array",
    "seeded_hash64",
    "seeded_hash64_array",
    "seeded_hash64_matrix",
    "splitmix64",
    "splitmix64_array",
    "xxhash_avalanche",
    "xxhash_avalanche_array",
    "xxhash64",
    "xxhash64_int",
]
