"""Deterministic seed derivation.

A GraphZeppelin instance contains thousands of hash functions: two per
CubeSketch column, across ``log V`` sketches per node sketch, plus the
hash functions of the buffering layer and the baselines.  To make whole
runs reproducible from a single integer seed, every component derives
its seeds through :func:`derive_seed`, which mixes a root seed with a
structured label ("round 3, column 5, membership hash") so that no two
components share a hash function by accident.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.hashing.mixers import MASK64, splitmix64


def derive_seed(root_seed: int, *components: int) -> int:
    """Derive a 64-bit child seed from a root seed and integer labels.

    The derivation is a chained splitmix64 over the root and each label,
    so ``derive_seed(s, 1, 2) != derive_seed(s, 2, 1)`` and collisions
    between differently-labelled children are as unlikely as 64-bit hash
    collisions.
    """
    state = splitmix64(root_seed & MASK64)
    for component in components:
        state = splitmix64((state ^ (component & MASK64)) & MASK64)
    return state


class SeedSequenceFactory:
    """Hands out independent numpy generators derived from one root seed."""

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = root_seed & MASK64
        self._counter = 0

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def seed_for(self, *labels: int) -> int:
        """A deterministic 64-bit seed for the given label tuple."""
        return derive_seed(self._root_seed, *labels)

    def generator_for(self, *labels: int) -> np.random.Generator:
        """A numpy generator seeded deterministically from the labels."""
        return np.random.default_rng(self.seed_for(*labels))

    def next_generator(self) -> np.random.Generator:
        """A fresh generator from an internal counter (order-dependent)."""
        self._counter += 1
        return self.generator_for(0xC0FFEE, self._counter)

    def spawn(self, label: int) -> "SeedSequenceFactory":
        """A child factory whose seeds are independent of the parent's."""
        return SeedSequenceFactory(self.seed_for(0x5EED, label))

    @staticmethod
    def mix_labels(labels: Iterable[int]) -> int:
        """Collapse an iterable of labels into one 64-bit label."""
        state = 0
        for label in labels:
            state = splitmix64((state ^ (label & MASK64)) & MASK64)
        return state
