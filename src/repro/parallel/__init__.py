"""Parallel stream ingestion: Graph Workers and the thread-scaling model.

GraphZeppelin's ingestion parallelises at two levels (Section 5.1):
*batch-level* parallelism (each batch is bound for a single node
sketch, so different batches can be applied concurrently) and
*sketch-level* parallelism (the ``log V`` CubeSketches inside one node
sketch are independent).

Python threads cannot exhibit the paper's 26x speedup because of the
global interpreter lock, so this package provides both:

* :class:`repro.parallel.graph_workers.GraphWorkerPool` -- a real
  thread pool applying batches concurrently (numpy kernels release the
  GIL for part of the work, so a modest real speedup is measurable),
* :class:`repro.parallel.cost_model.ThreadScalingModel` -- a calibrated
  work-span/contention model that reproduces the *shape* of Figure 14
  (near-linear scaling that flattens as the memory bandwidth and
  work-queue contention limits are approached).
"""

from repro.parallel.cost_model import ThreadScalingModel
from repro.parallel.graph_workers import GraphWorkerPool, ParallelIngestor

__all__ = ["GraphWorkerPool", "ParallelIngestor", "ThreadScalingModel"]
