"""Parallel stream ingestion: sharded columnar workers over the tensor pool.

**Shard-ownership model.**  The node space ``[0, V)`` is partitioned
into ``num_shards`` contiguous ranges; each shard owns the slab of
:class:`~repro.sketch.tensor_pool.NodeTensorPool` tensors holding its
nodes' buckets, across every Boruvka round, and is the only writer that
ever touches them.  A batch of edge updates is mirrored (one copy per
endpoint), split into per-shard groups with one vectorised
``searchsorted`` + radix-argsort pass, and each group is folded through
the shared columnar kernel straight into its shard's slab -- no
per-node locks, no ``Batch`` objects, no shared mutable state between
shards.  XOR-folds commute, so the result is bit-identical to serial
ingest under the same seed regardless of worker interleaving.

Execution backends (``GraphZeppelinConfig.parallel_backend``):

* ``"threads"`` (:class:`repro.parallel.graph_workers.ShardedIngestor`)
  -- numpy releases the GIL inside the hash/sort kernels, so a thread
  pool over disjoint slabs scales on real cores;
* ``"processes"`` -- the pool tensors move to
  ``multiprocessing.shared_memory``; worker processes attach by segment
  name and fold in place;
* ``"legacy"`` (:class:`repro.parallel.graph_workers.ParallelIngestor`)
  -- the seed design (per-node batches through per-node locks), kept as
  the reference backend and for buffered/out-of-core engines.

Sharding also pays off single-threaded: shard node ranges are sized so
the fold kernel's int16 radix sort applies to mixed-node groups
(:func:`~repro.sketch.flat_node_sketch.max_radix_dst_span`), which is
~2-3x faster than the flat int64 argsort the unsharded columnar path
needs.  :class:`repro.parallel.cost_model.ShardedIngestModel` prices
the pipeline (partition + per-shard folds + barrier);
:class:`repro.parallel.cost_model.ThreadScalingModel` remains the
calibrated Figure-14 curve for the legacy pool.
"""

from repro.parallel.cost_model import ShardedIngestModel, ThreadScalingModel
from repro.parallel.graph_workers import (
    GraphWorkerPool,
    ParallelIngestor,
    ShardedIngestor,
    partition_mirrored_updates,
)

__all__ = [
    "GraphWorkerPool",
    "ParallelIngestor",
    "ShardedIngestor",
    "ShardedIngestModel",
    "ThreadScalingModel",
    "partition_mirrored_updates",
]
