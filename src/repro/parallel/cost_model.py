"""Analytic scaling models for parallel stream ingestion.

Two models live here:

* :class:`ShardedIngestModel` -- the sharded columnar pipeline
  (:class:`~repro.parallel.graph_workers.ShardedIngestor`): a serial
  partition step, per-shard folds that divide across workers up to the
  available cores, and a per-batch barrier.  Calibrated against the
  measured rows of ``BENCH_parallel.json``.
* :class:`ThreadScalingModel` -- the legacy Figure-14 model.  The paper
  shows ingestion rising ~26x from 1 to 46 threads on a 24-core
  (48-thread) machine; a pure-Python reproduction cannot demonstrate
  that directly, so the Figure-14 benchmark combines a small real
  thread-pool measurement with this calibrated Amdahl + contention +
  hyper-threading model.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List


def usable_cores() -> int:
    """CPU cores actually usable by this process.

    Respects CPU affinity masks (taskset, cgroup cpusets in containers)
    where the platform exposes them -- ``os.cpu_count()`` alone reports
    the host's cores and would let a "clamp to cores" guard oversubscribe
    a pinned process.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ShardedIngestModel:
    """Predicted cost of the sharded columnar ingest pipeline.

    One batch of ``N`` edge updates costs

    ``N / fold_rate * partition_fraction``                (serial: canonicalise
    + mirror + searchsorted/argsort partition, one producer thread)
    ``+ N / fold_rate * (1 - partition_fraction) / W``    (per-shard folds,
    spread over ``W = min(num_workers, available_cores)`` effective workers)
    ``+ barrier_seconds``                                 (the end-of-batch join).

    Attributes
    ----------
    fold_rate:
        Measured updates/second of the whole pipeline with one worker.
    partition_fraction:
        Fraction of single-worker time spent in the serial partition
        step (measured ~5% at benchmark scale -- the partition is one
        radix argsort of the mirrored destination column, far cheaper
        than the hash + fold it feeds).
    barrier_seconds:
        Fixed per-batch cost of dispatching the shard groups and
        waiting on the last worker.
    available_cores:
        Workers beyond this count add no parallel speedup (they time-
        slice the same cores).  Defaults to the process's usable core
        count (affinity-aware), so the model predicts flat scaling on a
        single-core host -- which is exactly what the measurement shows
        there.
    batch_size:
        Edge updates per batch, used to amortise the barrier.
    """

    fold_rate: float
    partition_fraction: float = 0.05
    barrier_seconds: float = 1e-3
    available_cores: int = usable_cores()
    batch_size: int = 1 << 14

    def effective_workers(self, num_workers: int) -> int:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        return min(num_workers, max(self.available_cores, 1))

    def batch_seconds(self, num_workers: int, batch_size: int | None = None) -> float:
        """Predicted seconds to ingest one batch with ``num_workers``."""
        size = self.batch_size if batch_size is None else int(batch_size)
        base = size / self.fold_rate
        workers = self.effective_workers(num_workers)
        return (
            base * self.partition_fraction
            + base * (1.0 - self.partition_fraction) / workers
            + self.barrier_seconds
        )

    def ingestion_rate(self, num_workers: int, batch_size: int | None = None) -> float:
        """Predicted updates/second for ``num_workers`` shard workers."""
        size = self.batch_size if batch_size is None else int(batch_size)
        return size / self.batch_seconds(num_workers, size)

    def speedup(self, num_workers: int) -> float:
        """Predicted speedup over one shard worker."""
        return self.batch_seconds(1) / self.batch_seconds(num_workers)

    def curve(self, worker_counts: List[int]) -> List[dict]:
        """Model predictions for a list of worker counts (bench output rows)."""
        return [
            {
                "workers": count,
                "speedup": self.speedup(count),
                "ingestion_rate": self.ingestion_rate(count),
            }
            for count in worker_counts
        ]

    @classmethod
    def calibrated(
        cls,
        single_worker_rate: float,
        batch_size: int,
        available_cores: int | None = None,
    ) -> "ShardedIngestModel":
        """A model whose one-worker rate matches a measured rate.

        Solves ``ingestion_rate(1) == single_worker_rate`` for
        ``fold_rate`` given the default partition/barrier constants, so
        predicted multi-worker rates sit on the measured curve's scale.
        """
        size = int(batch_size)
        base = cls(fold_rate=1.0, batch_size=size)
        seconds_wanted = size / float(single_worker_rate)
        fold_rate = size / max(seconds_wanted - base.barrier_seconds, 1e-9)
        return cls(
            fold_rate=fold_rate,
            batch_size=size,
            available_cores=(
                available_cores if available_cores is not None else usable_cores()
            ),
        )


@dataclass(frozen=True)
class ThreadScalingModel:
    """Predicts ingestion rate as a function of the worker count.

    Attributes
    ----------
    single_thread_rate:
        Measured updates/second with one Graph Worker.
    serial_fraction:
        Fraction of per-update work that cannot be parallelised.
    contention_per_worker:
        Incremental slowdown per additional worker from queue and cache
        contention.
    physical_cores:
        Workers beyond this count contribute at ``hyperthread_yield``
        of a physical core.
    hyperthread_yield:
        Relative throughput of a hyper-thread (0..1).
    """

    single_thread_rate: float
    serial_fraction: float = 0.015
    contention_per_worker: float = 0.004
    physical_cores: int = 24
    hyperthread_yield: float = 0.35

    def effective_workers(self, num_workers: int) -> float:
        """Workers weighted by physical-core vs hyper-thread contribution."""
        if num_workers <= self.physical_cores:
            return float(num_workers)
        extra = num_workers - self.physical_cores
        return self.physical_cores + extra * self.hyperthread_yield

    def speedup(self, num_workers: int) -> float:
        """Predicted speedup over a single worker."""
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        workers = self.effective_workers(num_workers)
        amdahl = 1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / workers)
        contention = 1.0 + self.contention_per_worker * (num_workers - 1)
        return amdahl / contention

    def ingestion_rate(self, num_workers: int) -> float:
        """Predicted updates/second for ``num_workers`` Graph Workers."""
        return self.single_thread_rate * self.speedup(num_workers)

    def curve(self, worker_counts: List[int]) -> List[dict]:
        """Model predictions for a list of worker counts (bench output rows)."""
        return [
            {
                "threads": count,
                "speedup": self.speedup(count),
                "ingestion_rate": self.ingestion_rate(count),
            }
            for count in worker_counts
        ]

    @classmethod
    def paper_like(cls, single_thread_rate: float) -> "ThreadScalingModel":
        """Constants calibrated so 46 threads land near the paper's ~26x."""
        return cls(
            single_thread_rate=single_thread_rate,
            serial_fraction=0.012,
            contention_per_worker=0.0035,
            physical_cores=24,
            hyperthread_yield=0.5,
        )
