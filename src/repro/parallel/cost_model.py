"""Analytic thread-scaling model for stream ingestion.

Figure 14 of the paper shows GraphZeppelin's ingestion rate rising
~26x as the worker count grows from 1 to 46 threads on a 24-core
(48-thread) machine.  A pure-Python reproduction cannot demonstrate
that directly (the interpreter lock serialises most of the work), so
the benchmark for that figure combines a small real thread-pool
measurement with this calibrated analytic model, which captures the
three effects that shape the curve:

* a serial fraction (the stream parser and buffer inserts are one
  thread -- Amdahl's law),
* a contention/queueing penalty that grows with the worker count
  (work-queue locking and cache-line sharing),
* a hyper-threading discount once the worker count exceeds the number
  of physical cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class ThreadScalingModel:
    """Predicts ingestion rate as a function of the worker count.

    Attributes
    ----------
    single_thread_rate:
        Measured updates/second with one Graph Worker.
    serial_fraction:
        Fraction of per-update work that cannot be parallelised.
    contention_per_worker:
        Incremental slowdown per additional worker from queue and cache
        contention.
    physical_cores:
        Workers beyond this count contribute at ``hyperthread_yield``
        of a physical core.
    hyperthread_yield:
        Relative throughput of a hyper-thread (0..1).
    """

    single_thread_rate: float
    serial_fraction: float = 0.015
    contention_per_worker: float = 0.004
    physical_cores: int = 24
    hyperthread_yield: float = 0.35

    def effective_workers(self, num_workers: int) -> float:
        """Workers weighted by physical-core vs hyper-thread contribution."""
        if num_workers <= self.physical_cores:
            return float(num_workers)
        extra = num_workers - self.physical_cores
        return self.physical_cores + extra * self.hyperthread_yield

    def speedup(self, num_workers: int) -> float:
        """Predicted speedup over a single worker."""
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        workers = self.effective_workers(num_workers)
        amdahl = 1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / workers)
        contention = 1.0 + self.contention_per_worker * (num_workers - 1)
        return amdahl / contention

    def ingestion_rate(self, num_workers: int) -> float:
        """Predicted updates/second for ``num_workers`` Graph Workers."""
        return self.single_thread_rate * self.speedup(num_workers)

    def curve(self, worker_counts: List[int]) -> List[dict]:
        """Model predictions for a list of worker counts (bench output rows)."""
        return [
            {
                "threads": count,
                "speedup": self.speedup(count),
                "ingestion_rate": self.ingestion_rate(count),
            }
            for count in worker_counts
        ]

    @classmethod
    def paper_like(cls, single_thread_rate: float) -> "ThreadScalingModel":
        """Constants calibrated so 46 threads land near the paper's ~26x."""
        return cls(
            single_thread_rate=single_thread_rate,
            serial_fraction=0.012,
            contention_per_worker=0.0035,
            physical_cores=24,
            hyperthread_yield=0.5,
        )
