"""Graph Workers: a thread pool that applies update batches to node sketches.

The pool mirrors the paper's ingestion pipeline: a producer (the
buffering system) pushes :class:`~repro.buffering.base.Batch` objects
into the bounded work queue, and ``num_workers`` threads pop batches
and apply them.  Batches bound for the same node are serialised with a
per-node lock, exactly like the paper's critical section around the
node-sketch merge; batches for different nodes proceed concurrently.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Dict, Iterable, Optional

from repro.buffering.base import Batch
from repro.buffering.work_queue import WorkQueue
from repro.core.graph_zeppelin import GraphZeppelin

#: Signature of the function a worker applies to each batch.
BatchApplier = Callable[[Batch], None]


class GraphWorkerPool:
    """A pool of worker threads consuming batches from a work queue."""

    _SHUTDOWN_TIMEOUT_SECONDS = 0.05

    def __init__(
        self,
        apply_batch: BatchApplier,
        num_workers: int = 4,
        work_queue: Optional[WorkQueue] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.num_workers = num_workers
        self.apply_batch = apply_batch
        self.work_queue = (
            work_queue if work_queue is not None else WorkQueue(num_workers=num_workers)
        )
        self._node_locks: Dict[int, threading.Lock] = {}
        self._node_locks_guard = threading.Lock()
        self._stop = threading.Event()
        self._threads = []
        self._batches_processed = 0
        self._updates_processed = 0
        self._counter_lock = threading.Lock()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        if self._threads:
            return
        self._stop.clear()
        for worker_id in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"graph-worker-{worker_id}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def submit(self, batch: Batch) -> None:
        """Enqueue one batch for processing."""
        self.work_queue.put(batch)

    def submit_all(self, batches: Iterable[Batch]) -> None:
        for batch in batches:
            self.submit(batch)

    def join(self) -> None:
        """Wait until every submitted batch has been processed, then stop."""
        while not self.work_queue.is_empty:
            self._stop.wait(self._SHUTDOWN_TIMEOUT_SECONDS)
        self._stop.set()
        for thread in self._threads:
            thread.join()
        self._threads = []

    # ------------------------------------------------------------------
    @property
    def batches_processed(self) -> int:
        return self._batches_processed

    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            try:
                batch = self.work_queue.get(block=True, timeout=self._SHUTDOWN_TIMEOUT_SECONDS)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            lock = self._lock_for(batch.node)
            with lock:
                self.apply_batch(batch)
            with self._counter_lock:
                self._batches_processed += 1
                self._updates_processed += len(batch)

    def _lock_for(self, node: int) -> threading.Lock:
        with self._node_locks_guard:
            lock = self._node_locks.get(node)
            if lock is None:
                lock = threading.Lock()
                self._node_locks[node] = lock
            return lock


class ParallelIngestor:
    """Drives a GraphZeppelin instance with a Graph Worker pool.

    The single-threaded engine applies batches inline as the buffering
    layer emits them; this wrapper reroutes emitted batches through a
    :class:`GraphWorkerPool` instead, so multiple node sketches are
    updated concurrently.  Use it as a context manager::

        with ParallelIngestor(gz, num_workers=8) as ingestor:
            for update in stream:
                ingestor.edge_update(update.u, update.v)
        forest = gz.list_spanning_forest()
    """

    def __init__(self, engine: GraphZeppelin, num_workers: int = 4) -> None:
        self.engine = engine
        self.pool = GraphWorkerPool(
            apply_batch=engine._apply_batch, num_workers=num_workers
        )

    def __enter__(self) -> "ParallelIngestor":
        self.pool.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    # ------------------------------------------------------------------
    def edge_update(self, u: int, v: int) -> None:
        """Buffer one update, dispatching any emitted batches to workers."""
        buffering = self.engine.buffering
        self.engine._updates_processed += 1
        if buffering is None:
            self.pool.submit(Batch(node=u, neighbors=[v]))
            self.pool.submit(Batch(node=v, neighbors=[u]))
            return
        for batch in buffering.insert_edge(u, v):
            self.pool.submit(batch)

    def ingest(self, updates: Iterable) -> int:
        count = 0
        for update in updates:
            self.edge_update(update.u, update.v)
            count += 1
        return count

    def finish(self) -> None:
        """Flush remaining buffered updates through the pool and stop it."""
        buffering = self.engine.buffering
        if buffering is not None:
            for batch in buffering.flush_all():
                self.pool.submit(batch)
        self.pool.join()
