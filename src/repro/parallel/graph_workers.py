"""Sharded columnar parallel ingest over the node tensor pool.

The parallel layer partitions the node space into ``num_shards``
contiguous node ranges.  Each shard *owns* a disjoint slab of the
:class:`~repro.sketch.tensor_pool.NodeTensorPool` tensors -- every
bucket of every node in its range, across all rounds -- and is the only
writer that ever touches those buckets.  Ingesting a batch is then:

1. **partition** (producer): canonicalise the ``(N, 2)`` edge batch,
   mirror it (each edge lands in two shards, one per endpoint), and
   split the mixed-node update columns into per-shard groups with one
   vectorised ``searchsorted`` + stable argsort pass
   (:func:`partition_mirrored_updates`);
2. **fold** (workers): each shard worker folds its group straight
   through the shared columnar fold kernel into its own slab
   (:meth:`~repro.sketch.tensor_pool.NodeTensorPool.fold_shard`).

There are no per-node locks, no ``Batch`` objects, and no shared
mutable state between shards: scatter targets are disjoint by
construction, and because bucket updates are XOR-folds the shard-local
application order is irrelevant -- the resulting pool is bit-identical
to serial :meth:`~repro.core.graph_zeppelin.GraphZeppelin.ingest_batch`
under the same seed.  Shard node ranges are also sized (see
:func:`~repro.sketch.tensor_pool.auto_num_shards`) so the fold kernel's
int16 radix fast path applies, which makes sharded ingest faster than
the serial columnar path even on a single core.

Two execution backends implement the fold step
(``GraphZeppelinConfig.parallel_backend``):

* ``"threads"`` -- a thread pool; numpy releases the GIL inside the
  hash/sort/scatter kernels, so disjoint-slab folds scale on real
  cores;
* ``"processes"`` -- the pool tensors are migrated into
  ``multiprocessing.shared_memory`` and worker processes attach by
  segment name and fold in place.

:meth:`ShardedIngestor.ingest_stream` adds a pipeline mode: the
producer partitions batch ``k + 1`` while the workers are still
folding batch ``k``.  The hand-off between producer and workers is a
**bounded queue**: prepared batches wait in line until their combined
footprint would exceed ``max_queued_bytes``, at which point the
producer *blocks* (folding queued batches) instead of buffering an
unbounded prepared backlog -- backpressure, so a fast source cannot
balloon RAM ahead of slow folds.  ``peak_queued_bytes`` records the
high-water mark for the overload benchmarks.

Out-of-core engines participate through a **page-affine** mode: when
the engine holds a :class:`~repro.sketch.paged_pool.PagedTensorPool`,
shard boundaries snap to the pool's node-group page boundaries, so one
worker owns each page's fold (the pool's pin/evict bookkeeping
serialises under its own lock while the fold kernels run concurrently
on disjoint pages).  Page-affine mode runs on the threads backend --
pages cannot migrate to shared memory -- and means ``--workers`` no
longer falls back to the legacy pool for RAM-budgeted engines.

The seed design -- a :class:`GraphWorkerPool` popping per-node
``Batch`` objects through per-target locks -- is kept as the
``"legacy"`` reference backend (:class:`ParallelIngestor`).
"""

from __future__ import annotations

import multiprocessing
import sys
import threading
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.buffering.base import Batch
from repro.buffering.work_queue import WorkQueue
from repro.core.graph_zeppelin import GraphZeppelin
from repro.exceptions import ConfigurationError
from repro.parallel.cost_model import usable_cores
from repro.sketch.flat_node_sketch import hash_depths_checksums
from repro.sketch.tensor_pool import NodeTensorPool, auto_num_shards, shard_bounds

#: Signature of the function a legacy worker applies to each batch.
BatchApplier = Callable[[Batch], None]

#: Default bound on the pipelined producer's prepared-batch backlog, in
#: bytes of update columns.  Big enough for several typical stream
#: chunks, small enough that backpressure engages well before the
#: backlog rivals the sketch RAM budget.
DEFAULT_MAX_QUEUED_BYTES = 32 << 20


# ----------------------------------------------------------------------
# the vectorised partition step
# ----------------------------------------------------------------------
def partition_mirrored_updates(
    lo: np.ndarray,
    hi: np.ndarray,
    bounds: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a canonical edge batch into per-shard mixed-node groups.

    The batch is mirrored (both endpoints of edge ``(lo[i], hi[i])``
    receive its slot, so each edge lands in two shards -- or twice in
    one shard when both endpoints fall inside it) and grouped by the
    owning shard in one vectorised pass: a ``searchsorted`` against the
    shard ``bounds`` labels every update, and a stable argsort of the
    (small-int) shard ids groups them without touching per-update
    Python.

    Returns ``(dsts, edge_rows, cuts)``: the destination column
    reordered shard-major, each update's edge position (``edge_rows[i]``
    indexes the *unmirrored* batch -- per-edge data such as slot
    indices or hash matrices is shared by both mirrored copies and
    gathered by row, never duplicated), and ``num_shards + 1`` offsets
    such that shard ``s``'s group is the slice ``[cuts[s], cuts[s+1])``.
    """
    num_shards = bounds.size - 1
    num_edges = lo.size
    dsts = np.concatenate([lo, hi])
    shard_ids = np.searchsorted(bounds, dsts, side="right") - 1
    # Shard counts are node counts at most, so the ids fit int16 for
    # any graph the int16 fold fast path itself supports -- which keeps
    # the grouping argsort on numpy's radix sort.
    sort_ids = (
        shard_ids.astype(np.int16) if num_shards <= np.iinfo(np.int16).max else shard_ids
    )
    order = np.argsort(sort_ids, kind="stable")
    counts = np.bincount(shard_ids, minlength=num_shards)
    cuts = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
    # Mirrored position p is edge p mod num_edges (first half = lo copy,
    # second half = hi copy).
    edge_rows = order % num_edges
    return dsts[order], edge_rows, cuts


# ----------------------------------------------------------------------
# process-backend worker plumbing
# ----------------------------------------------------------------------
#: The worker process's attached pool, set once by the pool initializer.
_WORKER_POOL: Optional[NodeTensorPool] = None


def _init_shard_worker(meta: Dict) -> None:
    """Process-pool initializer: attach to the shared-memory pool by name."""
    global _WORKER_POOL
    _WORKER_POOL = NodeTensorPool.attach_shared(meta)


def _fold_shard_task(task: Tuple[int, int, np.ndarray, np.ndarray]) -> int:
    """Fold one shard group inside a worker process (fold step of step 2)."""
    node_lo, node_hi, dsts, indices = task
    return _WORKER_POOL.fold_shard(dsts, indices, node_lo, node_hi)


def process_context():
    """Fork on Linux (cheap startup); spawn everywhere else.

    Workers attach to the pool by segment name rather than relying on
    inherited memory, so both start methods behave identically.  macOS
    offers fork but CPython defaults it to spawn there for a reason
    (forking after ObjC/Accelerate initialisation can crash children),
    so fork is only taken where it is the platform default anyway.
    Shared with the distributed multi-ingestor, whose workers are
    likewise self-contained (they receive their sub-stream by value and
    hand results back through snapshot files).
    """
    use_fork = (
        sys.platform.startswith("linux")
        and "fork" in multiprocessing.get_all_start_methods()
    )
    return multiprocessing.get_context("fork" if use_fork else "spawn")


# ----------------------------------------------------------------------
# the sharded ingestor (tentpole)
# ----------------------------------------------------------------------
class ShardedIngestor:
    """Columnar parallel ingest: shard workers over the tensor pool.

    Use as a context manager around one or many batches::

        with ShardedIngestor(engine, num_workers=4) as ingestor:
            ingestor.ingest_batch(edges)  # one (N, 2) array
            ingestor.ingest_stream(stream.edge_array_chunks())  # pipelined
        forest = engine.list_spanning_forest()

    Results are bit-identical to serial ``engine.ingest_batch`` under
    the same seed, for either backend and any shard count.

    Parameters
    ----------
    engine:
        The GraphZeppelin instance to ingest into.  Must hold a flat
        tensor pool: the in-RAM :class:`NodeTensorPool` (the default)
        or the out-of-core
        :class:`~repro.sketch.paged_pool.PagedTensorPool` (page-affine
        mode, threads backend only).  Only the legacy sketch backend's
        per-node object store keeps the legacy worker pool.
    num_workers:
        Concurrent shard workers (default ``engine.config.num_workers``).
    num_shards:
        Node-range count (default ``engine.config.num_shards``, or an
        automatic count sized so every shard gets the fold kernel's
        int16 radix fast path).  May exceed ``num_workers``; workers
        pick up shard groups as they free up.  Over a paged pool shard
        boundaries snap to page boundaries and the count is capped at
        the page count.
    backend:
        ``"threads"`` or ``"processes"`` (default
        ``engine.config.parallel_backend``).
    max_queued_bytes:
        Backpressure bound for :meth:`ingest_stream`: the producer
        blocks once the prepared-but-unfolded batches it is holding
        exceed this many bytes (default
        :data:`DEFAULT_MAX_QUEUED_BYTES`).  A single batch larger than
        the whole bound still ingests -- alone, with the bound
        transiently exceeded.
    """

    def __init__(
        self,
        engine: GraphZeppelin,
        num_workers: Optional[int] = None,
        num_shards: Optional[int] = None,
        backend: Optional[str] = None,
        max_queued_bytes: Optional[int] = None,
    ) -> None:
        pool = engine.tensor_pool
        if pool is None:
            raise ConfigurationError(
                "sharded parallel ingest requires a flat tensor pool (in-RAM "
                "or paged); use the legacy ParallelIngestor for the legacy "
                "sketch backend's per-node object store"
            )
        self.engine = engine
        self.pool: NodeTensorPool = pool
        self.paged = pool.is_paged
        self.backend = backend if backend is not None else engine.config.parallel_backend
        if self.backend == "legacy":
            raise ConfigurationError(
                "parallel_backend='legacy' maps to ParallelIngestor, not "
                "ShardedIngestor; use GraphZeppelin.parallel_ingestor()"
            )
        if self.backend not in ("threads", "processes"):
            raise ConfigurationError(
                f"unknown parallel backend {self.backend!r} "
                "(use 'threads', 'processes', or 'legacy')"
            )
        if self.paged and self.backend == "processes":
            raise ConfigurationError(
                "page-affine sharded ingest over a paged pool runs on the "
                "threads backend (pages cannot migrate to shared memory)"
            )
        self.num_workers = int(
            num_workers if num_workers is not None else engine.config.num_workers
        )
        if self.num_workers < 1:
            raise ConfigurationError("num_workers must be at least 1")
        shards = num_shards if num_shards is not None else engine.config.num_shards
        if shards is None and not self.paged:
            shards = auto_num_shards(engine.num_nodes, pool.num_rows, self.num_workers)
        if self.paged:
            # Page-affine mode: shard boundaries snap to the pool's page
            # boundaries so each page is folded by exactly one worker
            # (pages, not nodes, are the unit of slab ownership out of
            # core).  A few shards per worker keeps the load balanced
            # without flooding the executor with per-page tasks.
            num_pages = pool.num_pages
            if shards is None:
                shards = min(num_pages, 4 * self.num_workers)
            shards = max(1, min(int(shards), num_pages))
            page_cuts = (
                np.arange(shards + 1, dtype=np.int64) * np.int64(num_pages)
            ) // np.int64(shards)
            self.bounds = pool.page_bounds[page_cuts]
            self.num_shards = int(shards)
        else:
            self.num_shards = int(shards)
            if self.num_shards < 1:
                raise ConfigurationError("num_shards must be at least 1")
            self.bounds = shard_bounds(engine.num_nodes, self.num_shards)
        if max_queued_bytes is None:
            max_queued_bytes = DEFAULT_MAX_QUEUED_BYTES
        if max_queued_bytes < 1:
            raise ConfigurationError("max_queued_bytes must be at least 1")
        self.max_queued_bytes = int(max_queued_bytes)
        # Hash-hoist only pays on the numpy thread path: native kernels
        # fuse hashing into the fold (and release the GIL there), so a
        # producer-side hash pass would serialise work the workers can
        # do concurrently in compiled code.
        self._hoist_hash = self.backend == "threads" and pool._kernels is None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._proc_pool = None
        self._batches_ingested = 0
        self._updates_ingested = 0
        self._queued_bytes = 0
        #: High-water mark of the pipelined hand-off backlog, in bytes.
        self.peak_queued_bytes = 0

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardedIngestor":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    def start(self) -> None:
        """Spin up the shard workers (idempotent).

        The actual worker count is ``min(num_workers, usable cores)``
        (affinity-aware): the folds are CPU-bound numpy kernels, so
        workers beyond the cores this process may run on only add
        scheduler contention (the cost model's ``effective_workers``
        encodes the same clamp).
        """
        workers = self.effective_workers
        if self.backend == "threads":
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="shard-worker"
                )
        else:
            if self._proc_pool is None:
                # Workers attach to the pool tensors by shared-memory
                # segment name and fold in place.
                self.pool.to_shared_memory()
                self._proc_pool = process_context().Pool(
                    processes=workers,
                    initializer=_init_shard_worker,
                    initargs=(self.pool.shared_meta(),),
                )

    def finish(self) -> None:
        """Stop the workers.  The pool (and any shared memory backing it)
        stays with the engine, which keeps serving queries and further
        ingest."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._proc_pool is not None:
            self._proc_pool.close()
            self._proc_pool.join()
            self._proc_pool = None

    close = finish

    # ------------------------------------------------------------------
    @property
    def effective_workers(self) -> int:
        """Workers actually running: ``num_workers`` clamped to usable cores."""
        return max(1, min(self.num_workers, usable_cores()))

    @property
    def batches_ingested(self) -> int:
        return self._batches_ingested

    @property
    def updates_ingested(self) -> int:
        """Edge updates ingested through this ingestor (pre-mirroring)."""
        return self._updates_ingested

    # ------------------------------------------------------------------
    def ingest_batch(self, edges: Union[np.ndarray, Sequence[Tuple[int, int]]]) -> int:
        """Partition one ``(N, 2)`` edge batch and fold it in parallel.

        Blocks until every shard worker has folded its group (so the
        engine may be queried immediately after), and returns the number
        of edge updates ingested.
        """
        self.start()
        parts = self._prepare(edges)
        if parts is None:
            return 0
        count, groups, lo, hi = parts
        self._await(self._dispatch(groups), count, lo, hi)
        return count

    def ingest_stream(
        self,
        chunks: Iterable[Union[np.ndarray, Sequence[Tuple[int, int]]]],
    ) -> int:
        """Pipelined ingest of a sequence of edge batches.

        The producer (this thread) canonicalises and partitions batch
        ``k + 1`` while the shard workers fold batch ``k``; a barrier
        between consecutive batches keeps two folds from racing on the
        same bucket.  Prepared batches wait in a **bounded** hand-off
        queue: once their combined footprint exceeds
        ``max_queued_bytes`` the producer blocks, folding queued
        batches before preparing more -- backpressure against a source
        faster than the folds.  ``chunks`` is any iterable of ``(N, 2)``
        edge arrays -- typically
        :meth:`~repro.streaming.stream.GraphStream.edge_array_chunks`.
        Returns the total number of edge updates ingested.
        """
        self.start()
        total = 0
        # in_flight: the one dispatched batch, as (handles, count, lo,
        # hi, nbytes); queued: prepared batches not yet dispatched, as
        # (count, groups, lo, hi, nbytes).  _queued_bytes covers both.
        in_flight: Optional[Tuple] = None
        queued: List[Tuple] = []

        def advance() -> None:
            # One pipeline step: retire the dispatched batch (barrier),
            # then dispatch the next queued one.  Clear in_flight before
            # awaiting so a worker exception here cannot make the
            # finally block await it again.
            nonlocal in_flight
            if in_flight is not None:
                pending, in_flight = in_flight, None
                try:
                    self._await(pending[0], pending[1], pending[2], pending[3])
                finally:
                    self._queued_bytes -= pending[4]
            if queued:
                count, groups, lo, hi, nbytes = queued.pop(0)
                in_flight = (self._dispatch(groups), count, lo, hi, nbytes)

        try:
            for chunk in chunks:
                parts = self._prepare(chunk)
                if parts is None:
                    continue
                count, groups, lo, hi = parts
                nbytes = self._batch_nbytes(groups)
                while (in_flight is not None or queued) and (
                    self._queued_bytes + nbytes > self.max_queued_bytes
                ):
                    advance()
                queued.append((count, groups, lo, hi, nbytes))
                self._queued_bytes += nbytes
                self.peak_queued_bytes = max(
                    self.peak_queued_bytes, self._queued_bytes
                )
                if in_flight is None:
                    advance()
                total += count
            while in_flight is not None or queued:
                advance()
        finally:
            # A failed _prepare (bad chunk) must not leave a dispatched
            # batch unpublished: its folds complete in the workers and
            # mutate the pool, so the caches have to be invalidated.
            # Queued-but-undispatched batches never touched the pool;
            # they are simply dropped from the byte accounting.
            if in_flight is not None:
                try:
                    self._await(in_flight[0], in_flight[1], in_flight[2], in_flight[3])
                finally:
                    self._queued_bytes -= in_flight[4]
            for entry in queued:
                self._queued_bytes -= entry[4]
            queued.clear()
        return total

    def _batch_nbytes(self, groups: list) -> int:
        """Footprint of one prepared batch's update columns, in bytes.

        The thread backend shares the per-edge hash matrices across
        every shard group by reference, so arrays are counted once by
        identity, not once per group.
        """
        seen = set()
        total = 0
        for group in groups:
            for part in group:
                if isinstance(part, np.ndarray) and id(part) not in seen:
                    seen.add(id(part))
                    total += part.nbytes
        return total

    # ------------------------------------------------------------------
    def _prepare(self, edges) -> Optional[Tuple[int, list, np.ndarray, np.ndarray]]:
        """Producer half: canonicalise, hash, mirror, and partition a batch.

        The hash matrices depend only on the edge slot, so for the
        numpy thread backend they are computed **once per edge** here and
        shared by reference with every worker (each gathers its group's
        rows) -- half the hash cost of hashing per mirrored copy.  The
        process backend hashes inside the workers instead: shipping the
        ``(K, slots)`` matrices through the task pipe would cost far
        more than the duplicate hash.  Native kernels likewise skip the
        hoist: the fold re-hashes per update inside compiled, GIL-free
        code, so the producer stays a pure partitioner and the workers
        scale past the hash-bound ceiling.
        """
        lo, hi = self.engine._canonical_edge_columns(edges)
        if lo is None:
            return None
        pool = self.pool
        indices = self.engine.encoder.encode_canonical_pairs(lo, hi)
        dsts, edge_rows, cuts = partition_mirrored_updates(lo, hi, self.bounds)
        shards = [
            (shard, slice(int(cuts[shard]), int(cuts[shard + 1])))
            for shard in range(self.num_shards)
            if cuts[shard + 1] > cuts[shard]
        ]
        if self._hoist_hash:
            depths, checksums = hash_depths_checksums(
                indices, pool._mixed_membership, pool._mixed_checksum, pool.num_rows
            )
            groups = [
                (
                    int(self.bounds[shard]),
                    int(self.bounds[shard + 1]),
                    dsts[rows],
                    edge_rows[rows],
                    indices,
                    depths,
                    checksums,
                )
                for shard, rows in shards
            ]
        else:
            groups = [
                (
                    int(self.bounds[shard]),
                    int(self.bounds[shard + 1]),
                    dsts[rows],
                    indices[edge_rows[rows]],
                )
                for shard, rows in shards
            ]
        return int(lo.size), groups, lo, hi

    def _dispatch(self, groups: list) -> list:
        """Hand the per-shard groups to the workers; returns wait handles."""
        if self.backend == "threads":
            if self._hoist_hash:
                return [
                    self._executor.submit(
                        self.pool.fold_shard_hashed,
                        dsts,
                        rows,
                        indices,
                        depths,
                        checksums,
                        node_lo,
                        node_hi,
                    )
                    for node_lo, node_hi, dsts, rows, indices, depths, checksums in groups
                ]
            return [
                self._executor.submit(
                    self.pool.fold_shard, dsts, indices, node_lo, node_hi
                )
                for node_lo, node_hi, dsts, indices in groups
            ]
        return [self._proc_pool.map_async(_fold_shard_task, groups, chunksize=1)]

    def _await(
        self, handles: list, count: int, lo: np.ndarray, hi: np.ndarray
    ) -> None:
        """Barrier: wait for a batch's folds, then publish its effects.

        When a worker raised, the failed batch's other shards have
        already XOR-mutated the pool tensors, so the forest and slab
        caches are invalidated even then (a query served from them
        would silently return pre-batch answers) -- but the update
        counters and the validated edge-set toggle are only applied on
        success, so they never claim a partially-folded batch landed
        (a caller retrying the failed batch must not double-toggle).
        """
        try:
            if self.backend == "threads":
                wait(handles)
                for handle in handles:
                    handle.result()  # surface worker exceptions
            else:
                for handle in handles:
                    handle.get()
        except BaseException:
            self.engine._note_parallel_ingest(0)
            raise
        self._batches_ingested += 1
        self._updates_ingested += count
        self.engine._toggle_tracked_edges(lo, hi)
        self.engine._note_parallel_ingest(count)


# ----------------------------------------------------------------------
# legacy reference backend (the seed design, shutdown race fixed)
# ----------------------------------------------------------------------
class GraphWorkerPool:
    """A pool of worker threads consuming per-node batches from a queue.

    The seed repository's Graph Workers pipeline, kept as the
    ``"legacy"`` reference backend: a producer pushes
    :class:`~repro.buffering.base.Batch` objects into the bounded work
    queue and ``num_workers`` threads pop and apply them, serialising
    same-node batches with a per-node lock.  The sharded path above
    replaces all of this for the in-RAM tensor pool; this pool remains
    for buffered/out-of-core engines and as the comparison baseline.

    Shutdown uses task-done accounting: :meth:`join` blocks on the
    queue's unfinished-task count -- which reaches zero only after the
    *apply* of the last popped batch completes, not merely after the
    queue drains -- and then wakes each worker with a sentinel.  There
    is no polling loop anywhere.
    """

    def __init__(
        self,
        apply_batch: BatchApplier,
        num_workers: int = 4,
        work_queue: Optional[WorkQueue] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.num_workers = num_workers
        self.apply_batch = apply_batch
        self.work_queue = (
            work_queue if work_queue is not None else WorkQueue(num_workers=num_workers)
        )
        self._node_locks: Dict[int, threading.Lock] = {}
        self._node_locks_guard = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._batches_processed = 0
        self._updates_processed = 0
        self._counter_lock = threading.Lock()
        self._worker_errors: List[BaseException] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        if self._threads:
            return
        for worker_id in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"graph-worker-{worker_id}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def submit(self, batch: Batch) -> None:
        """Enqueue one batch for processing."""
        self.work_queue.put(batch)

    def submit_all(self, batches: Iterable[Batch]) -> None:
        for batch in batches:
            self.submit(batch)

    def join(self) -> None:
        """Wait until every submitted batch has been *applied*, then stop.

        ``task_done`` accounting tracks in-flight batches, so a batch a
        worker has already popped but is still applying holds this call
        open until its apply returns.  An exception raised by
        ``apply_batch`` does not kill its worker (the pool keeps its
        full worker count and every sentinel is consumed); the first
        such error is re-raised here after shutdown.
        """
        self.work_queue.join_tasks()
        for _ in self._threads:
            self.work_queue.put_sentinel()
        for thread in self._threads:
            thread.join()
        self._threads = []
        if self._worker_errors:
            errors, self._worker_errors = self._worker_errors, []
            raise errors[0]

    # ------------------------------------------------------------------
    @property
    def batches_processed(self) -> int:
        return self._batches_processed

    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self.work_queue.get(block=True)
            if batch is WorkQueue.SENTINEL:
                self.work_queue.task_done()
                return
            try:
                lock = self._lock_for(batch.lock_key)
                with lock:
                    self.apply_batch(batch)
                with self._counter_lock:
                    self._batches_processed += 1
                    self._updates_processed += len(batch)
            except BaseException as exc:  # noqa: BLE001 -- surfaced by join()
                with self._counter_lock:
                    self._worker_errors.append(exc)
            finally:
                self.work_queue.task_done()

    def _lock_for(self, key) -> threading.Lock:
        """Lock serialising batches for one target (a node or a page)."""
        with self._node_locks_guard:
            lock = self._node_locks.get(key)
            if lock is None:
                lock = threading.Lock()
                self._node_locks[key] = lock
            return lock


class ParallelIngestor:
    """Drives a GraphZeppelin instance with the legacy Graph Worker pool.

    The single-threaded engine applies batches inline as the buffering
    layer emits them; this wrapper reroutes emitted batches through a
    :class:`GraphWorkerPool` instead, so multiple node sketches are
    updated concurrently.  This is the ``"legacy"`` reference backend --
    per-node batches, per-node locks, scalar apply path; prefer
    :class:`ShardedIngestor` whenever the engine holds the in-RAM
    tensor pool.  Use it as a context manager::

        with ParallelIngestor(gz, num_workers=8) as ingestor:
            for update in stream:
                ingestor.edge_update(update.u, update.v)
        forest = gz.list_spanning_forest()
    """

    def __init__(self, engine: GraphZeppelin, num_workers: int = 4) -> None:
        self.engine = engine
        self.pool = GraphWorkerPool(
            apply_batch=engine._apply_batch, num_workers=num_workers
        )

    def __enter__(self) -> "ParallelIngestor":
        self.pool.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    # ------------------------------------------------------------------
    def edge_update(self, u: int, v: int) -> None:
        """Buffer one update, dispatching any emitted batches to workers."""
        buffering = self.engine.buffering
        self.engine._updates_processed += 1
        if buffering is None:
            self.pool.submit(Batch(node=u, neighbors=[v]))
            self.pool.submit(Batch(node=v, neighbors=[u]))
            return
        for batch in buffering.insert_edge(u, v):
            self.pool.submit(batch)

    def ingest(self, updates: Iterable) -> int:
        count = 0
        for update in updates:
            self.edge_update(update.u, update.v)
            count += 1
        return count

    def finish(self) -> None:
        """Flush remaining buffered updates through the pool and stop it."""
        buffering = self.engine.buffering
        if buffering is not None:
            for batch in buffering.flush_all():
                self.pool.submit(batch)
        self.pool.join()
