"""Version information for the ``repro`` package."""

__version__ = "1.0.0"

#: Version of the GraphZeppelin paper this package reproduces.
PAPER = (
    "GraphZeppelin: Storage-Friendly Sketching for Connected Components "
    "on Dynamic Graph Streams (SIGMOD 2022)"
)
