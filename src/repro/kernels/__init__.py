"""Native-speed kernel backends for the columnar sketch engine.

The three hot kernels of the engine -- the ingest fold
(:func:`~repro.sketch.flat_node_sketch.columnar_fold` /
``fold_hashed``), the whole-round query reduce
(:func:`~repro.sketch.flat_node_sketch.segmented_xor`), and the batched
bucket decoder
(:func:`~repro.sketch.flat_node_sketch.decode_column_batch`) -- have
compiled twins selected through ``config.kernel_backend``:

``"numpy"``
    The default: the pure-numpy kernels, no compiled code anywhere.
``"native"``
    Require a compiled provider; raise
    :class:`~repro.exceptions.ConfigurationError` when none is usable.
``"auto"``
    Use a compiled provider when one is available, fall back to numpy
    silently otherwise (the selection is logged once per process).

Two providers implement the same compiled loops:

* :mod:`repro.kernels.native_numba` -- numba ``@njit`` kernels,
  preferred when :mod:`numba` is importable (``pip install .[native]``).
* :mod:`repro.kernels.native_cc` -- a small C library compiled at first
  use with the host toolchain and driven through :mod:`ctypes`; used
  when numba is absent but a C compiler exists.

Every provider is property-tested **bit-identical** to the numpy path
(``tests/test_native_kernels.py``): same seed in, same tensors, forests,
and stats out, across packed/wide bucket modes, flat/paged pools, and
serial/sharded/distributed ingest.  ``kernel_backend`` therefore stays
out of :meth:`~repro.core.config.GraphZeppelinConfig.sketch_fingerprint`
-- snapshots interchange freely across backends.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.observability.log import get_logger

logger = get_logger(__name__)

#: Valid values of ``config.kernel_backend``.
KERNEL_BACKENDS = ("numpy", "native", "auto")

_lock = threading.Lock()
_resolved = False
_provider = None
_unavailable_reason: Optional[str] = None
_logged_choice = False


def native_kernels():
    """The process-wide native kernel provider, or ``None``.

    Resolution happens once per process: numba first (the preferred,
    ``pip install .[native]`` provider), then the runtime-compiled C
    provider.  Both the provider instance and a failure are cached, so
    repeated calls are cheap and every pool in the process shares one
    compiled library.
    """
    global _resolved, _provider, _unavailable_reason
    if _resolved:
        return _provider
    with _lock:
        if _resolved:
            return _provider
        reasons = []
        try:
            from repro.kernels.native_numba import NumbaKernels

            _provider = NumbaKernels()
        except Exception as exc:  # ImportError without numba, or jit failure
            reasons.append(f"numba: {exc}")
            try:
                from repro.kernels.native_cc import CcKernels

                _provider = CcKernels()
            except Exception as cc_exc:
                reasons.append(f"cc: {cc_exc}")
                _unavailable_reason = "; ".join(reasons)
        _resolved = True
    return _provider


def native_unavailable_reason() -> Optional[str]:
    """Why no native provider loaded (``None`` when one did)."""
    native_kernels()
    return _unavailable_reason


def resolve_kernels(backend: str):
    """Resolve a ``kernel_backend`` config value to a provider.

    Returns a provider instance for native execution or ``None`` for
    the numpy kernels.  ``"native"`` raises
    :class:`~repro.exceptions.ConfigurationError` when no provider is
    usable; ``"auto"`` falls back to numpy and logs the choice once per
    process.
    """
    global _logged_choice
    if backend == "numpy":
        return None
    if backend not in KERNEL_BACKENDS:
        raise ConfigurationError(
            f"unknown kernel_backend {backend!r} (use 'numpy', 'native', or 'auto')"
        )
    provider = native_kernels()
    if provider is None and backend == "native":
        raise ConfigurationError(
            "kernel_backend='native' but no native provider is usable "
            f"({_unavailable_reason}); install the [native] extra or use 'auto'"
        )
    if not _logged_choice:
        _logged_choice = True
        if provider is None:
            logger.info(
                "kernel_backend=auto: no native provider (%s); using numpy kernels",
                _unavailable_reason,
            )
        else:
            logger.info(
                "kernel_backend=%s: using native '%s' kernels", backend, provider.name
            )
    return provider


def _reset_for_tests() -> None:
    """Forget the cached provider resolution (test hook only)."""
    global _resolved, _provider, _unavailable_reason, _logged_choice
    with _lock:
        _resolved = False
        _provider = None
        _unavailable_reason = None
        _logged_choice = False
