"""The numba native kernel provider (preferred; ``pip install .[native]``).

Importing this module requires :mod:`numba`; the registry in
:mod:`repro.kernels` catches the ``ImportError`` and falls back to the
runtime-compiled C provider (:mod:`repro.kernels.native_cc`).  Both
providers implement the same fused loops -- see the C module's
docstring for the why -- and both are property-tested bit-identical to
the numpy kernels.

The jitted kernels run ``nogil`` (the sharded thread ingest overlaps
shard folds) and ``parallel`` over hash slots / segments / components,
whose writes are disjoint by construction:

* fold: slot ``s`` only touches flat offsets congruent to
  ``slot_offsets[s]`` within a destination's bucket block, so the
  per-slot ``prange`` iterations never alias;
* segmented XOR: each segment owns its output row;
* decode: each component owns its output element.

All uint64 arithmetic is written with explicit ``np.uint64`` constants:
numba follows numpy's promotion rules, where ``uint64 op int64`` would
silently become ``float64`` and break bit-identity.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numba import njit, prange

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MUL1 = np.uint64(0xBF58476D1CE4E5B9)
_MUL2 = np.uint64(0x94D049BB133111EB)
_XXP2 = np.uint64(0xC2B2AE3D27D4EB4F)
_XXP3 = np.uint64(0x165667B19E3779F9)
_LOW32 = np.uint64(0xFFFFFFFF)
_U0 = np.uint64(0)
_U1 = np.uint64(1)
_S27 = np.uint64(27)
_S29 = np.uint64(29)
_S30 = np.uint64(30)
_S31 = np.uint64(31)
_S32 = np.uint64(32)
_S33 = np.uint64(33)

_JIT = dict(cache=True, nogil=True)


@njit(inline="always", **_JIT)
def _finalise(v):
    v = v + _GAMMA
    v ^= v >> _S30
    v *= _MUL1
    v ^= v >> _S27
    v *= _MUL2
    v ^= v >> _S31
    v ^= v >> _S33
    v *= _XXP2
    v ^= v >> _S29
    v *= _XXP3
    v ^= v >> _S32
    return v


@njit(inline="always", **_JIT)
def _depth(h, num_rows):
    if h == _U0:
        return num_rows
    t = 0
    while (h >> np.uint64(t)) & _U1 == _U0:
        t += 1
    if t > num_rows - 1:
        t = num_rows - 1
    return t + 1


@njit(parallel=True, **_JIT)
def _fold_packed(pool, idx, dsts, mm, mc, num_rows, dst_stride, slot_offsets):
    for s in prange(mm.size):
        mms = mm[s]
        mcs = mc[s]
        off = slot_offsets[s]
        for i in range(idx.size):
            v = idx[i]
            g = _finalise(v ^ mcs) & _LOW32
            depth = _depth(_finalise(v ^ mms), num_rows)
            base = (dsts[i] * dst_stride + off) * num_rows
            val = (v << _S32) | g
            for r in range(depth):
                pool[base + r] ^= val


@njit(parallel=True, **_JIT)
def _fold_wide(alpha, gamma, idx, dsts, mm, mc, num_rows, dst_stride, slot_offsets):
    for s in prange(mm.size):
        mms = mm[s]
        mcs = mc[s]
        off = slot_offsets[s]
        for i in range(idx.size):
            v = idx[i]
            g = _finalise(v ^ mcs) & _LOW32
            depth = _depth(_finalise(v ^ mms), num_rows)
            base = (dsts[i] * dst_stride + off) * num_rows
            g32 = np.uint32(g)
            for r in range(depth):
                alpha[base + r] ^= v
                gamma[base + r] ^= g32


@njit(parallel=True, **_JIT)
def _fold_sep64(alpha, gamma, idx, mm, mc, num_rows):
    for s in prange(mm.size):
        mms = mm[s]
        mcs = mc[s]
        base = s * num_rows
        for i in range(idx.size):
            v = idx[i]
            g = _finalise(v ^ mcs) & _LOW32
            depth = _depth(_finalise(v ^ mms), num_rows)
            for r in range(depth):
                alpha[base + r] ^= v
                gamma[base + r] ^= g


@njit(parallel=True, **_JIT)
def _fold_edges_packed(pool, idx, lo, hi, mm, mc, num_rows, dst_stride, slot_offsets):
    for s in prange(mm.size):
        mms = mm[s]
        mcs = mc[s]
        off = slot_offsets[s]
        for i in range(idx.size):
            v = idx[i]
            g = _finalise(v ^ mcs) & _LOW32
            depth = _depth(_finalise(v ^ mms), num_rows)
            val = (v << _S32) | g
            base_lo = (lo[i] * dst_stride + off) * num_rows
            base_hi = (hi[i] * dst_stride + off) * num_rows
            for r in range(depth):
                pool[base_lo + r] ^= val
                pool[base_hi + r] ^= val


@njit(parallel=True, **_JIT)
def _fold_edges_wide(
    alpha, gamma, idx, lo, hi, mm, mc, num_rows, dst_stride, slot_offsets
):
    for s in prange(mm.size):
        mms = mm[s]
        mcs = mc[s]
        off = slot_offsets[s]
        for i in range(idx.size):
            v = idx[i]
            g = _finalise(v ^ mcs) & _LOW32
            depth = _depth(_finalise(v ^ mms), num_rows)
            g32 = np.uint32(g)
            base_lo = (lo[i] * dst_stride + off) * num_rows
            base_hi = (hi[i] * dst_stride + off) * num_rows
            for r in range(depth):
                alpha[base_lo + r] ^= v
                gamma[base_lo + r] ^= g32
                alpha[base_hi + r] ^= v
                gamma[base_hi + r] ^= g32


@njit(parallel=True, **_JIT)
def _seg_xor(slab, node_stride, base_off, width, nodes, seg_starts, out):
    n_rows = nodes.size
    n_segs = seg_starts.size
    for s in prange(n_segs):
        start = seg_starts[s]
        end = seg_starts[s + 1] if s + 1 < n_segs else n_rows
        for w in range(width):
            out[s, w] = 0
        for r in range(start, end):
            base = nodes[r] * node_stride + base_off
            for w in range(width):
                out[s, w] ^= slab[base + w]


@njit(parallel=True, **_JIT)
def _decode_column(alpha, gamma, num_rows, veclen, mixed_seed, good, zero, index):
    count = alpha.shape[0]
    for c in prange(count):
        any_nonzero = False
        best = np.int64(-1)
        for r in range(num_rows):
            av = alpha[c, r]
            gv = gamma[c, r]
            if av == _U0 and gv == _U0:
                continue
            any_nonzero = True
            if av >= veclen:
                continue
            if (_finalise(av ^ mixed_seed) & _LOW32) == gv:
                best = np.int64(av)
        good[c] = best >= 0
        zero[c] = not any_nonzero
        index[c] = best


def _as_i64(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.int64)


def _as_u64(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.uint64)


class NumbaKernels:
    """Native kernel provider backed by numba-jitted loops.

    Same high-level interface as
    :class:`~repro.kernels.native_cc.CcKernels`; instances are
    process-wide singletons that survive copy/pickle by reference.
    """

    name = "numba"
    is_native = True

    def __init__(self) -> None:
        # Touch one trivial jit so a broken numba install fails here,
        # at provider construction, where the registry can fall back.
        _depth(np.uint64(1), 2)

    def __copy__(self) -> "NumbaKernels":
        return self

    def __deepcopy__(self, memo) -> "NumbaKernels":
        return self

    def __reduce__(self):
        from repro.kernels import resolve_kernels

        return (resolve_kernels, ("native",))

    # -- ingest folds ---------------------------------------------------
    def fold_pool(self, pool, indices: np.ndarray, dsts: np.ndarray) -> None:
        idx = _as_u64(indices)
        dst = _as_i64(dsts)
        if pool._packed:
            _fold_packed(
                pool._buckets.reshape(-1), idx, dst, pool._mixed_membership,
                pool._mixed_checksum, pool.num_rows, pool.num_columns,
                pool._slot_offsets,
            )
        else:
            _fold_wide(
                pool._alpha.reshape(-1), pool._gamma.reshape(-1), idx, dst,
                pool._mixed_membership, pool._mixed_checksum, pool.num_rows,
                pool.num_columns, pool._slot_offsets,
            )

    def fold_pool_edges(
        self, pool, indices: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> None:
        idx = _as_u64(indices)
        lo64 = _as_i64(lo)
        hi64 = _as_i64(hi)
        if pool._packed:
            _fold_edges_packed(
                pool._buckets.reshape(-1), idx, lo64, hi64,
                pool._mixed_membership, pool._mixed_checksum, pool.num_rows,
                pool.num_columns, pool._slot_offsets,
            )
        else:
            _fold_edges_wide(
                pool._alpha.reshape(-1), pool._gamma.reshape(-1), idx, lo64,
                hi64, pool._mixed_membership, pool._mixed_checksum,
                pool.num_rows, pool.num_columns, pool._slot_offsets,
            )

    def fold_page(
        self, pool, entry: Tuple[np.ndarray, ...], indices: np.ndarray,
        local_dsts: np.ndarray,
    ) -> None:
        idx = _as_u64(indices)
        dst = _as_i64(local_dsts)
        if pool._packed:
            _fold_packed(
                entry[0].reshape(-1), idx, dst, pool._mixed_membership,
                pool._mixed_checksum, pool.num_rows, pool.num_columns,
                pool._combined_offsets,
            )
        else:
            _fold_wide(
                entry[0].reshape(-1), entry[1].reshape(-1), idx, dst,
                pool._mixed_membership, pool._mixed_checksum, pool.num_rows,
                pool.num_columns, pool._combined_offsets,
            )

    def fold_bundle(self, sketch, indices: np.ndarray) -> None:
        _fold_sep64(
            sketch._alpha.reshape(-1), sketch._gamma.reshape(-1),
            _as_u64(indices), sketch._mixed_membership,
            sketch._mixed_checksum, sketch.num_rows,
        )

    # -- query-side kernels ---------------------------------------------
    def segment_xor(
        self,
        slab: np.ndarray,
        nodes: np.ndarray,
        seg_starts: np.ndarray,
        col_start: int,
        col_stop: int,
        num_rows: int,
    ) -> np.ndarray:
        slab = np.ascontiguousarray(slab)
        nodes = _as_i64(nodes)
        starts = _as_i64(seg_starts)
        width = (col_stop - col_start) * num_rows
        out = np.empty((starts.size, width), dtype=slab.dtype)
        _seg_xor(
            slab.reshape(-1), slab.shape[1] * slab.shape[2],
            col_start * num_rows, width, nodes, starts, out,
        )
        return out

    def decode_column(
        self,
        alpha: np.ndarray,
        gamma: np.ndarray,
        vector_length: int,
        mixed_seed: np.uint64,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        alpha = _as_u64(alpha)
        gamma = _as_u64(gamma)
        count, num_rows = alpha.shape
        good = np.empty(count, dtype=np.bool_)
        zero = np.empty(count, dtype=np.bool_)
        index = np.empty(count, dtype=np.int64)
        _decode_column(
            alpha, gamma, num_rows, np.uint64(vector_length),
            np.uint64(mixed_seed), good, zero, index,
        )
        return good, zero, index
