"""The compiled-C native kernel provider (gcc + ctypes, zero dependencies).

This module implements the three hot kernels of the columnar engine --
the ingest fold, the query-side segmented XOR-reduce, and the batched
bucket decode -- as a small C library compiled **at first use** with the
host's C compiler and loaded through :mod:`ctypes`.  It is the fallback
provider of the ``native`` kernel backend for environments that have a
C toolchain but not :mod:`numba` (the preferred provider; see
:mod:`repro.kernels.native_numba`), and the two providers implement the
same loops so either is property-tested bit-identical to the numpy path.

Why compiling beats the numpy kernels:

* **fold**: the numpy fold materialises two ``(K, slots)`` uint64 hash
  matrices, argsorts a composite key, and runs ~15 vectorised passes of
  prefix-scan emission machinery.  The C fold fuses hash, depth
  extraction (a ``ctz`` instruction instead of a float ``log2`` round
  trip), and the bucket XOR into one pass with **no temporaries at
  all** -- each update hashes and scatters straight into the pool
  tensor.  XOR folding is order-independent, so the resulting buckets
  are bit-identical to the argsort + prefix-scan emission path.
* **segmented XOR**: ``np.bitwise_xor.reduceat`` runs a scalar inner
  loop (~5 ns/element), and even the blocked two-level scheme pays a
  gather copy of the reordered rows.  The C kernel fuses the gather and
  the reduce: one pass over the segment's rows, auto-vectorised by the
  compiler, writing only the per-segment sums.
* **decode**: the numpy batched decoder makes ~6 full passes over the
  ``(C, rows)`` bucket arrays building masks before it can hash the
  candidates.  The C decoder scans each component's rows once,
  checksum-hashing only candidate buckets inline.

The calls release the GIL (ctypes ``CDLL`` semantics), which is what
finally lets the sharded thread ingest scale past the numpy kernels'
serialised sections.

The shared library is cached under ``$REPRO_KERNEL_CACHE`` (default: a
``repro-ckernels`` directory in the system temp dir) keyed by a source
hash, so each source revision compiles once per machine; concurrent
builds race benignly through an atomic rename.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional, Tuple

import numpy as np

_C_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>

/* Bit-identical C twins of repro.hashing.mixers: splitmix64 followed by
 * the xxHash64 avalanche, over pre-mixed (seed-diffused) keys.  All
 * arithmetic is mod 2^64, exactly like numpy uint64 with overflow
 * ignored. */
static inline uint64_t repro_splitmix64(uint64_t v) {
    v += 0x9E3779B97F4A7C15ULL;
    v ^= v >> 30; v *= 0xBF58476D1CE4E5B9ULL;
    v ^= v >> 27; v *= 0x94D049BB133111EBULL;
    v ^= v >> 31;
    return v;
}

static inline uint64_t repro_avalanche(uint64_t v) {
    v ^= v >> 33; v *= 0xC2B2AE3D27D4EB4FULL;
    v ^= v >> 29; v *= 0x165667B19E3779F9ULL;
    v ^= v >> 32;
    return v;
}

static inline uint64_t repro_finalise(uint64_t key) {
    return repro_avalanche(repro_splitmix64(key));
}

/* depth = 1 + trailing-zero bits of the membership hash, clamped to
 * num_rows; an all-zero hash belongs to every row.  Matches
 * hash_to_depth's log2(lowest set bit) formulation bit for bit. */
static inline int64_t repro_depth(uint64_t h, int64_t num_rows) {
    int64_t t;
    if (h == 0) return num_rows;
    t = (int64_t)__builtin_ctzll(h);
    if (t > num_rows - 1) t = num_rows - 1;
    return t + 1;
}

/* ------------------------------------------------------------------ */
/* Ingest folds: fused hash + depth + XOR scatter, no temporaries.     */
/* Loops run slot-outer so one (round, column) hash seed pair stays in */
/* registers and writes cluster inside one round's slab.  `dsts` may   */
/* be NULL for single-destination (whole-bundle) folds.  Bucket        */
/* (dst, slot, row) lands at flat offset                               */
/*   (dst * dst_stride + slot_offsets[s]) * num_rows + row             */
/* -- the same injective segment mapping the numpy kernel emits.       */
/* ------------------------------------------------------------------ */

#define REPRO_FOLD_LOOP(WRITE)                                              \
    int64_t s, i, r;                                                        \
    for (s = 0; s < num_slots; s++) {                                       \
        const uint64_t mms = mm[s];                                         \
        const uint64_t mcs = mc[s];                                         \
        const int64_t off = slot_offsets[s];                                \
        for (i = 0; i < k; i++) {                                           \
            const uint64_t v = idx[i];                                      \
            const uint64_t g = repro_finalise(v ^ mcs) & 0xFFFFFFFFULL;     \
            const int64_t depth =                                           \
                repro_depth(repro_finalise(v ^ mms), num_rows);             \
            const int64_t seg =                                             \
                (dsts ? dsts[i] * dst_stride : 0) + off;                    \
            WRITE                                                           \
        }                                                                   \
    }

void repro_fold_packed(uint64_t *pool, const uint64_t *idx,
                       const int64_t *dsts, int64_t k, const uint64_t *mm,
                       const uint64_t *mc, int64_t num_slots,
                       int64_t num_rows, int64_t dst_stride,
                       const int64_t *slot_offsets) {
    REPRO_FOLD_LOOP({
        uint64_t *base = pool + seg * num_rows;
        const uint64_t val = (v << 32) | g;
        for (r = 0; r < depth; r++) base[r] ^= val;
    })
}

void repro_fold_wide(uint64_t *alpha, uint32_t *gamma, const uint64_t *idx,
                     const int64_t *dsts, int64_t k, const uint64_t *mm,
                     const uint64_t *mc, int64_t num_slots, int64_t num_rows,
                     int64_t dst_stride, const int64_t *slot_offsets) {
    REPRO_FOLD_LOOP({
        uint64_t *abase = alpha + seg * num_rows;
        uint32_t *gbase = gamma + seg * num_rows;
        const uint32_t g32 = (uint32_t)g;
        for (r = 0; r < depth; r++) { abase[r] ^= v; gbase[r] ^= g32; }
    })
}

void repro_fold_sep64(uint64_t *alpha, uint64_t *gamma, const uint64_t *idx,
                      const int64_t *dsts, int64_t k, const uint64_t *mm,
                      const uint64_t *mc, int64_t num_slots, int64_t num_rows,
                      int64_t dst_stride, const int64_t *slot_offsets) {
    REPRO_FOLD_LOOP({
        uint64_t *abase = alpha + seg * num_rows;
        uint64_t *gbase = gamma + seg * num_rows;
        for (r = 0; r < depth; r++) { abase[r] ^= v; gbase[r] ^= g; }
    })
}

/* Mirrored edge fold: both endpoints' bundles receive every edge slot,
 * and the hashes depend only on the slot -- hash once, scatter twice. */

#define REPRO_EDGE_LOOP(WRITE)                                              \
    int64_t s, i, r, e;                                                     \
    for (s = 0; s < num_slots; s++) {                                       \
        const uint64_t mms = mm[s];                                         \
        const uint64_t mcs = mc[s];                                         \
        const int64_t off = slot_offsets[s];                                \
        for (i = 0; i < k; i++) {                                           \
            const uint64_t v = idx[i];                                      \
            const uint64_t g = repro_finalise(v ^ mcs) & 0xFFFFFFFFULL;     \
            const int64_t depth =                                           \
                repro_depth(repro_finalise(v ^ mms), num_rows);             \
            for (e = 0; e < 2; e++) {                                       \
                const int64_t seg =                                         \
                    (e ? hi[i] : lo[i]) * dst_stride + off;                 \
                WRITE                                                       \
            }                                                               \
        }                                                                   \
    }

void repro_fold_edges_packed(uint64_t *pool, const uint64_t *idx,
                             const int64_t *lo, const int64_t *hi, int64_t k,
                             const uint64_t *mm, const uint64_t *mc,
                             int64_t num_slots, int64_t num_rows,
                             int64_t dst_stride,
                             const int64_t *slot_offsets) {
    REPRO_EDGE_LOOP({
        uint64_t *base = pool + seg * num_rows;
        const uint64_t val = (v << 32) | g;
        for (r = 0; r < depth; r++) base[r] ^= val;
    })
}

void repro_fold_edges_wide(uint64_t *alpha, uint32_t *gamma,
                           const uint64_t *idx, const int64_t *lo,
                           const int64_t *hi, int64_t k, const uint64_t *mm,
                           const uint64_t *mc, int64_t num_slots,
                           int64_t num_rows, int64_t dst_stride,
                           const int64_t *slot_offsets) {
    REPRO_EDGE_LOOP({
        uint64_t *abase = alpha + seg * num_rows;
        uint32_t *gbase = gamma + seg * num_rows;
        const uint32_t g32 = (uint32_t)g;
        for (r = 0; r < depth; r++) { abase[r] ^= v; gbase[r] ^= g32; }
    })
}

/* ------------------------------------------------------------------ */
/* Query-side segmented XOR: fused gather + reduce over a round slab.  */
/* Row `nodes[r]` of the slab contributes elements                     */
/* [base_off, base_off + width) (a contiguous column span); segment s  */
/* covers gather rows [seg_starts[s], seg_starts[s+1]).                */
/* ------------------------------------------------------------------ */

#define REPRO_SEG_XOR(T)                                                    \
    int64_t s, r, w;                                                        \
    for (s = 0; s < n_segs; s++) {                                          \
        const int64_t start = seg_starts[s];                                \
        const int64_t end = (s + 1 < n_segs) ? seg_starts[s + 1] : n_rows;  \
        T *o = out + s * width;                                             \
        for (w = 0; w < width; w++) o[w] = 0;                               \
        for (r = start; r < end; r++) {                                     \
            const T *row = slab + nodes[r] * node_stride + base_off;        \
            for (w = 0; w < width; w++) o[w] ^= row[w];                     \
        }                                                                   \
    }

void repro_seg_xor_u64(const uint64_t *slab, int64_t node_stride,
                       int64_t base_off, int64_t width, const int64_t *nodes,
                       int64_t n_rows, const int64_t *seg_starts,
                       int64_t n_segs, uint64_t *out) {
    REPRO_SEG_XOR(uint64_t)
}

void repro_seg_xor_u32(const uint32_t *slab, int64_t node_stride,
                       int64_t base_off, int64_t width, const int64_t *nodes,
                       int64_t n_rows, const int64_t *seg_starts,
                       int64_t n_segs, uint32_t *out) {
    REPRO_SEG_XOR(uint32_t)
}

/* ------------------------------------------------------------------ */
/* Batched bucket decode: one pass over each component's column,       */
/* deepest verified bucket wins (rows ascend by depth, so the last     */
/* verified row is the deepest -- same pick as the numpy decoder).     */
/* ------------------------------------------------------------------ */

void repro_decode_column(const uint64_t *alpha, const uint64_t *gamma,
                         int64_t count, int64_t num_rows, uint64_t veclen,
                         uint64_t mixed_seed, uint8_t *good, uint8_t *zero,
                         int64_t *index) {
    int64_t c, r;
    for (c = 0; c < count; c++) {
        const uint64_t *a = alpha + c * num_rows;
        const uint64_t *g = gamma + c * num_rows;
        int any = 0;
        int64_t best = -1;
        for (r = 0; r < num_rows; r++) {
            const uint64_t av = a[r];
            const uint64_t gv = g[r];
            if (av == 0 && gv == 0) continue;
            any = 1;
            if (av >= veclen) continue;
            if ((repro_finalise(av ^ mixed_seed) & 0xFFFFFFFFULL) == gv)
                best = (int64_t)av;
        }
        good[c] = (uint8_t)(best >= 0);
        zero[c] = (uint8_t)(!any);
        index[c] = best;
    }
}
"""

_U64P = ctypes.POINTER(ctypes.c_uint64)
_U32P = ctypes.POINTER(ctypes.c_uint32)
_I64P = ctypes.POINTER(ctypes.c_int64)
_U8P = ctypes.POINTER(ctypes.c_uint8)
_I64 = ctypes.c_int64
_U64 = ctypes.c_uint64

_SIGNATURES = {
    "repro_fold_packed": [_U64P, _U64P, _I64P, _I64, _U64P, _U64P, _I64, _I64, _I64, _I64P],
    "repro_fold_wide": [_U64P, _U32P, _U64P, _I64P, _I64, _U64P, _U64P, _I64, _I64, _I64, _I64P],
    "repro_fold_sep64": [_U64P, _U64P, _U64P, _I64P, _I64, _U64P, _U64P, _I64, _I64, _I64, _I64P],
    "repro_fold_edges_packed": [_U64P, _U64P, _I64P, _I64P, _I64, _U64P, _U64P, _I64, _I64, _I64, _I64P],
    "repro_fold_edges_wide": [_U64P, _U32P, _U64P, _I64P, _I64P, _I64, _U64P, _U64P, _I64, _I64, _I64, _I64P],
    "repro_seg_xor_u64": [_U64P, _I64, _I64, _I64, _I64P, _I64, _I64P, _I64, _U64P],
    "repro_seg_xor_u32": [_U32P, _I64, _I64, _I64, _I64P, _I64, _I64P, _I64, _U32P],
    "repro_decode_column": [_U64P, _U64P, _I64, _I64, _U64, _U64, _U8P, _U8P, _I64P],
}


def _cache_dir() -> str:
    configured = os.environ.get("REPRO_KERNEL_CACHE")
    if configured:
        return configured
    return os.path.join(tempfile.gettempdir(), "repro-ckernels")


def find_compiler() -> Optional[str]:
    """The C compiler the provider would build with, or ``None``."""
    configured = os.environ.get("CC")
    if configured:
        return shutil.which(configured)
    return shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")


def _build_library() -> ctypes.CDLL:
    """Compile (once per source revision) and load the kernel library."""
    compiler = find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found (set $CC or install gcc/clang)")
    digest = hashlib.sha256(_C_SOURCE.encode("ascii")).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"repro_ckernels_{digest}.so")
    if not os.path.exists(so_path):
        os.makedirs(cache, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as workdir:
            source = os.path.join(workdir, "kernels.c")
            with open(source, "w", encoding="ascii") as handle:
                handle.write(_C_SOURCE)
            built = os.path.join(workdir, "kernels.so")
            base = [compiler, "-O3", "-fPIC", "-shared", source, "-o", built]
            # -march=native unlocks the wide-vector segmented XOR; some
            # toolchains (cross compilers, old clangs) reject it, so
            # fall back to the portable build rather than fail.
            try:
                subprocess.run(
                    base[:1] + ["-march=native"] + base[1:],
                    check=True, capture_output=True,
                )
            except (subprocess.CalledProcessError, OSError):
                subprocess.run(base, check=True, capture_output=True)
            # Atomic publish: concurrent processes race benignly.
            os.replace(built, so_path)
    lib = ctypes.CDLL(so_path)
    for name, argtypes in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.argtypes = argtypes
        fn.restype = None
    return lib


def _u64(array: np.ndarray):
    return array.ctypes.data_as(_U64P)


def _u32(array: np.ndarray):
    return array.ctypes.data_as(_U32P)


def _i64(array: np.ndarray):
    return array.ctypes.data_as(_I64P)


def _as_i64(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.int64)


def _as_u64(values: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(values, dtype=np.uint64)


class CcKernels:
    """Native kernel provider backed by the runtime-compiled C library.

    One instance per process (see :func:`repro.kernels.native_kernels`);
    the high-level methods translate pool/sketch state into the flat
    pointer-and-stride arguments the C entry points take.  All calls
    release the GIL.
    """

    name = "cc"
    is_native = True

    def __init__(self) -> None:
        self._lib = _build_library()

    # Singletons survive copy/pickle by reference/name: a pool carrying
    # a kernels object must stay deep-copyable and picklable even
    # though a ctypes library handle is neither.
    def __copy__(self) -> "CcKernels":
        return self

    def __deepcopy__(self, memo) -> "CcKernels":
        return self

    def __reduce__(self):
        from repro.kernels import resolve_kernels

        return (resolve_kernels, ("native",))

    # ------------------------------------------------------------------
    # ingest folds
    # ------------------------------------------------------------------
    def fold_pool(self, pool, indices: np.ndarray, dsts: np.ndarray) -> None:
        """Fold a mixed multi-node batch straight into the pool tensors."""
        idx = _as_u64(indices)
        dst = _as_i64(dsts)
        offsets = pool._slot_offsets
        if pool._packed:
            self._lib.repro_fold_packed(
                _u64(pool._buckets), _u64(idx), _i64(dst), idx.size,
                _u64(pool._mixed_membership), _u64(pool._mixed_checksum),
                pool.num_slots, pool.num_rows, pool.num_columns, _i64(offsets),
            )
        else:
            self._lib.repro_fold_wide(
                _u64(pool._alpha), _u32(pool._gamma), _u64(idx), _i64(dst),
                idx.size, _u64(pool._mixed_membership),
                _u64(pool._mixed_checksum), pool.num_slots, pool.num_rows,
                pool.num_columns, _i64(offsets),
            )

    def fold_pool_edges(
        self, pool, indices: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> None:
        """Fold both mirrored halves of a canonical edge batch (hash once)."""
        idx = _as_u64(indices)
        lo64 = _as_i64(lo)
        hi64 = _as_i64(hi)
        offsets = pool._slot_offsets
        if pool._packed:
            self._lib.repro_fold_edges_packed(
                _u64(pool._buckets), _u64(idx), _i64(lo64), _i64(hi64),
                idx.size, _u64(pool._mixed_membership),
                _u64(pool._mixed_checksum), pool.num_slots, pool.num_rows,
                pool.num_columns, _i64(offsets),
            )
        else:
            self._lib.repro_fold_edges_wide(
                _u64(pool._alpha), _u32(pool._gamma), _u64(idx), _i64(lo64),
                _i64(hi64), idx.size, _u64(pool._mixed_membership),
                _u64(pool._mixed_checksum), pool.num_slots, pool.num_rows,
                pool.num_columns, _i64(offsets),
            )

    def fold_page(
        self, pool, entry: Tuple[np.ndarray, ...], indices: np.ndarray,
        local_dsts: np.ndarray,
    ) -> None:
        """Fold one page's column into its pinned tensors (paged pool)."""
        idx = _as_u64(indices)
        dst = _as_i64(local_dsts)
        offsets = pool._combined_offsets
        if pool._packed:
            self._lib.repro_fold_packed(
                _u64(entry[0]), _u64(idx), _i64(dst), idx.size,
                _u64(pool._mixed_membership), _u64(pool._mixed_checksum),
                pool.num_slots, pool.num_rows, pool.num_columns, _i64(offsets),
            )
        else:
            self._lib.repro_fold_wide(
                _u64(entry[0]), _u32(entry[1]), _u64(idx), _i64(dst), idx.size,
                _u64(pool._mixed_membership), _u64(pool._mixed_checksum),
                pool.num_slots, pool.num_rows, pool.num_columns, _i64(offsets),
            )

    def fold_bundle(self, sketch, indices: np.ndarray) -> None:
        """Fold edge slots into one node's whole bundle (FlatNodeSketch)."""
        idx = _as_u64(indices)
        offsets = _bundle_offsets(sketch.num_slots)
        self._lib.repro_fold_sep64(
            _u64(sketch._alpha), _u64(sketch._gamma), _u64(idx), None,
            idx.size, _u64(sketch._mixed_membership),
            _u64(sketch._mixed_checksum), sketch.num_slots, sketch.num_rows,
            0, _i64(offsets),
        )

    # ------------------------------------------------------------------
    # query-side kernels
    # ------------------------------------------------------------------
    def segment_xor(
        self,
        slab: np.ndarray,
        nodes: np.ndarray,
        seg_starts: np.ndarray,
        col_start: int,
        col_stop: int,
        num_rows: int,
    ) -> np.ndarray:
        """Fused gather + per-segment XOR over one round slab.

        ``slab`` is the ``(num_nodes, cols, rows)`` round view (uint64
        packed/alpha or uint32 gamma); returns the
        ``(num_segments, (col_stop - col_start) * rows)`` per-segment
        XOR of rows ``nodes`` grouped by ``seg_starts`` -- bit-identical
        to gathering and reducing with
        :func:`~repro.sketch.flat_node_sketch.segmented_xor`.
        """
        slab = np.ascontiguousarray(slab)
        nodes = _as_i64(nodes)
        starts = _as_i64(seg_starts)
        width = (col_stop - col_start) * num_rows
        node_stride = slab.shape[1] * slab.shape[2]
        base_off = col_start * num_rows
        out = np.empty((starts.size, width), dtype=slab.dtype)
        if slab.dtype == np.uint64:
            self._lib.repro_seg_xor_u64(
                _u64(slab), node_stride, base_off, width, _i64(nodes),
                nodes.size, _i64(starts), starts.size, _u64(out),
            )
        else:
            self._lib.repro_seg_xor_u32(
                _u32(slab), node_stride, base_off, width, _i64(nodes),
                nodes.size, _i64(starts), starts.size, _u32(out),
            )
        return out

    def decode_column(
        self,
        alpha: np.ndarray,
        gamma: np.ndarray,
        vector_length: int,
        mixed_seed: np.uint64,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode one column's buckets for many components at once.

        Same contract (and bit-identical results) as
        :func:`~repro.sketch.flat_node_sketch.decode_column_batch`.
        """
        alpha = _as_u64(alpha)
        gamma = _as_u64(gamma)
        count, num_rows = alpha.shape
        good = np.empty(count, dtype=np.uint8)
        zero = np.empty(count, dtype=np.uint8)
        index = np.empty(count, dtype=np.int64)
        self._lib.repro_decode_column(
            _u64(alpha), _u64(gamma), count, num_rows,
            np.uint64(vector_length), np.uint64(mixed_seed),
            good.ctypes.data_as(_U8P), zero.ctypes.data_as(_U8P), _i64(index),
        )
        return good.view(np.bool_), zero.view(np.bool_), index


_OFFSET_CACHE: dict = {}


def _bundle_offsets(num_slots: int) -> np.ndarray:
    """Identity slot offsets for single-bundle (slot-major) folds."""
    cached = _OFFSET_CACHE.get(num_slots)
    if cached is None:
        cached = np.arange(num_slots, dtype=np.int64)
        _OFFSET_CACHE[num_slots] = cached
    return cached
