"""Further graph-analytics algorithms built on the connectivity sketches.

Section 3.1 of the paper notes that CubeSketch "may be useful for other
sketching algorithms for problems such as edge- or vertex-connectivity,
testing bipartiteness, and finding minimum spanning trees and densest
subgraphs", all of which reduce to (repeated) cut sampling in the AGM
framework.  This package implements the reductions that need nothing
beyond the connectivity primitive this library already provides:

* :mod:`repro.algorithms.bipartiteness` -- single-pass bipartiteness
  testing via the doubled-graph reduction,
* :mod:`repro.algorithms.edge_connectivity` -- k-edge-connectivity
  certificates from k iterated sketch spanning forests, plus bridge
  finding and min-cut lower bounds derived from the certificate.

These are extensions beyond the paper's evaluation; they are exercised
by the test suite and the examples but have no corresponding benchmark
figure.
"""

from repro.algorithms.bipartiteness import BipartitenessSketch, is_bipartite
from repro.algorithms.edge_connectivity import (
    ConnectivityCertificate,
    EdgeConnectivitySketch,
    find_bridges,
)

__all__ = [
    "BipartitenessSketch",
    "ConnectivityCertificate",
    "EdgeConnectivitySketch",
    "find_bridges",
    "is_bipartite",
]
