"""k-edge-connectivity certificates from iterated sketch spanning forests.

The Ahn-Guha-McGregor construction for edge connectivity maintains ``k``
independent connectivity sketches.  At query time it peels spanning
forests: ``F_1`` is a spanning forest of ``G``; the edges of ``F_1`` are
deleted (by linearity, toggling them in the remaining sketches) and
``F_2`` is a spanning forest of ``G - F_1``; and so on.  The union
``F_1 ∪ ... ∪ F_k`` is a *sparse certificate*: a subgraph with at most
``k (V - 1)`` edges that preserves every cut of size up to ``k``.  In
particular

* ``G`` is k-edge-connected  iff  the certificate is k-edge-connected,
* every cut of ``G`` with fewer than ``k`` edges appears with its exact
  edge set in the certificate, so bridges (cut edges) of ``G`` are
  exactly the bridges of the certificate when ``k >= 2``.

This module implements the sketch-side peeling on top of
:class:`~repro.core.graph_zeppelin.GraphZeppelin` plus the exact
post-processing (certificate connectivity, bridges, a min-cut lower
bound check) needed to answer the queries.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.config import GraphZeppelinConfig
from repro.core.dsu import DisjointSetUnion
from repro.core.graph_zeppelin import GraphZeppelin
from repro.exceptions import ConfigurationError
from repro.types import Edge, EdgeUpdate, canonical_edge


@dataclass(frozen=True)
class ConnectivityCertificate:
    """The union of the peeled spanning forests.

    Attributes
    ----------
    num_nodes:
        Node count of the underlying graph.
    k:
        Number of forests peeled (the certificate preserves cuts of size
        up to ``k``).
    forests:
        The individual forests, in peeling order.
    """

    num_nodes: int
    k: int
    forests: Tuple[Tuple[Edge, ...], ...]

    @property
    def edges(self) -> Set[Edge]:
        """All distinct edges of the certificate."""
        return {edge for forest in self.forests for edge in forest}

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def is_connected(self) -> bool:
        dsu = DisjointSetUnion(self.num_nodes)
        dsu.add_edges(self.edges)
        return dsu.num_components == 1

    def is_k_edge_connected(self, k: Optional[int] = None) -> bool:
        """Whether the certificate is k-edge-connected (k defaults to self.k).

        Uses the exact characterisation on the certificate subgraph: for
        every edge subset of size ``k - 1`` removed... is exponential, so
        instead we use the standard equivalent test via repeated
        global-min-cut lower bounding: the certificate is k-edge-connected
        iff its minimum degree is >= k and removing any single forest
        still leaves it (k-1)-edge-connected.  For the values of ``k``
        used in practice (small constants) we run the exact Stoer-Wagner
        style contraction on the certificate, which has only
        ``O(k V)`` edges.
        """
        target = self.k if k is None else k
        if target < 1:
            raise ValueError("k must be at least 1")
        if target > self.k:
            raise ValueError(
                f"certificate only preserves cuts up to size {self.k}; cannot test k={target}"
            )
        if not self.is_connected():
            return False
        return _min_cut_at_least(self.num_nodes, self.edges, target)

    def bridges(self) -> List[Edge]:
        """Bridges (cut edges) of the certificate.

        When the certificate was built with ``k >= 2`` these are exactly
        the bridges of the original graph restricted to nodes the stream
        connected.
        """
        return _find_bridges(self.num_nodes, self.edges)

    def min_cut_lower_bound(self) -> int:
        """Largest ``c <= k`` such that the certificate is c-edge-connected.

        This equals ``min(k, edge connectivity of G)`` for the connected
        case, and 0 when the certificate (hence the graph) is disconnected.
        """
        if not self.is_connected():
            return 0
        bound = 1
        for candidate in range(2, self.k + 1):
            if _min_cut_at_least(self.num_nodes, self.edges, candidate):
                bound = candidate
            else:
                break
        return bound


class EdgeConnectivitySketch:
    """Dynamic-stream k-edge-connectivity via k independent sketch copies.

    Parameters
    ----------
    num_nodes:
        Number of graph nodes.
    k:
        Number of spanning forests to peel at query time; the certificate
        answers cut questions up to size ``k``.
    config:
        Optional base configuration; copy ``i`` derives its seed from
        ``config.seed`` and ``i`` so the copies are independent.
    """

    def __init__(
        self,
        num_nodes: int,
        k: int = 2,
        config: Optional[GraphZeppelinConfig] = None,
    ) -> None:
        if num_nodes < 2:
            raise ConfigurationError("edge connectivity needs at least two nodes")
        if k < 1:
            raise ConfigurationError("k must be at least 1")
        self.num_nodes = int(num_nodes)
        self.k = int(k)
        base = config or GraphZeppelinConfig()
        self._engines: List[GraphZeppelin] = []
        for copy_index in range(self.k):
            copy_config = GraphZeppelinConfig(
                delta=base.delta,
                buffering=base.buffering,
                gutter_fraction=base.gutter_fraction,
                ram_budget_bytes=base.ram_budget_bytes,
                num_workers=base.num_workers,
                validate_stream=False,
                strict_queries=base.strict_queries,
                seed=(base.seed * 1_000_003 + copy_index) & 0xFFFFFFFF,
            )
            self._engines.append(GraphZeppelin(num_nodes, config=copy_config))
        self._updates_processed = 0

    # ------------------------------------------------------------------
    def edge_update(self, u: int, v: int) -> None:
        """Toggle edge ``{u, v}`` in every sketch copy."""
        u, v = canonical_edge(u, v)
        for engine in self._engines:
            engine.edge_update(u, v)
        self._updates_processed += 1

    def insert(self, u: int, v: int) -> None:
        self.edge_update(u, v)

    def delete(self, u: int, v: int) -> None:
        self.edge_update(u, v)

    def apply_update(self, update: EdgeUpdate) -> None:
        self.edge_update(update.u, update.v)

    def ingest(self, updates: Iterable[EdgeUpdate]) -> int:
        count = 0
        for update in updates:
            self.apply_update(update)
            count += 1
        return count

    # ------------------------------------------------------------------
    def certificate(self) -> ConnectivityCertificate:
        """Peel k spanning forests and return the sparse certificate.

        The peeling deletes each recovered forest from every *later*
        sketch copy (linearity makes a deletion just another toggle), so
        copy ``i`` ends up sketching ``G - F_1 - ... - F_i``.  The copies
        are left in that peeled state; callers that need to continue the
        stream afterwards should re-apply the forests, which
        :meth:`certificate_and_restore` does automatically.
        """
        forests: List[Tuple[Edge, ...]] = []
        removed: List[Edge] = []
        for copy_index, engine in enumerate(self._engines):
            # Remove everything peeled so far from this copy.
            for edge in removed:
                engine.edge_update(*edge)
            forest = engine.list_spanning_forest()
            forests.append(tuple(forest.edges))
            removed.extend(forest.edges)
        return ConnectivityCertificate(
            num_nodes=self.num_nodes, k=self.k, forests=tuple(forests)
        )

    def certificate_and_restore(self) -> ConnectivityCertificate:
        """Like :meth:`certificate`, but leaves the sketches unchanged.

        The peeling toggles are undone afterwards (again by linearity),
        so the stream can continue and later queries see the full graph.
        """
        certificate = self.certificate()
        # Undo: copy i had forests F_1 .. F_i removed.
        cumulative: List[Edge] = []
        for copy_index, engine in enumerate(self._engines):
            for edge in cumulative:
                engine.edge_update(*edge)
            cumulative.extend(certificate.forests[copy_index])
        return certificate

    # ------------------------------------------------------------------
    def is_k_edge_connected(self) -> bool:
        """Whether the streamed graph is k-edge-connected (w.h.p.)."""
        return self.certificate_and_restore().is_k_edge_connected()

    def bridges(self) -> List[Edge]:
        """Bridges of the streamed graph (requires ``k >= 2``)."""
        if self.k < 2:
            raise ConfigurationError("bridge finding needs a certificate with k >= 2")
        return self.certificate_and_restore().bridges()

    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    def sketch_bytes(self) -> int:
        return sum(engine.sketch_bytes() for engine in self._engines)

    def __repr__(self) -> str:
        return (
            f"EdgeConnectivitySketch(num_nodes={self.num_nodes}, k={self.k}, "
            f"updates={self._updates_processed})"
        )


# ----------------------------------------------------------------------
# exact post-processing on the (small) certificate
# ----------------------------------------------------------------------
def _find_bridges(num_nodes: int, edges: Iterable[Edge]) -> List[Edge]:
    """Bridges of an undirected graph via iterative Tarjan low-link."""
    adjacency: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
    edge_list = list(edges)
    for edge_id, (u, v) in enumerate(edge_list):
        adjacency[u].append((v, edge_id))
        adjacency[v].append((u, edge_id))

    discovery = [-1] * num_nodes
    low = [0] * num_nodes
    bridges: List[Edge] = []
    timer = 0

    for start in range(num_nodes):
        if discovery[start] != -1 or start not in adjacency:
            continue
        # Iterative DFS: stack entries are (node, parent_edge_id, neighbor cursor).
        stack = [(start, -1, iter(adjacency[start]))]
        discovery[start] = low[start] = timer
        timer += 1
        while stack:
            node, parent_edge, neighbors = stack[-1]
            advanced = False
            for neighbor, edge_id in neighbors:
                if edge_id == parent_edge:
                    continue
                if discovery[neighbor] == -1:
                    discovery[neighbor] = low[neighbor] = timer
                    timer += 1
                    stack.append((neighbor, edge_id, iter(adjacency[neighbor])))
                    advanced = True
                    break
                low[node] = min(low[node], discovery[neighbor])
            if advanced:
                continue
            stack.pop()
            if stack:
                parent = stack[-1][0]
                low[parent] = min(low[parent], low[node])
                if low[node] > discovery[parent]:
                    u, v = edge_list[parent_edge]
                    bridges.append((u, v) if u < v else (v, u))
    return sorted(bridges)


def _min_cut_at_least(num_nodes: int, edges: Set[Edge], k: int) -> bool:
    """Whether every cut separating two *connected* nodes has >= k edges.

    Runs the Stoer-Wagner minimum-cut algorithm restricted to each
    connected component of the certificate (isolated nodes are ignored:
    they carry no cut the certificate is responsible for).
    """
    if k <= 0:
        return True
    # Group edges by component.
    dsu = DisjointSetUnion(num_nodes)
    dsu.add_edges(edges)
    components: Dict[int, List[Edge]] = defaultdict(list)
    for u, v in edges:
        components[dsu.find(u)].append((u, v))
    for component_edges in components.values():
        nodes = sorted({node for edge in component_edges for node in edge})
        if len(nodes) < 2:
            continue
        if _stoer_wagner_min_cut(nodes, component_edges) < k:
            return False
    return True


def _stoer_wagner_min_cut(nodes: List[int], edges: List[Edge]) -> int:
    """Stoer-Wagner global minimum cut (unit edge weights)."""
    index = {node: position for position, node in enumerate(nodes)}
    size = len(nodes)
    weights = [[0] * size for _ in range(size)]
    for u, v in edges:
        weights[index[u]][index[v]] += 1
        weights[index[v]][index[u]] += 1

    active = list(range(size))
    best = float("inf")
    while len(active) > 1:
        # Maximum adjacency ordering.
        in_a = [False] * size
        candidate_weights = [0] * size
        order = []
        for _ in range(len(active)):
            selected = max(
                (node for node in active if not in_a[node]),
                key=lambda node: candidate_weights[node],
            )
            in_a[selected] = True
            order.append(selected)
            for node in active:
                if not in_a[node]:
                    candidate_weights[node] += weights[selected][node]
        last, second_last = order[-1], order[-2]
        best = min(best, candidate_weights[last])
        # Merge the last two nodes of the ordering.
        for node in active:
            if node not in (last, second_last):
                weights[second_last][node] += weights[last][node]
                weights[node][second_last] = weights[second_last][node]
        active.remove(last)
    return int(best)


def find_bridges(num_nodes: int, edges: Iterable[Tuple[int, int]]) -> List[Edge]:
    """Bridges of a static edge list (exact, convenience wrapper)."""
    canonical = {canonical_edge(u, v) for u, v in edges}
    return _find_bridges(num_nodes, canonical)
