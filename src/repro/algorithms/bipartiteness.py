"""Streaming bipartiteness testing via the doubled-graph reduction.

A graph ``G`` is bipartite iff it contains no odd cycle.  The classical
sketching reduction (Ahn-Guha-McGregor) builds the *bipartite double
cover* ``D(G)``: every node ``v`` becomes two nodes ``v0`` and ``v1``,
and every edge ``{u, v}`` becomes the two edges ``{u0, v1}`` and
``{u1, v0}``.  Then

    ``G`` is bipartite  iff  ``D(G)`` has exactly twice as many
    connected components as ``G``

(an odd cycle in ``G`` folds its double cover into a single component,
an even cycle keeps two).  Both component counts are exactly what the
connectivity sketch computes, so bipartiteness costs two GraphZeppelin
instances and inherits their space bounds and failure probability.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.exceptions import ConfigurationError
from repro.types import EdgeUpdate, UpdateType, canonical_edge


class BipartitenessSketch:
    """Single-pass bipartiteness tester over a dynamic edge stream.

    Parameters
    ----------
    num_nodes:
        Number of nodes of the input graph ``G``.
    config:
        Optional engine configuration shared by the two underlying
        GraphZeppelin instances (the double-cover instance derives its
        seed from the configured one so the two stay independent).
    """

    def __init__(self, num_nodes: int, config: Optional[GraphZeppelinConfig] = None) -> None:
        if num_nodes < 2:
            raise ConfigurationError("bipartiteness needs at least two nodes")
        self.num_nodes = int(num_nodes)
        base_config = config or GraphZeppelinConfig()
        cover_config = GraphZeppelinConfig(
            delta=base_config.delta,
            buffering=base_config.buffering,
            gutter_fraction=base_config.gutter_fraction,
            ram_budget_bytes=base_config.ram_budget_bytes,
            num_workers=base_config.num_workers,
            validate_stream=False,
            strict_queries=base_config.strict_queries,
            seed=base_config.seed ^ 0x5F5F5F5F,
        )
        self._graph = GraphZeppelin(num_nodes, config=base_config)
        self._double_cover = GraphZeppelin(2 * num_nodes, config=cover_config)
        self._updates_processed = 0

    # ------------------------------------------------------------------
    def edge_update(self, u: int, v: int) -> None:
        """Toggle edge ``{u, v}`` in the graph and its double cover."""
        u, v = canonical_edge(u, v)
        if v >= self.num_nodes:
            raise ValueError(f"node {v} outside [0, {self.num_nodes})")
        self._graph.edge_update(u, v)
        # Double cover: {u0, v1} and {u1, v0}, with x0 = x and x1 = x + V.
        self._double_cover.edge_update(u, v + self.num_nodes)
        self._double_cover.edge_update(u + self.num_nodes, v)
        self._updates_processed += 1

    def insert(self, u: int, v: int) -> None:
        self.edge_update(u, v)

    def delete(self, u: int, v: int) -> None:
        self.edge_update(u, v)

    def apply_update(self, update: EdgeUpdate) -> None:
        self.edge_update(update.u, update.v)

    def ingest(self, updates: Iterable[EdgeUpdate]) -> int:
        count = 0
        for update in updates:
            self.apply_update(update)
            count += 1
        return count

    # ------------------------------------------------------------------
    def is_bipartite(self) -> bool:
        """Whether the current graph is bipartite (correct w.h.p.)."""
        graph_components = self._graph.list_spanning_forest().num_components
        cover_components = self._double_cover.list_spanning_forest().num_components
        return cover_components == 2 * graph_components

    def component_counts(self) -> tuple[int, int]:
        """``(components of G, components of the double cover)`` -- the raw
        quantities the bipartiteness decision is made from."""
        return (
            self._graph.list_spanning_forest().num_components,
            self._double_cover.list_spanning_forest().num_components,
        )

    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    def sketch_bytes(self) -> int:
        """Total sketch space of both underlying engines."""
        return self._graph.sketch_bytes() + self._double_cover.sketch_bytes()

    def __repr__(self) -> str:
        return (
            f"BipartitenessSketch(num_nodes={self.num_nodes}, "
            f"updates={self._updates_processed})"
        )


def is_bipartite(
    num_nodes: int,
    edges: Iterable[tuple],
    seed: int = 0,
) -> bool:
    """One-shot bipartiteness test of a static edge list (convenience)."""
    sketch = BipartitenessSketch(num_nodes, config=GraphZeppelinConfig(seed=seed))
    for u, v in edges:
        sketch.edge_update(u, v)
    return sketch.is_bipartite()
