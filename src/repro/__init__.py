"""repro: a from-scratch reproduction of GraphZeppelin (SIGMOD 2022).

GraphZeppelin computes the connected components of a dynamic graph
stream (edge insertions *and* deletions) using linear sketches whose
total size is asymptotically smaller than the graph itself.  The
package provides:

* the :class:`~repro.core.graph_zeppelin.GraphZeppelin` engine and its
  :class:`~repro.sketch.cubesketch.CubeSketch` l0-sampler,
* the general-purpose l0-sampler and the StreamingCC baseline the paper
  compares against,
* stream generators (Graph500 Kronecker and friends), the hybrid
  RAM+disk substrate, buffering structures, and simplified Aspen-like /
  Terrace-like comparators used by the evaluation harness.

Quickstart::

    from repro import GraphZeppelin

    gz = GraphZeppelin(num_nodes=8)
    gz.insert(0, 1)
    gz.insert(1, 2)
    gz.insert(4, 5)
    gz.delete(1, 2)
    forest = gz.list_spanning_forest()
    print(forest.components())
"""

from repro.core.config import BufferingMode, GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.core.spanning_forest import SpanningForest
from repro.core.streaming_cc import StreamingCC
from repro.sketch.cubesketch import CubeSketch
from repro.sketch.standard_l0 import StandardL0Sketch
from repro.types import Edge, EdgeUpdate, UpdateType
from repro.version import __version__

__all__ = [
    "BufferingMode",
    "CubeSketch",
    "Edge",
    "EdgeUpdate",
    "GraphZeppelin",
    "GraphZeppelinConfig",
    "SpanningForest",
    "StandardL0Sketch",
    "StreamingCC",
    "UpdateType",
    "__version__",
]
