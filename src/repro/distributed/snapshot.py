"""Pool snapshots: a whole tensor pool as one versioned binary blob.

The on-disk format (version 2, all integers little-endian)::

    header (12 fields, 96 bytes):
        magic        uint64  "SNAP" + format version in the low word
        flags        uint64  bit 0: packed buckets; bit 1: written by a
                             paged pool (informational)
        num_nodes    uint64
        graph_seed   uint64  (masked to 64 bits, as the sketch blobs do)
        num_rounds   uint64
        num_rows     uint64
        num_columns  uint64
        delta        float64
        pool_updates uint64  the pool's updates_applied counter
        stream_offset uint64 how many stream updates produced this state
        engine_updates uint64 the engine's updates_processed counter
        fingerprint  uint64  GraphZeppelinConfig.sketch_fingerprint()
    payload:
        the round-major ``(rounds, nodes, cols, rows)`` bucket tensor in
        C order -- the packed uint64 tensor, or the uint64 alpha tensor
        followed by the uint32 gamma tensor in wide mode.
    digest trailer (version >= 2):
        one ``uint64`` :func:`~repro.integrity.digest.payload_digest`
        per (section, round) stripe, section-major (``sections x
        rounds`` entries), letting every loader reject a silently
        corrupted payload before any pool mutation.  Version-1 files
        have no trailer; they still load, flagged unverified
        (``SnapshotMeta.verified`` false).

Round-major payload order is what makes snapshots cheap for *both* pool
flavours: a flat :class:`~repro.sketch.tensor_pool.NodeTensorPool`
writes its tensors as a straight memory dump, while a
:class:`~repro.sketch.paged_pool.PagedTensorPool` streams one page's
round stripe at a time through :class:`~repro.memory.hybrid.HybridMemory`
(resident pages serve live tensors, spilled pages pay partial-range
reads) -- the whole pool is never materialised in RAM, going in either
direction.

Because sketches are linear, snapshots are also the unit of
*distribution*: :func:`merge_snapshots` XOR-combines the pools of K
disjoint sub-streams into the pool of their union, bit-identically to
serial ingestion.  Every loader validates the full header -- and, for
merges, pairwise compatibility of every input -- before a single bucket
is touched, so a bad file raises a clear
:class:`~repro.exceptions.StreamFormatError` and leaves the target pool
unmutated.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, replace
from pathlib import Path
from typing import BinaryIO, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.edge_encoding import EdgeEncoder
from repro.exceptions import CorruptionError, StreamFormatError
from repro.integrity.digest import StreamingDigest, payload_digest
from repro.memory.hybrid import HybridMemory
from repro.observability.tracing import span
from repro.sketch.paged_pool import PagedTensorPool
from repro.sketch.serialization import check_magic, check_payload_length
from repro.sketch.tensor_pool import NodeTensorPool

PathLike = Union[str, Path]

#: Magic identifying a pool snapshot ("SNAP" + format version 2).
SNAPSHOT_MAGIC = 0x534E4150_00000002
#: The pre-digest format (no trailer); still readable, never written.
SNAPSHOT_MAGIC_V1 = 0x534E4150_00000001

_FLAG_PACKED = 1 << 0
_FLAG_PAGED_ORIGIN = 1 << 1
#: Set on snapshots produced by merging: their state is a *union* of
#: sub-streams, not a prefix of any one stream, so resuming a stream on
#: top of one would XOR-cancel the already-folded updates.
_FLAG_MERGED = 1 << 2

_HEADER = struct.Struct("<7QdQQQQ")

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Elements per chunk of the streaming flat read/XOR loop (uint64 ->
#: 8 MiB per chunk).
_CHUNK_ELEMS = 1 << 20


@dataclass(frozen=True)
class SnapshotMeta:
    """Everything a snapshot header records about the pool it holds."""

    num_nodes: int
    graph_seed: int
    delta: float
    num_rounds: int
    num_rows: int
    num_columns: int
    packed: bool
    paged_origin: bool
    pool_updates: int
    stream_offset: int
    engine_updates: int
    fingerprint: int
    #: True for snapshots produced by a merge: a union of sub-streams,
    #: not a resumable stream prefix (``stream_offset`` is meaningless).
    merged: bool = False
    #: On-disk format version (embedded in the magic).
    version: int = 2
    #: Per-(section, round) payload digests, section-major; ``None`` for
    #: version-1 files, which carry none (loaded but unverified).
    stripe_digests: Optional[Tuple[int, ...]] = None

    @property
    def tensor_elems(self) -> int:
        return self.num_rounds * self.num_nodes * self.num_columns * self.num_rows

    @property
    def payload_bytes(self) -> int:
        """Exact payload length implied by the geometry."""
        if self.packed:
            return self.tensor_elems * 8
        return self.tensor_elems * 12  # uint64 alpha + uint32 gamma

    @property
    def digest_section_bytes(self) -> int:
        """Length of the digest trailer (zero for version-1 files)."""
        if self.version < 2:
            return 0
        return len(_section_keys(self.packed)) * self.num_rounds * 8

    @property
    def verified(self) -> bool:
        """Whether this snapshot's payload can be checksum-verified."""
        return self.stripe_digests is not None

    def section_offset(self, key: str) -> int:
        """Byte offset of a tensor section inside the snapshot file."""
        if key in ("packed", "alpha"):
            return _HEADER.size
        return _HEADER.size + self.tensor_elems * 8


def _pool_meta(
    pool: NodeTensorPool,
    stream_offset: int,
    engine_updates: int,
    fingerprint: int,
) -> SnapshotMeta:
    return SnapshotMeta(
        num_nodes=pool.num_nodes,
        graph_seed=pool.graph_seed & _MASK64,
        delta=pool.delta,
        num_rounds=pool.num_rounds,
        num_rows=pool.num_rows,
        num_columns=pool.num_columns,
        packed=pool._packed,
        paged_origin=pool.is_paged,
        pool_updates=pool.updates_applied,
        stream_offset=int(stream_offset),
        engine_updates=int(engine_updates),
        fingerprint=int(fingerprint) & _MASK64,
    )


def _pack_header(meta: SnapshotMeta) -> bytes:
    flags = (
        (_FLAG_PACKED if meta.packed else 0)
        | (_FLAG_PAGED_ORIGIN if meta.paged_origin else 0)
        | (_FLAG_MERGED if meta.merged else 0)
    )
    return _HEADER.pack(
        SNAPSHOT_MAGIC,
        flags,
        meta.num_nodes,
        meta.graph_seed,
        meta.num_rounds,
        meta.num_rows,
        meta.num_columns,
        meta.delta,
        meta.pool_updates,
        meta.stream_offset,
        meta.engine_updates,
        meta.fingerprint,
    )


def _section_keys(packed: bool) -> Tuple[str, ...]:
    return ("packed",) if packed else ("alpha", "gamma")


def _flat_tensors(pool: NodeTensorPool) -> List[np.ndarray]:
    if pool._packed:
        return [pool._buckets]
    return [pool._alpha, pool._gamma]


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def save_pool_snapshot(
    pool: NodeTensorPool,
    path: PathLike,
    stream_offset: int = 0,
    engine_updates: int = 0,
    fingerprint: int = 0,
    merged: bool = False,
) -> SnapshotMeta:
    """Serialise a whole pool -- flat or paged -- to ``path``.

    The file is written to a temporary sibling and atomically renamed
    into place, so a crash mid-snapshot never leaves a half-written
    checkpoint where a resumable one is expected.  A paged pool is
    streamed one page round stripe at a time (never materialised);
    ``stream_offset`` / ``engine_updates`` / ``fingerprint`` are the
    engine-level metadata stamped into the header.  Every round
    stripe's digest is accumulated as its bytes stream out and appended
    as the trailer, so checksumming never costs a second pass over the
    payload.  Returns the metadata written (digests included).
    """
    path = Path(path)
    meta = replace(
        _pool_meta(pool, stream_offset, engine_updates, fingerprint), merged=merged
    )
    digests: List[int] = []
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with span("snapshot.save"):
            with tmp_path.open("wb") as handle:
                handle.write(_pack_header(meta))
                if pool.is_paged:
                    for key in _section_keys(meta.packed):
                        for round_index in range(meta.num_rounds):
                            digest = StreamingDigest()
                            for page in range(pool.num_pages):
                                stripe = pool._page_round_array(page, key, round_index)
                                data = np.ascontiguousarray(stripe).tobytes(order="C")
                                digest.update(data)
                                handle.write(data)
                            digests.append(digest.digest())
                else:
                    for tensor in _flat_tensors(pool):
                        for round_index in range(meta.num_rounds):
                            data = np.ascontiguousarray(tensor[round_index]).tobytes(
                                order="C"
                            )
                            digests.append(payload_digest(data))
                            handle.write(data)
                handle.write(struct.pack(f"<{len(digests)}Q", *digests))
            with span("snapshot.promote"):
                os.replace(tmp_path, path)
    except BaseException:
        # A failed write must not leave a half-written .tmp sibling
        # around (checkpoint rotation would otherwise accumulate them).
        tmp_path.unlink(missing_ok=True)
        raise
    return replace(meta, stripe_digests=tuple(digests))


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def read_snapshot_meta(path: PathLike) -> SnapshotMeta:
    """Read and fully validate a snapshot's header (not its payload).

    Checks the magic (which embeds the format version), and that the
    file holds *exactly* the payload + digest trailer the geometry
    implies -- truncated or padded files fail here, before any loader
    mutates a pool.  Version-2 files come back with their stripe
    digests parsed; version-1 files load with ``stripe_digests=None``
    (readable, but unverifiable).
    """
    path = Path(path)
    file_bytes = path.stat().st_size
    if file_bytes < _HEADER.size:
        raise StreamFormatError(f"{path}: too short to contain a snapshot header")
    with path.open("rb") as handle:
        header = handle.read(_HEADER.size)
        (
            magic,
            flags,
            num_nodes,
            graph_seed,
            num_rounds,
            num_rows,
            num_columns,
            delta,
            pool_updates,
            stream_offset,
            engine_updates,
            fingerprint,
        ) = _HEADER.unpack(header)
        if magic == SNAPSHOT_MAGIC:
            version = 2
        elif magic == SNAPSHOT_MAGIC_V1:
            version = 1
        else:
            check_magic(magic, SNAPSHOT_MAGIC, "snapshot")
        meta = SnapshotMeta(
            num_nodes=int(num_nodes),
            graph_seed=int(graph_seed),
            delta=float(delta),
            num_rounds=int(num_rounds),
            num_rows=int(num_rows),
            num_columns=int(num_columns),
            packed=bool(flags & _FLAG_PACKED),
            paged_origin=bool(flags & _FLAG_PAGED_ORIGIN),
            merged=bool(flags & _FLAG_MERGED),
            pool_updates=int(pool_updates),
            stream_offset=int(stream_offset),
            engine_updates=int(engine_updates),
            fingerprint=int(fingerprint),
            version=version,
        )
        check_payload_length(
            file_bytes - _HEADER.size - meta.digest_section_bytes,
            meta.payload_bytes,
            f"{path} snapshot payload",
        )
        if version >= 2:
            handle.seek(_HEADER.size + meta.payload_bytes)
            raw = handle.read(meta.digest_section_bytes)
            count = meta.digest_section_bytes // 8
            meta = replace(meta, stripe_digests=struct.unpack(f"<{count}Q", raw))
    return meta


def verify_snapshot_payload(
    path: PathLike, meta: Optional[SnapshotMeta] = None
) -> SnapshotMeta:
    """Verify every round stripe of a snapshot against its digests.

    One sequential pass over the payload; raises
    :class:`~repro.exceptions.CorruptionError` naming the first
    mismatching stripe.  Version-1 snapshots carry no digests and pass
    through unverified (``meta.verified`` stays false) -- rejecting
    them would break every pre-digest checkpoint on disk.  Returns the
    (possibly freshly read) metadata.
    """
    path = Path(path)
    if meta is None:
        meta = read_snapshot_meta(path)
    if meta.stripe_digests is None:
        return meta
    row_elems = meta.num_columns * meta.num_rows
    index = 0
    with path.open("rb") as handle:
        handle.seek(_HEADER.size)
        for key in _section_keys(meta.packed):
            itemsize = 8 if key in ("packed", "alpha") else 4
            stripe_bytes = meta.num_nodes * row_elems * itemsize
            for round_index in range(meta.num_rounds):
                digest = StreamingDigest()
                remaining = stripe_bytes
                while remaining:
                    data = handle.read(min(remaining, _CHUNK_ELEMS * 8))
                    if not data:
                        raise StreamFormatError(
                            f"{path}: snapshot payload truncated mid-read"
                        )
                    digest.update(data)
                    remaining -= len(data)
                if digest.digest() != meta.stripe_digests[index]:
                    raise CorruptionError(
                        f"{path}: payload checksum mismatch "
                        f"({key} section, round {round_index})"
                    )
                index += 1
    return meta


def _check_pool_matches(meta: SnapshotMeta, pool: NodeTensorPool, what: str) -> None:
    """Reject a snapshot/pool pairing before any bucket is touched."""
    mismatches = []
    for field, pool_value in (
        ("num_nodes", pool.num_nodes),
        ("num_rounds", pool.num_rounds),
        ("num_rows", pool.num_rows),
        ("num_columns", pool.num_columns),
    ):
        if getattr(meta, field) != pool_value:
            mismatches.append(f"{field} {getattr(meta, field)} vs {pool_value}")
    if mismatches:
        raise StreamFormatError(f"{what}: geometry mismatch ({'; '.join(mismatches)})")
    if meta.graph_seed != pool.graph_seed & _MASK64:
        raise StreamFormatError(
            f"{what}: written under graph seed {meta.graph_seed}, "
            f"pool uses {pool.graph_seed & _MASK64}"
        )
    if meta.packed != pool._packed:
        raise StreamFormatError(
            f"{what}: bucket mode mismatch "
            f"({'packed' if meta.packed else 'wide'} snapshot, "
            f"{'packed' if pool._packed else 'wide'} pool)"
        )


def _apply_flat(handle: BinaryIO, pool: NodeTensorPool, xor: bool) -> None:
    """Stream a snapshot payload into a flat pool's tensors, chunked."""
    for tensor in _flat_tensors(pool):
        flat = tensor.reshape(-1)
        position = 0
        while position < flat.size:
            count = min(_CHUNK_ELEMS, flat.size - position)
            data = handle.read(count * flat.itemsize)
            if len(data) != count * flat.itemsize:
                raise StreamFormatError("snapshot payload truncated mid-read")
            chunk = np.frombuffer(data, dtype=flat.dtype, count=count)
            if xor:
                flat[position : position + count] ^= chunk
            else:
                flat[position : position + count] = chunk
            position += count


def _read_page_tensors(
    handle: BinaryIO, meta: SnapshotMeta, pool: PagedTensorPool, page: int
) -> Tuple[np.ndarray, ...]:
    """Read one page's ``(rounds, page_nodes, cols, rows)`` tensors.

    Gathers the page's node-range stripe of every round from the
    round-major payload with seeks -- the paged counterpart of the flat
    memory dump, sized at one page regardless of pool size.  Tail pages
    come back zero-padded to the uniform page shape.
    """
    lo, hi = pool.page_span(page)
    nodes = hi - lo
    row_elems = meta.num_columns * meta.num_rows
    tensors = []
    for key, dtype in (
        (("packed", np.uint64),) if meta.packed else (("alpha", np.uint64), ("gamma", np.uint32))
    ):
        itemsize = np.dtype(dtype).itemsize
        tensor = np.zeros(pool._page_shape(), dtype=dtype)
        base = meta.section_offset(key)
        for round_index in range(meta.num_rounds):
            offset = base + (
                (round_index * meta.num_nodes + lo) * row_elems
            ) * itemsize
            handle.seek(offset)
            data = handle.read(nodes * row_elems * itemsize)
            if len(data) != nodes * row_elems * itemsize:
                raise StreamFormatError("snapshot payload truncated mid-read")
            tensor[round_index, :nodes] = np.frombuffer(data, dtype=dtype).reshape(
                nodes, meta.num_columns, meta.num_rows
            )
        tensors.append(tensor)
    return tuple(tensors)


def _apply_paged(
    handle: BinaryIO, meta: SnapshotMeta, pool: PagedTensorPool, xor: bool
) -> None:
    """Stream a snapshot payload into a paged pool, one page at a time.

    ``xor=False`` (loading) stores each non-zero page's payload through
    the hybrid memory -- all-zero pages stay implicitly lazy, and the
    working set is not polluted with read-only loads.  ``xor=True``
    (merging) pins each page and XOR-folds in place, so the merge runs
    under the pool's normal working-set budget.
    """
    for page in range(pool.num_pages):
        tensors = _read_page_tensors(handle, meta, pool, page)
        if xor:
            entry = pool._pin(page)
            try:
                for target, source in zip(entry, tensors):
                    target ^= source
                with pool._lock:
                    pool._dirty.add(page)
            finally:
                pool._unpin(page)
        else:
            if not any(tensor.any() for tensor in tensors):
                continue
            pool.memory.store(pool._page_key(page), pool._serialize_page(page, tensors))


def load_snapshot_into(path: PathLike, pool: NodeTensorPool) -> SnapshotMeta:
    """Fill an *untouched* pool with a snapshot's bucket state.

    The pool (flat or paged, either bucket mode) must have been built
    with the same geometry and seed the snapshot records -- validated,
    along with the payload length, before anything is written.  Returns
    the snapshot's metadata; the pool's update counter is restored from
    it.
    """
    path = Path(path)
    with span("snapshot.load"):
        meta = read_snapshot_meta(path)
        _check_pool_matches(meta, pool, str(path))
        # Version-2 payloads are digest-verified end to end *before* the
        # first bucket is applied; a silently corrupted snapshot raises
        # CorruptionError here and leaves the pool untouched.
        verify_snapshot_payload(path, meta)
        with path.open("rb") as handle:
            if pool.is_paged:
                _apply_paged(handle, meta, pool, xor=False)
            else:
                handle.seek(_HEADER.size)
                _apply_flat(handle, pool, xor=False)
        pool._updates_applied = meta.pool_updates
        pool._version += 1
    return meta


def _build_pool(
    meta: SnapshotMeta,
    memory: Optional[HybridMemory],
    nodes_per_page: Optional[int],
) -> NodeTensorPool:
    """Construct an empty pool matching a snapshot's geometry."""
    encoder = EdgeEncoder(meta.num_nodes)
    if memory is not None:
        pool: NodeTensorPool = PagedTensorPool(
            meta.num_nodes,
            encoder,
            memory=memory,
            graph_seed=meta.graph_seed,
            delta=meta.delta,
            num_rounds=meta.num_rounds,
            force_wide=not meta.packed,
            nodes_per_page=nodes_per_page,
        )
    else:
        pool = NodeTensorPool(
            meta.num_nodes,
            encoder,
            graph_seed=meta.graph_seed,
            delta=meta.delta,
            num_rounds=meta.num_rounds,
            force_wide=not meta.packed,
        )
    # The derived geometry (rows from the node count, columns from
    # delta) must reproduce the recorded one, or the snapshot was
    # written by an incompatible build.
    _check_pool_matches(meta, pool, "snapshot geometry")
    return pool


def load_pool_snapshot(
    path: PathLike,
    memory: Optional[HybridMemory] = None,
    nodes_per_page: Optional[int] = None,
) -> Tuple[NodeTensorPool, SnapshotMeta]:
    """Reconstruct a pool from a snapshot file.

    With ``memory`` (a byte-budgeted
    :class:`~repro.memory.hybrid.HybridMemory`) the result is an
    out-of-core :class:`~repro.sketch.paged_pool.PagedTensorPool` --
    pages stream through the memory as they are read, so a pool far
    larger than RAM loads under the budget.  Without it the result is
    an in-RAM :class:`~repro.sketch.tensor_pool.NodeTensorPool`.  The
    snapshot's own origin does not matter: flat snapshots load paged
    and vice versa.
    """
    meta = read_snapshot_meta(path)
    pool = _build_pool(meta, memory, nodes_per_page)
    load_snapshot_into(path, pool)
    return pool, meta


# ----------------------------------------------------------------------
# merging
# ----------------------------------------------------------------------
def _check_snapshots_compatible(paths: Sequence[Path], metas: Sequence[SnapshotMeta]) -> None:
    """All-pairs compatibility, checked before any payload is read."""
    first_path, first = paths[0], metas[0]
    for path, meta in zip(paths[1:], metas[1:]):
        for field in ("num_nodes", "num_rounds", "num_rows", "num_columns", "packed"):
            if getattr(meta, field) != getattr(first, field):
                raise StreamFormatError(
                    f"{path}: {field} {getattr(meta, field)} does not match "
                    f"{first_path}'s {getattr(first, field)}"
                )
        if meta.graph_seed != first.graph_seed:
            raise StreamFormatError(
                f"{path}: graph seed {meta.graph_seed} does not match "
                f"{first_path}'s {first.graph_seed}; XOR of sketches under "
                "different hash functions is meaningless"
            )
        if meta.fingerprint != first.fingerprint:
            raise StreamFormatError(
                f"{path}: config fingerprint {meta.fingerprint:#x} does not "
                f"match {first_path}'s {first.fingerprint:#x}"
            )


def merge_snapshots_into(
    paths: Sequence[PathLike], pool: NodeTensorPool
) -> SnapshotMeta:
    """XOR every snapshot's buckets into ``pool``; returns merged metadata.

    The distributed driver's merge step: ``pool`` is typically a fresh
    engine's (all-zero) pool, so the XOR of K snapshots built from
    disjoint sub-streams leaves it bit-identical to serially ingesting
    the concatenated stream.  Every header -- and all-pairs
    compatibility -- is validated *before* the first payload byte is
    applied, so a bad input leaves the pool unmutated.  Update counters
    sum; the merged ``stream_offset`` is zero (a union of sub-streams
    is not a prefix of any one stream).
    """
    if not paths:
        raise ValueError("merge_snapshots_into needs at least one snapshot path")
    paths = [Path(p) for p in paths]
    with span("snapshot.merge"):
        metas = [read_snapshot_meta(p) for p in paths]
        for path, meta in zip(paths, metas):
            _check_pool_matches(meta, pool, str(path))
        _check_snapshots_compatible(paths, metas)
        for path, meta in zip(paths, metas):
            verify_snapshot_payload(path, meta)
        for path, meta in zip(paths, metas):
            with path.open("rb") as handle:
                if pool.is_paged:
                    _apply_paged(handle, meta, pool, xor=True)
                else:
                    handle.seek(_HEADER.size)
                    _apply_flat(handle, pool, xor=True)
        pool.mark_external_updates(sum(meta.pool_updates for meta in metas))
    return replace(
        metas[0],
        pool_updates=sum(meta.pool_updates for meta in metas),
        engine_updates=sum(meta.engine_updates for meta in metas),
        stream_offset=0,
        merged=True,
    )


def merge_snapshots(
    paths: Sequence[PathLike],
    memory: Optional[HybridMemory] = None,
    nodes_per_page: Optional[int] = None,
) -> Tuple[NodeTensorPool, SnapshotMeta]:
    """Build one pool holding the XOR of several snapshots.

    By linearity this is the pool of the *union* of the snapshots'
    update streams -- bit-identical to serially ingesting their
    concatenation.  ``memory`` selects a paged result (merged page by
    page under the RAM budget); otherwise the merge lands in an in-RAM
    pool.
    """
    if not paths:
        raise ValueError("merge_snapshots needs at least one snapshot path")
    pool = _build_pool(read_snapshot_meta(paths[0]), memory, nodes_per_page)
    meta = merge_snapshots_into(paths, pool)
    return pool, meta
