"""Distributed ingest: K independent ingestor processes, one XOR merge.

This is the stream-parallel complement of the node-sharded layer in
:mod:`repro.parallel.graph_workers`: instead of splitting the *node
space* of one pool across workers, the *stream* is partitioned
round-robin across ``num_ingestors`` worker **processes**, each of
which builds a complete, independent engine over its sub-stream (using
the sharded columnar pipeline internally, so every worker keeps the
int16-radix fold fast path), snapshots its pool, and exits.  The
coordinator then XOR-merges the snapshots straight into a fresh
queryable engine's pool -- by sketch linearity, bit-identical to
serially ingesting the whole stream.

Round-robin partitioning is deliberate: any partition works (XOR folds
commute), but round-robin keeps worker loads equal regardless of how
the stream is ordered, and a worker's slice is a strided view away.

Snapshot files are the hand-off medium because they are also the
*distribution* medium: the same driver logic runs with workers on other
machines mailing their snapshot blobs home, and a worker that dies is
re-run from its slice alone.  Locally the files live in a temporary
directory and are deleted after the merge unless ``keep_snapshots``.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.exceptions import ConfigurationError


def partition_round_robin(edges: np.ndarray, num_parts: int) -> List[np.ndarray]:
    """Deal an ``(N, 2)`` edge array round-robin into ``num_parts`` slices.

    Slice ``k`` holds rows ``k, k + num_parts, k + 2 * num_parts, ...``
    -- sizes differ by at most one row.  Slices are contiguous copies
    (they cross a process boundary, where a strided view would pickle
    its whole base array).
    """
    if num_parts < 1:
        raise ValueError("num_parts must be at least 1")
    array = np.ascontiguousarray(np.asarray(edges, dtype=np.int64))
    return [np.ascontiguousarray(array[part::num_parts]) for part in range(num_parts)]


@dataclass
class DistributedReport:
    """What a distributed run did, phase by phase."""

    num_ingestors: int
    updates_total: int = 0
    per_worker_updates: List[int] = field(default_factory=list)
    ingest_seconds: float = 0.0
    merge_seconds: float = 0.0
    snapshot_bytes: int = 0
    #: Where the worker snapshots live when they were kept (explicit
    #: ``workdir`` or ``keep_snapshots``); ``None``/empty after cleanup.
    workdir: Optional[str] = None
    snapshot_paths: List[str] = field(default_factory=list)


def _worker_ingest(task: Tuple) -> Tuple[str, int]:
    """One ingestor process: build a pool from a stream slice, snapshot it.

    Runs in a worker process.  The engine ingests through the sharded
    columnar pipeline when it holds a flat in-RAM pool (the shard-local
    fold keeps numpy's int16 radix sort even at one worker thread);
    paged pools ingest serially in chunks -- their fold planner already
    batches per page.  The snapshot records ``stream_offset=0``: a
    worker's pool is a *slice*, not a prefix, and only the merged total
    is meaningful.
    """
    num_nodes, config, edges, path, chunk_size = task
    engine = GraphZeppelin(num_nodes, config=config)
    pool = engine.tensor_pool
    if pool is not None and not pool.is_paged:
        with engine.parallel_ingestor(backend="threads") as ingestor:
            ingestor.ingest_stream(
                edges[start : start + chunk_size]
                for start in range(0, edges.shape[0], chunk_size)
            )
    else:
        for start in range(0, edges.shape[0], chunk_size):
            engine.ingest_batch(edges[start : start + chunk_size])
    engine.save_snapshot(path, stream_offset=0)
    return str(path), engine.updates_processed


def distributed_ingest(
    edges: Union[np.ndarray, "np.typing.ArrayLike"],
    num_nodes: int,
    config: Optional[GraphZeppelinConfig] = None,
    num_ingestors: int = 2,
    chunk_size: int = 1 << 14,
    workdir: Optional[Union[str, Path]] = None,
    keep_snapshots: bool = False,
) -> Tuple[GraphZeppelin, DistributedReport]:
    """Ingest one edge stream across ``num_ingestors`` processes and merge.

    Partitions ``edges`` round-robin, runs one
    :func:`_worker_ingest` process per slice, then XOR-merges the
    worker snapshots into a fresh engine built from ``config`` --
    whose forest, tensors, and update counts are bit-identical to
    serially ingesting ``edges`` on one engine (property-tested).  The
    returned report separates ingest wall time from merge time, which
    is the number the benchmark ledger tracks.

    ``config`` needs a flat sketch backend (snapshots are pool-level);
    a RAM-budgeted config works -- each worker builds its own paged
    pool and the merge runs page by page under the coordinator's
    budget.
    """
    from repro.distributed.snapshot import merge_snapshots_into
    from repro.parallel.graph_workers import process_context

    config = config or GraphZeppelinConfig()
    if config.sketch_backend != "flat":
        raise ConfigurationError(
            "distributed ingest requires the flat sketch backend "
            "(pool snapshots are the merge medium)"
        )
    if config.validate_stream:
        raise ConfigurationError(
            "distributed ingest cannot validate streams: workers only see "
            "slices, and per-slice edge tracking is not union-consistent"
        )
    if num_ingestors < 1:
        raise ValueError("num_ingestors must be at least 1")

    parts = partition_round_robin(edges, num_ingestors)
    report = DistributedReport(num_ingestors=num_ingestors)
    owns_workdir = workdir is None
    workdir = Path(
        tempfile.mkdtemp(prefix="repro-distributed-") if owns_workdir else workdir
    )
    workdir.mkdir(parents=True, exist_ok=True)
    tasks = [
        (num_nodes, config, part, str(workdir / f"ingestor-{k}.snap"), int(chunk_size))
        for k, part in enumerate(parts)
    ]
    try:
        ingest_start = time.perf_counter()
        with process_context().Pool(processes=num_ingestors) as worker_pool:
            results = worker_pool.map(_worker_ingest, tasks, chunksize=1)
        report.ingest_seconds = time.perf_counter() - ingest_start

        paths = [Path(path) for path, _ in results]
        report.per_worker_updates = [count for _, count in results]
        report.snapshot_bytes = sum(path.stat().st_size for path in paths)

        merge_start = time.perf_counter()
        engine = GraphZeppelin(num_nodes, config=config)
        meta = merge_snapshots_into(paths, engine.tensor_pool)
        engine._updates_processed = meta.engine_updates
        engine._cached_forest = None
        report.merge_seconds = time.perf_counter() - merge_start
        report.updates_total = meta.engine_updates
        if not owns_workdir or keep_snapshots:
            report.workdir = str(workdir)
            report.snapshot_paths = [str(path) for path in paths]
        return engine, report
    finally:
        if owns_workdir and not keep_snapshots:
            shutil.rmtree(workdir, ignore_errors=True)
