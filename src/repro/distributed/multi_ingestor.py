"""Distributed ingest: K supervised ingestor processes, one XOR merge.

This is the stream-parallel complement of the node-sharded layer in
:mod:`repro.parallel.graph_workers`: instead of splitting the *node
space* of one pool across workers, the *stream* is partitioned
round-robin across ``num_ingestors`` worker **processes**, each of
which builds a complete, independent engine over its sub-stream (using
the sharded columnar pipeline internally, so every worker keeps the
int16-radix fold fast path), snapshots its pool, and exits.  The
coordinator XOR-merges each snapshot the moment its worker finishes --
by sketch linearity, the final pool is bit-identical to serially
ingesting the whole stream, in *any* merge order.

Round-robin partitioning is deliberate: any partition works (XOR folds
commute), but round-robin keeps worker loads equal regardless of how
the stream is ordered, and a worker's slice is a strided view away.

Snapshot files are the hand-off medium because they are also the
*recovery* medium: a worker's slice is self-contained (edges by value
in, one snapshot file out), so a worker that dies, exits with a bad
snapshot, or straggles is simply re-run from its slice in a fresh
process -- the :class:`~repro.resilience.supervisor.WorkerSupervisor`
owns that loop.  Because the merge is a pure XOR of disjoint
sub-streams, a run that lost and re-dispatched workers produces pools
bit-identical to a fault-free run (property-tested).  Locally the files
live in a temporary directory and are deleted after the merge unless
``keep_snapshots`` -- including when the run fails.
"""

from __future__ import annotations

import pickle
import shutil
import sys
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.exceptions import ConfigurationError
from repro.observability.metrics import MetricsSnapshot, default_registry
from repro.observability.tracing import span

#: How many bytes of a worker's error file travel back in the failure
#: reason (the full traceback stays on disk until cleanup).
_ERR_TAIL_BYTES = 2048


def partition_round_robin(edges: np.ndarray, num_parts: int) -> List[np.ndarray]:
    """Deal an ``(N, 2)`` edge array round-robin into ``num_parts`` slices.

    Slice ``k`` holds rows ``k, k + num_parts, k + 2 * num_parts, ...``
    -- sizes differ by at most one row.  Slices are contiguous copies
    (they cross a process boundary, where a strided view would pickle
    its whole base array).
    """
    if num_parts < 1:
        raise ValueError("num_parts must be at least 1")
    array = np.ascontiguousarray(np.asarray(edges, dtype=np.int64))
    return [np.ascontiguousarray(array[part::num_parts]) for part in range(num_parts)]


@dataclass
class DistributedReport:
    """What a distributed run did, phase by phase."""

    num_ingestors: int
    updates_total: int = 0
    per_worker_updates: List[int] = field(default_factory=list)
    ingest_seconds: float = 0.0
    merge_seconds: float = 0.0
    snapshot_bytes: int = 0
    #: Where the worker snapshots live when they were kept (explicit
    #: ``workdir`` or ``keep_snapshots``); ``None``/empty after cleanup.
    workdir: Optional[str] = None
    snapshot_paths: List[str] = field(default_factory=list)
    #: Supervisor telemetry: spawn count per worker (1 each when the
    #: run was fault-free), total re-dispatches, straggler kills, and
    #: absolute-deadline kills.
    worker_attempts: List[int] = field(default_factory=list)
    worker_retries: int = 0
    straggler_kills: int = 0
    deadline_kills: int = 0
    #: Merged per-worker metrics registries (each worker process resets
    #: its registry, records its slice's spans/counters, and ships a
    #: snapshot back next to its pool snapshot).  ``None`` when the
    #: workers ran with observability disabled.
    metrics: Optional[MetricsSnapshot] = None


def _worker_ingest(task: Tuple) -> None:
    """One ingestor attempt: build a pool from a stream slice, snapshot it.

    Runs in a worker process under the supervisor.  The engine ingests
    through the sharded columnar pipeline when it holds a flat in-RAM
    pool (the shard-local fold keeps numpy's int16 radix sort even at
    one worker thread); paged pools ingest serially in chunks -- their
    fold planner already batches per page.  The snapshot records
    ``stream_offset=0``: a worker's pool is a *slice*, not a prefix,
    and only the merged total is meaningful.

    The chunk generator consults the fault plan before every chunk, so
    injected kills/hangs/raises land at a deterministic batch index
    regardless of ingest path.  Any exception is written to
    ``<snapshot>.err`` (the supervisor folds its tail into the failure
    record) before the non-zero exit.
    """
    num_nodes, config, edges, path, chunk_size, worker, attempt, fault_plan = task
    path = Path(path)
    err_path = path.with_suffix(path.suffix + ".err")
    err_path.unlink(missing_ok=True)
    try:
        # A forked worker inherits the parent's registry contents; reset
        # so the shipped snapshot covers exactly this attempt's work and
        # the coordinator's absorb never double-counts.
        registry = default_registry()
        registry.reset()
        with span("worker.attempt"):
            engine = GraphZeppelin(num_nodes, config=config)
            if fault_plan is not None and engine.memory is not None:
                engine.memory.fault_plan = fault_plan
            pool = engine.tensor_pool

            def chunks():
                for index, start in enumerate(range(0, edges.shape[0], chunk_size)):
                    if fault_plan is not None:
                        fault_plan.check_worker_batch(worker, attempt, index + 1)
                    yield edges[start : start + chunk_size]

            if pool is not None and not pool.is_paged:
                with engine.parallel_ingestor(backend="threads") as ingestor:
                    ingestor.ingest_stream(chunks())
            else:
                for chunk in chunks():
                    engine.ingest_batch(chunk)
            engine.save_snapshot(path, stream_offset=0)
        if registry.enabled:
            # Ship this attempt's registry back next to the snapshot (the
            # same sidecar pattern as the .err traceback); best-effort --
            # a failed metrics write must not fail a healthy ingest.
            engine.publish_metrics()
            try:
                with path.with_suffix(path.suffix + ".metrics").open("wb") as handle:
                    pickle.dump(registry.snapshot(), handle)
            except OSError:
                pass
        if fault_plan is not None:
            # Post-promote corruption hook, attempt-scoped: a ``corrupt``
            # snapshot fault bound to this attempt silently damages the
            # already-written file, exactly what the supervisor's payload
            # verification must catch; the re-dispatched attempt (a
            # different ``attempt`` value) writes clean.
            fault_plan.after_snapshot_write(path, attempt=attempt, worker=worker)
    except BaseException:
        try:
            err_path.write_text(traceback.format_exc())
        except OSError:
            pass
        sys.exit(1)


def _read_error_tail(path: Path) -> Optional[str]:
    """Last line of a worker's ``.err`` traceback, for failure context."""
    try:
        blob = path.read_bytes()[-_ERR_TAIL_BYTES:]
    except OSError:
        return None
    lines = blob.decode("utf-8", errors="replace").strip().splitlines()
    return lines[-1] if lines else None


def distributed_ingest(
    edges: Union[np.ndarray, "np.typing.ArrayLike"],
    num_nodes: int,
    config: Optional[GraphZeppelinConfig] = None,
    num_ingestors: int = 2,
    chunk_size: int = 1 << 14,
    workdir: Optional[Union[str, Path]] = None,
    keep_snapshots: bool = False,
    fault_plan=None,
    retry=None,
    straggler_timeout: Optional[float] = None,
    worker_deadline: Optional[float] = None,
) -> Tuple[GraphZeppelin, DistributedReport]:
    """Ingest one edge stream across ``num_ingestors`` processes and merge.

    Partitions ``edges`` round-robin and runs one :func:`_worker_ingest`
    process per slice under a
    :class:`~repro.resilience.supervisor.WorkerSupervisor`: a worker
    that dies, exits with an unreadable snapshot, straggles past
    ``straggler_timeout`` (once a peer has finished), or outlives the
    absolute per-attempt ``worker_deadline`` (no peer evidence needed,
    so even a cluster-wide hang is bounded) is re-dispatched from its
    slice with bounded backoff (``retry``, a
    :class:`~repro.resilience.supervisor.WorkerRetryPolicy`).  Each
    validated snapshot is XOR-merged into the coordinator's engine the
    moment it lands -- completed workers are never held up by a slow or
    re-dispatched peer -- and the final engine's forest, tensors, and
    update counts are bit-identical to serially ingesting ``edges``
    on one engine, faults or not (property-tested).  A worker that
    exhausts its retries raises
    :class:`~repro.exceptions.WorkerFailure` carrying the worker index
    and slice size.

    ``fault_plan`` (a :class:`~repro.resilience.faults.FaultPlan`)
    ships to every worker for deterministic fault injection: worker
    kills/hangs/raises at chosen batch indices and device-I/O faults in
    out-of-core configs.

    ``config`` needs a flat sketch backend (snapshots are pool-level);
    a RAM-budgeted config works -- each worker builds its own paged
    pool and the merge runs page by page under the coordinator's
    budget.
    """
    from repro.distributed.snapshot import (
        merge_snapshots_into,
        read_snapshot_meta,
        verify_snapshot_payload,
    )
    from repro.exceptions import CorruptionError
    from repro.parallel.graph_workers import process_context
    from repro.resilience.supervisor import WorkerSupervisor

    config = config or GraphZeppelinConfig()
    if config.sketch_backend != "flat":
        raise ConfigurationError(
            "distributed ingest requires the flat sketch backend "
            "(pool snapshots are the merge medium)"
        )
    if config.validate_stream:
        raise ConfigurationError(
            "distributed ingest cannot validate streams: workers only see "
            "slices, and per-slice edge tracking is not union-consistent"
        )
    if num_ingestors < 1:
        raise ValueError("num_ingestors must be at least 1")

    parts = partition_round_robin(edges, num_ingestors)
    report = DistributedReport(num_ingestors=num_ingestors)
    report.per_worker_updates = [0] * num_ingestors
    owns_workdir = workdir is None
    workdir = Path(
        tempfile.mkdtemp(prefix="repro-distributed-") if owns_workdir else workdir
    )
    workdir.mkdir(parents=True, exist_ok=True)
    paths = [workdir / f"ingestor-{k}.snap" for k in range(num_ingestors)]
    context = process_context()
    fingerprint = config.sketch_fingerprint()

    engine = GraphZeppelin(num_nodes, config=config)

    def spawn(worker: int, attempt: int):
        task = (
            num_nodes,
            config,
            parts[worker],
            str(paths[worker]),
            int(chunk_size),
            worker,
            attempt,
            fault_plan,
        )
        process = context.Process(
            target=_worker_ingest, args=(task,), daemon=True
        )
        with span("distributed.dispatch"):
            process.start()
        return process

    def validate(worker: int) -> Optional[str]:
        try:
            meta = read_snapshot_meta(paths[worker])
        except Exception as exc:  # missing, truncated, or torn snapshot
            return f"snapshot unreadable: {exc}"
        if meta.num_nodes != num_nodes:
            return f"snapshot has {meta.num_nodes} nodes, expected {num_nodes}"
        if meta.fingerprint != fingerprint:
            return (
                f"snapshot fingerprint {meta.fingerprint:#x} does not match "
                f"config fingerprint {fingerprint:#x}"
            )
        try:
            # Full payload digest check *before* the coordinator merges:
            # a silently corrupted worker snapshot must trigger a
            # re-dispatch, never an XOR of rotten bytes into the pool.
            verify_snapshot_payload(paths[worker], meta)
        except CorruptionError:
            return "payload checksum mismatch"
        except Exception as exc:
            return f"snapshot unreadable: {exc}"
        return None

    def on_complete(worker: int) -> None:
        # Partial (incremental) merge: XOR this snapshot in now, while
        # slower or re-dispatched peers are still running.
        merge_start = time.perf_counter()
        with span("distributed.merge"):
            meta = merge_snapshots_into([paths[worker]], engine.tensor_pool)
        report.merge_seconds += time.perf_counter() - merge_start
        engine._updates_processed += meta.engine_updates
        report.per_worker_updates[worker] = meta.engine_updates
        report.snapshot_bytes += paths[worker].stat().st_size
        # Fold the worker's metrics sidecar (when it shipped one) into
        # the report and the coordinator's live registry -- worker
        # telemetry aggregates across processes exactly like the pool
        # snapshots the workers shipped alongside it.
        metrics_path = paths[worker].with_suffix(paths[worker].suffix + ".metrics")
        try:
            with metrics_path.open("rb") as handle:
                worker_metrics = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError):
            worker_metrics = None
        if isinstance(worker_metrics, MetricsSnapshot):
            report.metrics = (
                worker_metrics
                if report.metrics is None
                else report.metrics.merged_with(worker_metrics)
            )
            if default_registry().enabled:
                default_registry().absorb(worker_metrics)

    def describe_failure(worker: int) -> Optional[str]:
        return _read_error_tail(
            paths[worker].with_suffix(paths[worker].suffix + ".err")
        )

    try:
        ingest_start = time.perf_counter()
        supervisor = WorkerSupervisor(
            spawn=spawn,
            validate=validate,
            slice_sizes=[part.shape[0] for part in parts],
            on_complete=on_complete,
            describe_failure=describe_failure,
            retry=retry,
            straggler_timeout=straggler_timeout,
            worker_deadline=worker_deadline,
        )
        records = supervisor.run()
        report.ingest_seconds = (
            time.perf_counter() - ingest_start - report.merge_seconds
        )
        report.worker_attempts = [record.attempts for record in records]
        report.worker_retries = sum(len(record.failures) for record in records)
        report.straggler_kills = sum(record.straggler_kills for record in records)
        report.deadline_kills = sum(record.deadline_kills for record in records)
        report.updates_total = engine._updates_processed
        engine._cached_forest = None
        if not owns_workdir or keep_snapshots:
            report.workdir = str(workdir)
            report.snapshot_paths = [str(path) for path in paths]
        return engine, report
    finally:
        if owns_workdir and not keep_snapshots:
            shutil.rmtree(workdir, ignore_errors=True)
