"""The distributed plane: pool snapshots, XOR merges, multi-ingestor runs.

Everything here builds on one fact about the sketch engine: L0 sketch
state is *linear*, so the XOR of two pools built from disjoint update
sub-streams is bit-identical to the pool of the concatenated stream.
:mod:`repro.distributed.snapshot` turns a whole tensor pool into a
versioned binary blob (and back, and merges blobs);
:mod:`repro.distributed.multi_ingestor` splits a heavy stream across
independent worker processes and merges their snapshots into one
queryable engine.
"""

from repro.distributed.multi_ingestor import (
    DistributedReport,
    distributed_ingest,
    partition_round_robin,
)
from repro.distributed.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_MAGIC_V1,
    SnapshotMeta,
    load_pool_snapshot,
    load_snapshot_into,
    merge_snapshots,
    merge_snapshots_into,
    read_snapshot_meta,
    save_pool_snapshot,
    verify_snapshot_payload,
)

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_MAGIC_V1",
    "SnapshotMeta",
    "DistributedReport",
    "distributed_ingest",
    "partition_round_robin",
    "load_pool_snapshot",
    "load_snapshot_into",
    "merge_snapshots",
    "merge_snapshots_into",
    "read_snapshot_meta",
    "save_pool_snapshot",
    "verify_snapshot_payload",
]
