"""The reliability experiment (Section 6.3).

GraphZeppelin's connectivity answers are correct only with high
probability.  The paper applies thousands of correctness checks --
comparing GraphZeppelin's answer against an exact adjacency-matrix
reference at checkpoints throughout each stream -- and observes zero
failures.  This module runs the same experiment at configurable scale.

A check passes when GraphZeppelin's component partition equals the
reference partition (a stricter criterion than "same number of
components").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines.adjacency_matrix import AdjacencyMatrixGraph
from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.streaming.stream import GraphStream


@dataclass
class ReliabilityResult:
    """Aggregate outcome of a batch of correctness checks."""

    stream_name: str
    num_nodes: int
    checks: int = 0
    failures: int = 0
    incomplete_forests: int = 0
    mismatched_checkpoints: List[int] = field(default_factory=list)

    @property
    def failure_rate(self) -> float:
        return self.failures / self.checks if self.checks else 0.0

    @property
    def all_correct(self) -> bool:
        return self.failures == 0


def run_reliability_trials(
    stream: GraphStream,
    num_checkpoints: int = 10,
    trials: int = 1,
    base_seed: int = 0,
    config: Optional[GraphZeppelinConfig] = None,
) -> ReliabilityResult:
    """Run correctness checks of GraphZeppelin against the exact reference.

    Parameters
    ----------
    stream:
        The dynamic graph stream to ingest.
    num_checkpoints:
        How many evenly spaced positions of the stream to query at
        (each query on each trial is one check).
    trials:
        Number of independent GraphZeppelin instances (each with a
        different seed) to run over the same stream.
    base_seed:
        Seed of the first trial; trial ``t`` uses ``base_seed + t``.
    config:
        Optional engine configuration overrides (the seed field is
        replaced per trial).
    """
    result = ReliabilityResult(stream_name=stream.name, num_nodes=stream.num_nodes)
    checkpoints = stream.checkpoints(1.0 / max(num_checkpoints, 1))

    for trial in range(trials):
        trial_config = GraphZeppelinConfig(
            delta=(config.delta if config else 0.01),
            buffering=(config.buffering if config else GraphZeppelinConfig().buffering),
            gutter_fraction=(config.gutter_fraction if config else 0.5),
            seed=base_seed + trial,
        )
        engine = GraphZeppelin(stream.num_nodes, config=trial_config)
        reference = AdjacencyMatrixGraph(stream.num_nodes, strict=False)

        position = 0
        checkpoint_cursor = 0
        for update in stream:
            engine.edge_update(update.u, update.v)
            reference.edge_update(update.u, update.v)
            position += 1
            if (
                checkpoint_cursor < len(checkpoints)
                and position == checkpoints[checkpoint_cursor]
            ):
                checkpoint_cursor += 1
                result.checks += 1
                forest = engine.list_spanning_forest()
                if not forest.complete:
                    result.incomplete_forests += 1
                expected = reference.spanning_forest().partition_signature()
                actual = forest.partition_signature()
                if expected != actual:
                    result.failures += 1
                    result.mismatched_checkpoints.append(position)
    return result
