"""Evaluation harness: experiment drivers, result tables and reports.

Every figure and table of the paper's evaluation maps to one driver
function in :mod:`repro.analysis.experiments` (or
:mod:`repro.analysis.reliability` / :mod:`repro.analysis.repository_survey`),
and to one benchmark file under ``benchmarks/`` that calls the driver
and prints the resulting table.  The drivers return plain dataclasses /
dicts so they are equally usable from tests, benchmarks and notebooks.
"""

from repro.analysis.tables import format_bytes, format_rate, render_table
from repro.analysis.reliability import ReliabilityResult, run_reliability_trials
from repro.analysis.repository_survey import survey_repository_graphs

__all__ = [
    "ReliabilityResult",
    "format_bytes",
    "format_rate",
    "render_table",
    "run_reliability_trials",
    "survey_repository_graphs",
]
