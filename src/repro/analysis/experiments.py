"""Experiment drivers for every table and figure in the evaluation.

Each public function reproduces one experiment from Section 6 of the
paper (or Section 3's micro-benchmarks) and returns a list of plain
dict rows, ready to be rendered with
:func:`repro.analysis.tables.render_table`.  The benchmark files under
``benchmarks/`` are thin wrappers that call these drivers with
laptop-scale parameters and print the tables; tests call them with even
smaller parameters to keep the harness covered.

Timing convention: ingestion rates count *stream updates per second of
processing time*, where processing time is wall-clock time plus the
modelled I/O time accumulated by the hybrid-memory substrate (zero for
in-RAM configurations).  This keeps the "on SSD" numbers meaningful and
machine-independent, as explained in DESIGN.md.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.adjacency_matrix import AdjacencyMatrixGraph
from repro.baselines.aspen_like import AspenLike
from repro.baselines.space_models import space_crossover_table
from repro.baselines.terrace_like import TerraceLike
from repro.core.config import BufferingMode, GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.generators.datasets import DATASET_SPECS, Dataset, load_dataset
from repro.parallel.cost_model import ThreadScalingModel
from repro.parallel.graph_workers import ParallelIngestor
from repro.sketch.cubesketch import CubeSketch
from repro.sketch.sizes import cubesketch_size_bytes, standard_l0_size_bytes
from repro.sketch.standard_l0 import StandardL0Sketch
from repro.streaming.stream import GraphStream
from repro.types import EdgeUpdate

#: Batch size the paper feeds Aspen and Terrace (scaled down by callers).
DEFAULT_BASELINE_BATCH_SIZE = 10_000


# ======================================================================
# Figure 4 / Figure 5: l0-sampler micro-benchmarks
# ======================================================================
def measure_l0_update_rates(
    vector_lengths: Sequence[int],
    cubesketch_updates: int = 20_000,
    standard_updates: int = 400,
    seed: int = 0,
) -> List[Dict]:
    """Single-threaded update rates of both samplers (Figure 4).

    The general-purpose sampler is orders of magnitude slower, so it is
    measured over a smaller update count; rates are normalised to
    updates/second either way.
    """
    rows: List[Dict] = []
    rng = np.random.default_rng(seed)
    for vector_length in vector_lengths:
        cube = CubeSketch(vector_length, seed=seed)
        indices = rng.integers(0, vector_length, size=cubesketch_updates, dtype=np.uint64)
        start = time.perf_counter()
        cube.update_batch(indices)
        cube_elapsed = max(time.perf_counter() - start, 1e-9)
        cube_rate = cubesketch_updates / cube_elapsed

        standard = StandardL0Sketch(vector_length, seed=seed)
        standard_indices = rng.integers(0, vector_length, size=standard_updates)
        start = time.perf_counter()
        for index in standard_indices:
            standard.update(int(index), 1)
        standard_elapsed = max(time.perf_counter() - start, 1e-9)
        standard_rate = standard_updates / standard_elapsed

        rows.append(
            {
                "vector_length": vector_length,
                "standard_l0_rate": round(standard_rate, 1),
                "cubesketch_rate": round(cube_rate, 1),
                "speedup": round(cube_rate / standard_rate, 1),
                "standard_uses_wide_ints": standard.uses_wide_arithmetic,
            }
        )
    return rows


def sketch_size_table(
    vector_lengths: Sequence[int], delta: float = 0.01
) -> List[Dict]:
    """Sketch sizes of both samplers across vector lengths (Figure 5)."""
    rows = []
    for vector_length in vector_lengths:
        standard = standard_l0_size_bytes(vector_length, delta)
        cube = cubesketch_size_bytes(vector_length, delta)
        rows.append(
            {
                "vector_length": vector_length,
                "standard_l0_bytes": standard,
                "cubesketch_bytes": cube,
                "size_reduction": round(standard / cube, 2),
            }
        )
    return rows


# ======================================================================
# Table 10: dataset dimensions
# ======================================================================
def dataset_dimension_table(
    names: Optional[Sequence[str]] = None,
    scale_reduction: int = 6,
    seed: int = 0,
) -> Tuple[List[Dict], Dict[str, Dataset]]:
    """Dimensions of the generated datasets next to the paper's (Table 10).

    Returns the rows plus the generated datasets keyed by name, so
    downstream experiments can reuse them without regenerating.
    """
    names = list(names) if names else sorted(DATASET_SPECS)
    rows = []
    datasets: Dict[str, Dataset] = {}
    for name in names:
        dataset = load_dataset(name, scale_reduction=scale_reduction, seed=seed)
        datasets[name] = dataset
        spec = dataset.spec
        rows.append(
            {
                "dataset": name,
                "paper_nodes": spec.paper_nodes,
                "paper_edges": spec.paper_edges,
                "paper_updates": spec.paper_stream_updates,
                "nodes": dataset.num_nodes,
                "edges": dataset.num_edges,
                "stream_updates": dataset.num_stream_updates,
                "density": round(dataset.density(), 4),
            }
        )
    return rows, datasets


# ======================================================================
# Figure 11: space usage
# ======================================================================
def space_usage_comparison(
    dataset_names: Optional[Sequence[str]] = None,
    measured_datasets: Optional[Dict[str, Dataset]] = None,
) -> Dict[str, List[Dict]]:
    """Space comparison at paper scale (modelled) and generated scale (measured).

    Returns two tables:

    * ``"paper_scale"`` -- the Figure 11a reproduction from the closed-form
      space models evaluated at the paper's true node/edge counts,
    * ``"measured"`` -- actual byte sizes of the three systems built on
      the generated (scaled-down) streams, when datasets are supplied.
    """
    dataset_names = list(dataset_names) if dataset_names else [
        "kron13", "kron15", "kron16", "kron17", "kron18"
    ]
    paper_rows = []
    workloads = [
        {
            "name": name,
            "num_nodes": DATASET_SPECS[name].paper_nodes,
            "num_edges": DATASET_SPECS[name].paper_edges,
        }
        for name in dataset_names
        if name in DATASET_SPECS
    ]
    for comparison in space_crossover_table(workloads):
        paper_rows.append(
            {
                "dataset": comparison.name,
                "aspen_bytes": comparison.aspen,
                "terrace_bytes": comparison.terrace,
                "graphzeppelin_bytes": comparison.graphzeppelin,
                "gz_vs_aspen": round(comparison.graphzeppelin_vs_aspen, 3),
                "gz_vs_terrace": round(comparison.graphzeppelin_vs_terrace, 3),
            }
        )

    measured_rows: List[Dict] = []
    if measured_datasets:
        for name, dataset in measured_datasets.items():
            engine = GraphZeppelin(dataset.num_nodes, config=GraphZeppelinConfig())
            aspen = AspenLike(dataset.num_nodes)
            terrace = TerraceLike(dataset.num_nodes)
            _ingest_graphzeppelin(engine, dataset.stream)
            _ingest_batched_baseline(aspen, dataset.stream)
            _ingest_terrace(terrace, dataset.stream)
            measured_rows.append(
                {
                    "dataset": name,
                    "nodes": dataset.num_nodes,
                    "aspen_bytes": aspen.size_bytes(),
                    "terrace_bytes": terrace.size_bytes(),
                    "graphzeppelin_bytes": engine.total_bytes(),
                }
            )
    return {"paper_scale": paper_rows, "measured": measured_rows}


# ======================================================================
# Figures 12 and 13: ingestion rates (in RAM and out of core)
# ======================================================================
def ingestion_rate_comparison(
    dataset: Dataset,
    ram_budget_bytes: Optional[int] = None,
    baseline_batch_size: int = DEFAULT_BASELINE_BATCH_SIZE,
    include_terrace: bool = True,
    seed: int = 0,
) -> List[Dict]:
    """Ingestion rates of every system on one dataset (Figures 12a / 13).

    With ``ram_budget_bytes`` set, all systems run against a hybrid
    memory of that size so the out-of-core penalty appears in their
    processing time; otherwise everything is in RAM.
    """
    stream = dataset.stream
    rows: List[Dict] = []

    aspen = AspenLike(dataset.num_nodes, ram_budget_bytes=ram_budget_bytes)
    rows.append(
        _rate_row(
            "aspen-like",
            stream,
            lambda: _ingest_batched_baseline(aspen, stream, baseline_batch_size),
            io_stats=aspen.io_stats,
        )
    )

    if include_terrace:
        terrace = TerraceLike(dataset.num_nodes, ram_budget_bytes=ram_budget_bytes)
        rows.append(
            _rate_row(
                "terrace-like",
                stream,
                lambda: _ingest_terrace(terrace, stream, baseline_batch_size),
                io_stats=terrace.io_stats,
            )
        )

    gutter_tree_engine = GraphZeppelin(
        dataset.num_nodes,
        config=GraphZeppelinConfig(
            buffering=BufferingMode.GUTTER_TREE,
            ram_budget_bytes=ram_budget_bytes,
            seed=seed,
        ),
    )
    rows.append(
        _rate_row(
            "graphzeppelin (gutter tree)",
            stream,
            lambda: _ingest_graphzeppelin(gutter_tree_engine, stream),
            io_stats=gutter_tree_engine.io_stats,
        )
    )

    leaf_engine = GraphZeppelin(
        dataset.num_nodes,
        config=GraphZeppelinConfig(
            buffering=BufferingMode.LEAF_GUTTERS,
            ram_budget_bytes=ram_budget_bytes,
            seed=seed,
        ),
    )
    rows.append(
        _rate_row(
            "graphzeppelin (leaf-only)",
            stream,
            lambda: _ingest_graphzeppelin(leaf_engine, stream),
            io_stats=leaf_engine.io_stats,
        )
    )

    columnar_engine = GraphZeppelin(
        dataset.num_nodes,
        config=GraphZeppelinConfig(
            buffering=BufferingMode.LEAF_GUTTERS,
            ram_budget_bytes=ram_budget_bytes,
            seed=seed,
        ),
    )
    rows.append(
        _rate_row(
            "graphzeppelin (columnar)",
            stream,
            lambda: _ingest_graphzeppelin_columnar(columnar_engine, stream),
            io_stats=columnar_engine.io_stats,
        )
    )
    return rows


def cc_query_time_comparison(
    dataset: Dataset,
    ram_budget_bytes: Optional[int] = None,
    baseline_batch_size: int = DEFAULT_BASELINE_BATCH_SIZE,
    include_terrace: bool = True,
    seed: int = 0,
) -> List[Dict]:
    """Connected-components time after full ingestion (Figure 12c)."""
    stream = dataset.stream
    rows: List[Dict] = []

    aspen = AspenLike(dataset.num_nodes, ram_budget_bytes=ram_budget_bytes)
    _ingest_batched_baseline(aspen, stream, baseline_batch_size)
    rows.append(_query_row("aspen-like", aspen, io_stats=aspen.io_stats))

    if include_terrace:
        terrace = TerraceLike(dataset.num_nodes, ram_budget_bytes=ram_budget_bytes)
        _ingest_terrace(terrace, stream, baseline_batch_size)
        rows.append(_query_row("terrace-like", terrace, io_stats=terrace.io_stats))

    for label, buffering in (
        ("graphzeppelin (gutter tree)", BufferingMode.GUTTER_TREE),
        ("graphzeppelin (leaf-only)", BufferingMode.LEAF_GUTTERS),
    ):
        engine = GraphZeppelin(
            dataset.num_nodes,
            config=GraphZeppelinConfig(
                buffering=buffering, ram_budget_bytes=ram_budget_bytes, seed=seed
            ),
        )
        _ingest_graphzeppelin(engine, stream)
        rows.append(_query_row(label, engine, io_stats=engine.io_stats))
    return rows


# ======================================================================
# Figure 14: thread scaling
# ======================================================================
def thread_scaling_experiment(
    dataset: Dataset,
    measured_thread_counts: Sequence[int] = (1, 2, 4),
    modelled_thread_counts: Sequence[int] = (1, 2, 4, 8, 16, 24, 32, 40, 46),
    seed: int = 0,
) -> Dict[str, List[Dict]]:
    """Measured small-scale thread scaling plus the calibrated model curve."""
    measured_rows: List[Dict] = []
    single_thread_rate = None
    for num_workers in measured_thread_counts:
        engine = GraphZeppelin(
            dataset.num_nodes, config=GraphZeppelinConfig(seed=seed)
        )
        start = time.perf_counter()
        with ParallelIngestor(engine, num_workers=num_workers) as ingestor:
            ingestor.ingest(dataset.stream)
        elapsed = max(time.perf_counter() - start, 1e-9)
        rate = len(dataset.stream) / elapsed
        if num_workers == 1 or single_thread_rate is None:
            single_thread_rate = rate
        measured_rows.append(
            {
                "threads": num_workers,
                "ingestion_rate": round(rate, 1),
                "speedup": round(rate / single_thread_rate, 2),
            }
        )

    model = ThreadScalingModel.paper_like(single_thread_rate or 1.0)
    modelled_rows = [
        {
            "threads": row["threads"],
            "ingestion_rate": round(row["ingestion_rate"], 1),
            "speedup": round(row["speedup"], 2),
        }
        for row in model.curve(list(modelled_thread_counts))
    ]
    return {"measured": measured_rows, "modelled": modelled_rows}


# ======================================================================
# Figure 15: gutter size sweep
# ======================================================================
def buffer_size_sweep(
    dataset: Dataset,
    fractions: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0),
    ram_budget_bytes: Optional[int] = None,
    seed: int = 0,
) -> List[Dict]:
    """Ingestion rate as a function of the leaf-gutter size (Figure 15).

    A fraction of ``0.0`` means "no buffering" (each update applied
    immediately), the paper's worst case.
    """
    rows = []
    for fraction in fractions:
        if fraction <= 0:
            config = GraphZeppelinConfig(
                buffering=BufferingMode.NONE,
                ram_budget_bytes=ram_budget_bytes,
                seed=seed,
            )
        else:
            config = GraphZeppelinConfig(
                buffering=BufferingMode.LEAF_GUTTERS,
                gutter_fraction=fraction,
                ram_budget_bytes=ram_budget_bytes,
                seed=seed,
            )
        engine = GraphZeppelin(dataset.num_nodes, config=config)
        row = _rate_row(
            f"f={fraction}",
            dataset.stream,
            lambda engine=engine: _ingest_graphzeppelin(engine, dataset.stream),
            io_stats=engine.io_stats,
        )
        row["gutter_fraction"] = fraction
        rows.append(row)
    return rows


# ======================================================================
# Figure 16: query latency while streaming
# ======================================================================
def query_latency_over_stream(
    dataset: Dataset,
    num_checkpoints: int = 10,
    ram_budget_bytes: Optional[int] = None,
    gutter_fraction: float = 0.1,
    baseline_batch_size: int = DEFAULT_BASELINE_BATCH_SIZE,
    seed: int = 0,
) -> List[Dict]:
    """Query latency at checkpoints through the stream (Figure 16a/16b)."""
    stream = dataset.stream
    checkpoints = set(stream.checkpoints(1.0 / max(num_checkpoints, 1)))

    engine = GraphZeppelin(
        dataset.num_nodes,
        config=GraphZeppelinConfig(
            buffering=BufferingMode.LEAF_GUTTERS,
            gutter_fraction=gutter_fraction,
            ram_budget_bytes=ram_budget_bytes,
            seed=seed,
        ),
    )
    aspen = AspenLike(dataset.num_nodes, ram_budget_bytes=ram_budget_bytes)

    rows = []
    pending_inserts: List = []
    pending_deletes: List = []
    position = 0
    for update in stream:
        engine.edge_update(update.u, update.v)
        if update.is_insert:
            pending_inserts.append(update.edge)
        else:
            pending_deletes.append(update.edge)
        if len(pending_inserts) >= baseline_batch_size:
            aspen.batch_insert(pending_inserts)
            pending_inserts = []
        if len(pending_deletes) >= baseline_batch_size:
            aspen.batch_delete(pending_deletes)
            pending_deletes = []
        position += 1
        if position in checkpoints:
            aspen.batch_insert(pending_inserts)
            aspen.batch_delete(pending_deletes)
            pending_inserts, pending_deletes = [], []
            rows.append(
                {
                    "progress": round(position / len(stream), 2),
                    "graphzeppelin_query_seconds": _timed_query(engine),
                    "aspen_query_seconds": _timed_query(aspen),
                }
            )
    return rows


# ======================================================================
# shared helpers
# ======================================================================
def _ingest_graphzeppelin(engine: GraphZeppelin, stream: GraphStream) -> None:
    for update in stream:
        engine.edge_update(update.u, update.v)
    # Ingestion is only finished once every buffered update has reached the
    # sketches; including the flush keeps rates comparable across buffer
    # sizes and is what the paper's ingestion numbers measure.
    engine.flush()


def _ingest_graphzeppelin_columnar(
    engine: GraphZeppelin, stream: GraphStream, chunk_size: int = 65536
) -> None:
    """Columnar ingestion: the stream as one edge array through
    :meth:`GraphZeppelin.ingest_batch`, in bounded chunks."""
    edges = stream.edge_array()
    for start in range(0, edges.shape[0], chunk_size):
        engine.ingest_batch(edges[start : start + chunk_size])
    engine.flush()


def _ingest_batched_baseline(
    system: AspenLike, stream: GraphStream, batch_size: int = DEFAULT_BASELINE_BATCH_SIZE
) -> None:
    """Feed a stream to a batch-parallel system as same-type batches.

    Mirrors the paper's methodology: updates are grouped into batches of
    insertions and batches of deletions, because that is the only
    interface those systems expose.  An insert and a delete of the same
    edge that fall into the same pending window cancel each other before
    either batch is applied, so batching does not change the final graph
    (the paper waves this away; cancelling keeps the cross-system
    correctness comparisons meaningful).
    """
    pending_inserts: dict = {}
    pending_deletes: dict = {}
    for update in stream:
        edge = update.edge
        if update.is_insert:
            if edge in pending_deletes:
                del pending_deletes[edge]
                continue
            pending_inserts[edge] = None
            if len(pending_inserts) >= batch_size:
                system.batch_insert(list(pending_inserts))
                pending_inserts = {}
        else:
            if edge in pending_inserts:
                del pending_inserts[edge]
                continue
            pending_deletes[edge] = None
            if len(pending_deletes) >= batch_size:
                system.batch_delete(list(pending_deletes))
                pending_deletes = {}
    if pending_inserts:
        system.batch_insert(list(pending_inserts))
    if pending_deletes:
        system.batch_delete(list(pending_deletes))


def _ingest_terrace(
    system: TerraceLike, stream: GraphStream, batch_size: int = DEFAULT_BASELINE_BATCH_SIZE
) -> None:
    """Terrace path: batched inserts, individual deletes (footnote 2)."""
    pending_inserts: dict = {}
    for update in stream:
        edge = update.edge
        if update.is_insert:
            pending_inserts[edge] = None
            if len(pending_inserts) >= batch_size:
                system.batch_insert(list(pending_inserts))
                pending_inserts = {}
        else:
            if edge in pending_inserts:
                del pending_inserts[edge]
                continue
            system.delete(update.u, update.v)
    if pending_inserts:
        system.batch_insert(list(pending_inserts))


def _rate_row(name: str, stream: GraphStream, run, io_stats=None) -> Dict:
    """Time a full ingestion run and convert it to an updates/second row."""
    modelled_before = io_stats.modelled_seconds if io_stats is not None else 0.0
    start = time.perf_counter()
    run()
    wall = time.perf_counter() - start
    modelled_after = io_stats.modelled_seconds if io_stats is not None else 0.0
    modelled = modelled_after - modelled_before
    total = max(wall + modelled, 1e-9)
    return {
        "system": name,
        "updates": len(stream),
        "wall_seconds": round(wall, 4),
        "modelled_io_seconds": round(modelled, 4),
        "ingestion_rate": round(len(stream) / total, 1),
    }


def _query_row(name: str, system, io_stats=None) -> Dict:
    modelled_before = io_stats.modelled_seconds if io_stats is not None else 0.0
    start = time.perf_counter()
    forest = system.list_spanning_forest()
    wall = time.perf_counter() - start
    modelled_after = io_stats.modelled_seconds if io_stats is not None else 0.0
    return {
        "system": name,
        "query_seconds": round(wall + (modelled_after - modelled_before), 4),
        "components": forest.num_components,
    }


def _timed_query(system) -> float:
    start = time.perf_counter()
    system.list_spanning_forest()
    return round(time.perf_counter() - start, 5)
