"""Synthetic survey of published graph datasets (Figure 1).

Figure 1 of the paper plots every NetworkRepository dataset by node
count and density and observes that almost all of them fit in 16 GB of
RAM as an adjacency list -- the motivating observation that large dense
graphs are missing from public repositories.

Without network access the actual repository index cannot be fetched,
so this module synthesises a population with the same qualitative
structure (log-uniform node counts; density bounded above by a budget
that shrinks as node count grows, mimicking the selection bias the
paper describes) and reports the fraction of datasets below the 16 GB
adjacency-list line.  The benchmark prints the summary statistics that
correspond to the figure's visual claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.baselines.space_models import adjacency_list_bytes

#: The RAM budget line drawn in Figure 1.
SURVEY_RAM_BUDGET_BYTES = 16 * 1024**3


@dataclass(frozen=True)
class SurveyedGraph:
    """One synthetic repository dataset."""

    num_nodes: int
    num_edges: int

    @property
    def density(self) -> float:
        slots = self.num_nodes * (self.num_nodes - 1) / 2
        return self.num_edges / slots if slots else 0.0

    @property
    def adjacency_list_bytes(self) -> int:
        return adjacency_list_bytes(self.num_nodes, self.num_edges)

    @property
    def fits_in_budget(self) -> bool:
        return self.adjacency_list_bytes <= SURVEY_RAM_BUDGET_BYTES


@dataclass
class SurveySummary:
    """Aggregate statistics of the synthetic repository population."""

    graphs: List[SurveyedGraph]

    @property
    def total(self) -> int:
        return len(self.graphs)

    @property
    def fraction_below_budget(self) -> float:
        if not self.graphs:
            return 0.0
        return sum(graph.fits_in_budget for graph in self.graphs) / len(self.graphs)

    @property
    def max_dense_graph_bytes(self) -> int:
        """Largest adjacency-list size among graphs denser than 10%."""
        dense = [g.adjacency_list_bytes for g in self.graphs if g.density > 0.1]
        return max(dense) if dense else 0

    def rows(self) -> List[dict]:
        """Summary rows for the benchmark table."""
        return [
            {
                "population": self.total,
                "fraction_below_16GB": round(self.fraction_below_budget, 4),
                "max_dense_graph": self.max_dense_graph_bytes,
            }
        ]


def survey_repository_graphs(
    population: int = 5000, seed: int = 0, selection_bias: float = 0.97
) -> SurveySummary:
    """Synthesise a repository population mimicking Figure 1.

    ``selection_bias`` is the probability that a graph whose adjacency
    list exceeds the 16 GB budget is *not published* (discarded from the
    population), which is the mechanism the paper hypothesises for the
    absence of large dense graphs.
    """
    rng = np.random.default_rng(seed)
    graphs: List[SurveyedGraph] = []
    while len(graphs) < population:
        # Node counts log-uniform between 10^2 and 10^9.
        num_nodes = int(10 ** rng.uniform(2, 9))
        # Densities log-uniform between 10^-8 and 0.5, clipped to >= a tree.
        density = 10 ** rng.uniform(-8, np.log10(0.5))
        slots = num_nodes * (num_nodes - 1) / 2
        num_edges = int(max(num_nodes - 1, density * slots))
        graph = SurveyedGraph(num_nodes=num_nodes, num_edges=num_edges)
        if not graph.fits_in_budget:
            # Dense graphs beyond the RAM budget are "computationally
            # infeasible" and never get published (the paper's central
            # observation); oversized sparse graphs occasionally do.
            if graph.density > 0.1 or rng.random() < selection_bias:
                continue
        graphs.append(graph)
    return SurveySummary(graphs=graphs)
