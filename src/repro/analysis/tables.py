"""Small helpers for rendering result tables in benchmark output."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (KiB / MiB / GiB), two significant decimals."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or unit == "TiB":
            return f"{value:.2f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.2f} TiB"


def format_rate(updates_per_second: float) -> str:
    """Human-readable update rate (k/M updates per second)."""
    value = float(updates_per_second)
    if value >= 1e6:
        return f"{value / 1e6:.2f} M/s"
    if value >= 1e3:
        return f"{value / 1e3:.1f} k/s"
    return f"{value:.1f} /s"


def render_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as a fixed-width text table.

    Column order follows ``columns`` when given, otherwise the key order
    of the first row.  Values are converted with ``str``; callers format
    numbers before passing them in.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    keys = list(columns) if columns else list(rows[0].keys())
    widths = {key: len(str(key)) for key in keys}
    for row in rows:
        for key in keys:
            widths[key] = max(widths[key], len(str(row.get(key, ""))))

    def format_row(values: List[str]) -> str:
        return "  ".join(value.ljust(widths[key]) for key, value in zip(keys, values))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row([str(key) for key in keys]))
    lines.append(format_row(["-" * widths[key] for key in keys]))
    for row in rows:
        lines.append(format_row([str(row.get(key, "")) for key in keys]))
    return "\n".join(lines)
