"""The in-memory dynamic graph stream object."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.types import Edge, EdgeUpdate, UpdateType


@dataclass
class GraphStream:
    """A finite stream of edge updates over ``num_nodes`` nodes.

    The stream is materialised as a list of
    :class:`~repro.types.EdgeUpdate`; iterating the object yields the
    updates in order.  ``final_edges()`` replays the stream to recover
    the edge set it defines (the set E_i after the last update), which
    tests and the reliability experiment use as ground truth.
    """

    num_nodes: int
    updates: List[EdgeUpdate] = field(default_factory=list)
    name: str = "stream"

    def __iter__(self) -> Iterator[EdgeUpdate]:
        return iter(self.updates)

    def __len__(self) -> int:
        return len(self.updates)

    @property
    def num_updates(self) -> int:
        return len(self.updates)

    def append(self, update: EdgeUpdate) -> None:
        self.updates.append(update)

    def extend(self, updates: Sequence[EdgeUpdate]) -> None:
        self.updates.extend(updates)

    def edge_array(self, start: int = 0) -> np.ndarray:
        """The stream's endpoints as an ``(N, 2)`` int64 array.

        Over Z_2 an insertion and a deletion are the same toggle, so the
        update-type column is not needed for sketch ingestion; this is
        the columnar input
        :meth:`~repro.core.graph_zeppelin.GraphZeppelin.ingest_batch`
        consumes.  ``start`` skips a stream prefix -- the resume path
        seeks to a snapshot's recorded offset and ingests only the
        remaining updates.
        """
        if start >= len(self.updates):
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(
            [(update.u, update.v) for update in self.updates[start:]], dtype=np.int64
        )

    def edge_array_chunks(
        self, chunk_size: int = 1 << 14, start: int = 0
    ) -> Iterator[np.ndarray]:
        """The stream as consecutive ``(chunk_size, 2)`` edge arrays.

        The input side of the sharded ingest pipeline
        (:meth:`~repro.parallel.graph_workers.ShardedIngestor.ingest_stream`):
        the producer partitions chunk ``k + 1`` while the shard workers
        fold chunk ``k``.  The final chunk may be shorter; chunks are
        views of one materialised edge array, so iterating costs no
        per-chunk copies.  ``start`` seeks past a stream prefix (resume
        from a snapshot offset).
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        array = self.edge_array(start=start)
        for position in range(0, array.shape[0], chunk_size):
            yield array[position : position + chunk_size]

    # ------------------------------------------------------------------
    def final_edges(self) -> Set[Edge]:
        """The edge set defined by the whole stream."""
        edges: Set[Edge] = set()
        for update in self.updates:
            if update.is_insert:
                edges.add(update.edge)
            else:
                edges.discard(update.edge)
        return edges

    def edges_at(self, position: int) -> Set[Edge]:
        """The edge set defined by the stream prefix of length ``position``."""
        edges: Set[Edge] = set()
        for update in self.updates[:position]:
            if update.is_insert:
                edges.add(update.edge)
            else:
                edges.discard(update.edge)
        return edges

    def prefix(self, position: int, name: Optional[str] = None) -> "GraphStream":
        """A new stream consisting of the first ``position`` updates."""
        return GraphStream(
            num_nodes=self.num_nodes,
            updates=list(self.updates[:position]),
            name=name or f"{self.name}[:{position}]",
        )

    def suffix(self, position: int, name: Optional[str] = None) -> "GraphStream":
        """The stream from update ``position`` onward.

        The complement of :meth:`prefix`: a snapshot taken at stream
        offset ``k`` resumes by ingesting ``suffix(k)``, and
        ``prefix(k)`` + ``suffix(k)`` replay the whole stream.
        """
        return GraphStream(
            num_nodes=self.num_nodes,
            updates=list(self.updates[position:]),
            name=name or f"{self.name}[{position}:]",
        )

    def counts(self) -> Tuple[int, int]:
        """``(num_insertions, num_deletions)`` in the stream."""
        inserts = sum(1 for update in self.updates if update.is_insert)
        return inserts, len(self.updates) - inserts

    def checkpoints(self, every_fraction: float = 0.1) -> List[int]:
        """Stream positions at every ``every_fraction`` of its length.

        The query-latency experiment (Figure 16) issues a connectivity
        query at each of these positions.
        """
        if not 0 < every_fraction <= 1:
            raise ValueError("every_fraction must be in (0, 1]")
        step = max(1, int(len(self.updates) * every_fraction))
        positions = list(range(step, len(self.updates) + 1, step))
        if positions and positions[-1] != len(self.updates):
            positions.append(len(self.updates))
        return positions

    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: Sequence[Edge], name: str = "insert-only"
    ) -> "GraphStream":
        """An insert-only stream that simply inserts each edge once."""
        updates = [EdgeUpdate(u, v, UpdateType.INSERT) for u, v in edges]
        return cls(num_nodes=num_nodes, updates=updates, name=name)

    def __repr__(self) -> str:
        inserts, deletes = self.counts()
        return (
            f"GraphStream(name={self.name!r}, num_nodes={self.num_nodes}, "
            f"updates={len(self.updates)} [{inserts} ins / {deletes} del])"
        )
