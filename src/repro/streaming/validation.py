"""Checking that a stream obeys the dynamic-graph-stream rules.

The model (Section 2.1) only allows inserting an edge that is currently
absent and deleting an edge that is currently present.  The validator
replays a stream, tracking the live edge set, and reports the first
violation (or validates the paper's stronger conversion guarantees when
asked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.exceptions import InvalidStreamError
from repro.streaming.stream import GraphStream
from repro.types import Edge, EdgeUpdate


@dataclass
class ValidationReport:
    """Outcome of validating a stream."""

    valid: bool
    num_updates: int
    num_insertions: int
    num_deletions: int
    final_edge_count: int
    first_violation: Optional[str] = None

    def __bool__(self) -> bool:
        return self.valid


class StreamValidator:
    """Incremental validity checker for dynamic graph streams."""

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self._edges: Set[Edge] = set()
        self._insertions = 0
        self._deletions = 0
        self._violations: List[str] = []

    def observe(self, update: EdgeUpdate) -> None:
        """Feed one update; records (but does not raise on) violations."""
        if update.u >= self.num_nodes or update.v >= self.num_nodes:
            self._violations.append(
                f"update {update} references a node outside [0, {self.num_nodes})"
            )
            return
        if update.is_insert:
            if update.edge in self._edges:
                self._violations.append(f"edge {update.edge} inserted while present")
            else:
                self._edges.add(update.edge)
            self._insertions += 1
        else:
            if update.edge not in self._edges:
                self._violations.append(f"edge {update.edge} deleted while absent")
            else:
                self._edges.remove(update.edge)
            self._deletions += 1

    @property
    def current_edges(self) -> Set[Edge]:
        return set(self._edges)

    @property
    def violations(self) -> List[str]:
        return list(self._violations)

    def report(self) -> ValidationReport:
        return ValidationReport(
            valid=not self._violations,
            num_updates=self._insertions + self._deletions,
            num_insertions=self._insertions,
            num_deletions=self._deletions,
            final_edge_count=len(self._edges),
            first_violation=self._violations[0] if self._violations else None,
        )


def validate_stream(stream: GraphStream, raise_on_error: bool = False) -> ValidationReport:
    """Validate a whole stream; optionally raise on the first violation."""
    validator = StreamValidator(stream.num_nodes)
    for update in stream:
        validator.observe(update)
    report = validator.report()
    if raise_on_error and not report.valid:
        raise InvalidStreamError(report.first_violation or "invalid stream")
    return report


def assert_final_graph(stream: GraphStream, expected_edges: Iterable[Edge]) -> bool:
    """Whether the stream's final edge set equals ``expected_edges``."""
    return stream.final_edges() == set(expected_edges)
