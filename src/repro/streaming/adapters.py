"""Adapters between this library's graphs/streams and common ecosystems.

A downstream user rarely starts from an edge list: graphs usually live
in networkx objects, scipy sparse matrices, or plain files.  These
helpers convert in both directions without making the core library
depend on those packages (imports happen lazily inside the functions).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.spanning_forest import SpanningForest
from repro.exceptions import GraphGenerationError
from repro.streaming.generator import StreamConversionSettings, graph_to_stream
from repro.streaming.stream import GraphStream
from repro.types import Edge, canonical_edge


def edges_from_networkx(graph) -> Tuple[int, List[Edge], dict]:
    """Extract ``(num_nodes, edges, node_to_id)`` from a networkx graph.

    Node labels may be arbitrary hashables; they are mapped to dense
    integer ids in sorted-by-insertion order.  Self loops are dropped
    (the streaming model only covers simple graphs) and parallel edges
    collapse.
    """
    nodes = list(graph.nodes())
    node_to_id = {node: position for position, node in enumerate(nodes)}
    edges = []
    seen = set()
    for u, v in graph.edges():
        if u == v:
            continue
        edge = canonical_edge(node_to_id[u], node_to_id[v])
        if edge not in seen:
            seen.add(edge)
            edges.append(edge)
    return len(nodes), edges, node_to_id


def stream_from_networkx(
    graph,
    settings: Optional[StreamConversionSettings] = None,
    name: str = "networkx-stream",
) -> GraphStream:
    """Convert a networkx graph into a dynamic insert/delete stream."""
    num_nodes, edges, _ = edges_from_networkx(graph)
    if num_nodes < 2:
        raise GraphGenerationError("a stream needs a graph with at least two nodes")
    return graph_to_stream(num_nodes, edges, settings=settings, name=name)


def forest_to_networkx(forest: SpanningForest):
    """Convert a :class:`SpanningForest` into a networkx graph."""
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(range(forest.num_nodes))
    graph.add_edges_from(forest.edges)
    return graph


def edges_from_scipy_sparse(matrix) -> Tuple[int, List[Edge]]:
    """Extract ``(num_nodes, edges)`` from a (square) scipy sparse matrix.

    Any nonzero entry ``(i, j)`` with ``i != j`` contributes the
    undirected edge ``{i, j}``; the matrix does not need to be symmetric.
    """
    coo = matrix.tocoo()
    if coo.shape[0] != coo.shape[1]:
        raise GraphGenerationError("adjacency matrix must be square")
    num_nodes = int(coo.shape[0])
    seen = set()
    edges: List[Edge] = []
    for i, j, value in zip(coo.row.tolist(), coo.col.tolist(), coo.data.tolist()):
        if i == j or value == 0:
            continue
        edge = canonical_edge(int(i), int(j))
        if edge not in seen:
            seen.add(edge)
            edges.append(edge)
    return num_nodes, edges


def stream_from_scipy_sparse(
    matrix,
    settings: Optional[StreamConversionSettings] = None,
    name: str = "scipy-stream",
) -> GraphStream:
    """Convert a scipy sparse adjacency matrix into a dynamic stream."""
    num_nodes, edges = edges_from_scipy_sparse(matrix)
    if num_nodes < 2:
        raise GraphGenerationError("a stream needs a graph with at least two nodes")
    return graph_to_stream(num_nodes, edges, settings=settings, name=name)


def stream_from_edge_list(
    num_nodes: int,
    pairs: Iterable[Tuple[int, int]],
    settings: Optional[StreamConversionSettings] = None,
    name: str = "edge-list-stream",
) -> GraphStream:
    """Convert a plain iterable of endpoint pairs into a dynamic stream."""
    edges = []
    seen = set()
    for u, v in pairs:
        if u == v:
            continue
        edge = canonical_edge(u, v)
        if edge not in seen:
            seen.add(edge)
            edges.append(edge)
    return graph_to_stream(num_nodes, edges, settings=settings, name=name)
