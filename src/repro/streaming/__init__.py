"""Dynamic graph streams: types, conversion, validation and file I/O.

A dynamic graph stream is a sequence of edge insertions and deletions
that defines a graph (Section 2.1 of the paper).  This package provides

* :class:`repro.streaming.stream.GraphStream` -- an in-memory stream
  with its metadata (node count, final edge set size),
* :func:`repro.streaming.generator.graph_to_stream` -- the paper's
  procedure for turning a static graph into a randomised
  insert/delete stream (Section 6.1, guarantees i-iv),
* :class:`repro.streaming.validation.StreamValidator` -- checks that a
  stream respects the model's legality rules,
* :mod:`repro.streaming.io` -- text and binary stream file formats.
"""

from repro.streaming.generator import StreamConversionSettings, graph_to_stream
from repro.streaming.stream import GraphStream
from repro.streaming.validation import StreamValidator, validate_stream
from repro.streaming.io import (
    read_stream_binary,
    read_stream_text,
    write_stream_binary,
    write_stream_text,
)

__all__ = [
    "GraphStream",
    "StreamConversionSettings",
    "StreamValidator",
    "graph_to_stream",
    "read_stream_binary",
    "read_stream_text",
    "validate_stream",
    "write_stream_binary",
    "write_stream_text",
]
