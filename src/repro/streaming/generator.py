"""Converting a static graph into a dynamic insert/delete stream.

Section 6.1 of the paper turns each static input graph into a random
stream of edge insertions and deletions with four guarantees:

(i)   an insertion of edge ``e`` always occurs before a deletion of ``e``,
(ii)  an edge never receives two consecutive updates of the same type,
(iii) a small set of nodes (fewer than 150) is disconnected from the
      rest of the graph so the final graph has non-trivial components,
(iv)  by the end of the stream exactly the input graph remains (minus
      the edges removed to satisfy (iii)).

The conversion deliberately inserts *extra* edges that are not part of
the input graph, as long as they are deleted again before the stream
ends -- this is what makes deletions a first-class part of the
workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

import numpy as np

from repro.exceptions import GraphGenerationError
from repro.streaming.stream import GraphStream
from repro.types import Edge, EdgeUpdate, UpdateType, canonical_edge


@dataclass(frozen=True)
class StreamConversionSettings:
    """Knobs of the graph-to-stream conversion.

    Attributes
    ----------
    churn_fraction:
        Fraction of the input edge count added as extra insert+delete
        churn pairs (edges not in the final graph).
    disconnect_nodes:
        Number of nodes to isolate from the final graph (paper: fewer
        than 150); clamped to leave at least two connected nodes.
    reinsert_fraction:
        Fraction of the *kept* edges that are additionally deleted and
        re-inserted mid-stream (exercising rule (ii) without changing
        the final graph).
    seed:
        Seed of the permutation and churn randomness.
    """

    churn_fraction: float = 0.1
    disconnect_nodes: int = 8
    reinsert_fraction: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.churn_fraction < 0 or self.reinsert_fraction < 0:
            raise GraphGenerationError("churn/reinsert fractions must be non-negative")
        if self.disconnect_nodes < 0:
            raise GraphGenerationError("disconnect_nodes must be non-negative")


def graph_to_stream(
    num_nodes: int,
    edges: Sequence[Edge],
    settings: StreamConversionSettings | None = None,
    name: str = "stream",
) -> GraphStream:
    """Convert a static edge list into a randomised insert/delete stream.

    The returned stream satisfies guarantees (i)-(iv) above; its final
    edge set equals ``edges`` minus every edge incident to the nodes
    chosen for disconnection.
    """
    settings = settings or StreamConversionSettings()
    rng = np.random.default_rng(settings.seed)
    canonical = _canonicalise(edges)

    # (iii) choose nodes to disconnect; every edge touching them is
    # inserted and later deleted, so they end the stream isolated.
    num_disconnect = min(settings.disconnect_nodes, max(num_nodes - 2, 0))
    disconnected = set(
        int(node) for node in rng.choice(num_nodes, size=num_disconnect, replace=False)
    ) if num_disconnect else set()

    kept_edges: List[Edge] = []
    removed_edges: List[Edge] = []
    for edge in canonical:
        if edge[0] in disconnected or edge[1] in disconnected:
            removed_edges.append(edge)
        else:
            kept_edges.append(edge)

    # Extra churn edges: sampled uniformly from slots not in the input
    # graph; inserted and deleted again before the stream ends.
    churn_edges = _sample_absent_edges(
        num_nodes, set(canonical), int(len(canonical) * settings.churn_fraction), rng
    )

    # Kept edges selected for a delete + re-insert cycle.
    num_reinsert = int(len(kept_edges) * settings.reinsert_fraction)
    reinsert_positions = (
        set(rng.choice(len(kept_edges), size=num_reinsert, replace=False).tolist())
        if num_reinsert
        else set()
    )

    # Build per-edge update sequences, then interleave them randomly
    # while preserving each edge's internal order (which is what
    # guarantees (i) and (ii)).
    per_edge_sequences: List[List[EdgeUpdate]] = []
    for position, edge in enumerate(kept_edges):
        u, v = edge
        if position in reinsert_positions:
            per_edge_sequences.append(
                [
                    EdgeUpdate(u, v, UpdateType.INSERT),
                    EdgeUpdate(u, v, UpdateType.DELETE),
                    EdgeUpdate(u, v, UpdateType.INSERT),
                ]
            )
        else:
            per_edge_sequences.append([EdgeUpdate(u, v, UpdateType.INSERT)])
    for u, v in removed_edges + churn_edges:
        per_edge_sequences.append(
            [EdgeUpdate(u, v, UpdateType.INSERT), EdgeUpdate(u, v, UpdateType.DELETE)]
        )

    updates = _interleave(per_edge_sequences, rng)
    return GraphStream(num_nodes=num_nodes, updates=updates, name=name)


# ----------------------------------------------------------------------
def _canonicalise(edges: Sequence[Edge]) -> List[Edge]:
    seen: Set[Edge] = set()
    result: List[Edge] = []
    for u, v in edges:
        edge = canonical_edge(u, v)
        if edge not in seen:
            seen.add(edge)
            result.append(edge)
    return result


def _sample_absent_edges(
    num_nodes: int, present: Set[Edge], count: int, rng: np.random.Generator
) -> List[Edge]:
    """Sample ``count`` distinct edges not present in the input graph."""
    max_edges = num_nodes * (num_nodes - 1) // 2
    count = min(count, max(0, max_edges - len(present)))
    absent: List[Edge] = []
    chosen: Set[Edge] = set()
    attempts = 0
    while len(absent) < count and attempts < 50 * (count + 1):
        attempts += 1
        u = int(rng.integers(0, num_nodes))
        v = int(rng.integers(0, num_nodes))
        if u == v:
            continue
        edge = canonical_edge(u, v)
        if edge in present or edge in chosen:
            continue
        chosen.add(edge)
        absent.append(edge)
    return absent


def _interleave(
    sequences: List[List[EdgeUpdate]], rng: np.random.Generator
) -> List[EdgeUpdate]:
    """Randomly interleave sequences, preserving each sequence's order."""
    total = sum(len(sequence) for sequence in sequences)
    # Build a tag array with one entry per update naming its sequence,
    # shuffle it, and emit each sequence's updates in tag order.
    tags = np.repeat(
        np.arange(len(sequences)), [len(sequence) for sequence in sequences]
    )
    rng.shuffle(tags)
    cursors = [0] * len(sequences)
    updates: List[EdgeUpdate] = []
    for tag in tags:
        sequence = sequences[tag]
        updates.append(sequence[cursors[tag]])
        cursors[tag] += 1
    assert len(updates) == total
    return updates
