"""Stream file formats.

Two interchangeable on-disk representations are provided:

* a human-readable text format, one update per line::

      # nodes=1024
      i 0 17
      d 0 17

* a compact binary format: a 16-byte header (magic, node count, update
  count) followed by one ``int64`` triple ``(kind, u, v)`` per update,
  written with numpy so multi-gigabyte streams load quickly.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import StreamFormatError
from repro.streaming.stream import GraphStream
from repro.types import EdgeUpdate, UpdateType

PathLike = Union[str, Path]

_BINARY_MAGIC = 0x475A5354  # "GZST"
_HEADER = struct.Struct("<IIQ")


# ----------------------------------------------------------------------
# text format
# ----------------------------------------------------------------------
def write_stream_text(stream: GraphStream, path: PathLike) -> None:
    """Write a stream in the one-update-per-line text format."""
    path = Path(path)
    with path.open("w", encoding="ascii") as handle:
        handle.write(f"# nodes={stream.num_nodes}\n")
        for update in stream:
            tag = "i" if update.is_insert else "d"
            handle.write(f"{tag} {update.u} {update.v}\n")


def read_stream_text(path: PathLike, name: str | None = None) -> GraphStream:
    """Read a stream previously written by :func:`write_stream_text`."""
    path = Path(path)
    num_nodes = None
    updates = []
    with path.open("r", encoding="ascii") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "nodes=" in line:
                    num_nodes = int(line.split("nodes=")[1])
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in ("i", "d"):
                raise StreamFormatError(f"{path}:{line_number}: malformed line {line!r}")
            kind = UpdateType.INSERT if parts[0] == "i" else UpdateType.DELETE
            updates.append(EdgeUpdate(int(parts[1]), int(parts[2]), kind))
    if num_nodes is None:
        raise StreamFormatError(f"{path}: missing '# nodes=<V>' header")
    return GraphStream(num_nodes=num_nodes, updates=updates, name=name or path.stem)


# ----------------------------------------------------------------------
# binary format
# ----------------------------------------------------------------------
def write_stream_binary(stream: GraphStream, path: PathLike) -> None:
    """Write a stream in the compact binary format."""
    path = Path(path)
    array = np.empty((len(stream), 3), dtype=np.int64)
    for position, update in enumerate(stream):
        array[position, 0] = 1 if update.is_insert else -1
        array[position, 1] = update.u
        array[position, 2] = update.v
    with path.open("wb") as handle:
        handle.write(_HEADER.pack(_BINARY_MAGIC, stream.num_nodes, len(stream)))
        handle.write(array.tobytes(order="C"))


def read_stream_binary(path: PathLike, name: str | None = None) -> GraphStream:
    """Read a stream previously written by :func:`write_stream_binary`."""
    path = Path(path)
    with path.open("rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise StreamFormatError(f"{path}: truncated header")
        magic, num_nodes, num_updates = _HEADER.unpack(header)
        if magic != _BINARY_MAGIC:
            raise StreamFormatError(f"{path}: bad magic {magic:#x}")
        payload = handle.read(num_updates * 3 * 8)
    if len(payload) != num_updates * 3 * 8:
        raise StreamFormatError(f"{path}: truncated update payload")
    array = np.frombuffer(payload, dtype=np.int64).reshape(num_updates, 3)
    updates = [
        EdgeUpdate(
            int(row[1]),
            int(row[2]),
            UpdateType.INSERT if row[0] == 1 else UpdateType.DELETE,
        )
        for row in array
    ]
    return GraphStream(num_nodes=int(num_nodes), updates=updates, name=name or path.stem)
