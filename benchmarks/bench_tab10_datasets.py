"""Table (Figure) 10: dimensions of the datasets used in the evaluation.

Regenerates every dataset of the paper's Table 10 at the benchmark's
scale reduction and prints the generated dimensions next to the paper's
full-scale numbers.  The assertions check the structural properties the
rest of the evaluation relies on: kron graphs are dense (about half of
all possible edges), the real-world stand-ins are sparse, and every
stream is a valid dynamic graph stream slightly longer than its final
edge count (because of the insert+delete churn).
"""

from conftest import BENCH_SCALE_REDUCTION, print_table

from repro.analysis.experiments import dataset_dimension_table
from repro.analysis.tables import render_table
from repro.streaming.validation import validate_stream

DATASETS = ["kron13", "kron15", "p2p-gnutella", "rec-amazon", "google-plus", "web-uk"]


def test_tab10_dataset_dimensions(benchmark):
    rows, datasets = benchmark(
        dataset_dimension_table,
        DATASETS,
        scale_reduction=BENCH_SCALE_REDUCTION + 2,
        seed=7,
    )
    print_table(
        render_table(
            rows,
            title=(
                "Table 10: dataset dimensions "
                f"(scale reduction 2^{BENCH_SCALE_REDUCTION + 2} vs the paper)"
            ),
        )
    )

    by_name = {row["dataset"]: row for row in rows}
    # Kron graphs are dense; stand-ins for the real-world graphs are sparse.
    assert by_name["kron13"]["density"] > 0.3
    assert by_name["kron15"]["density"] > 0.3
    assert by_name["p2p-gnutella"]["density"] < 0.1
    assert by_name["rec-amazon"]["density"] < 0.1
    # Stream updates >= final edges (insertions plus churn), as in the paper.
    for row in rows:
        assert row["stream_updates"] >= row["edges"]
    # Every generated stream is a legal dynamic graph stream.
    for dataset in datasets.values():
        assert validate_stream(dataset.stream).valid
