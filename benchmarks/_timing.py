"""Shared timing loop for the benchmark ledgers.

Every system-level ledger in this directory times multi-second
workloads on shared (often single-vCPU) CI hosts, where one-shot
timings swing 2-3x with host load.  The robust recipe, used identically
by the parallel, out-of-core, and distributed benchmarks:

* **median** of several repetitions -- the minimum would chase each
  path's luckiest run, the mean is dragged by a single load spike;
* repetitions **interleaved** across paths (every path once, then every
  path again) so a load spike degrades one repetition of *every* path
  instead of permanently deflating whichever row it landed on;
* the first repetition also absorbs allocator/page-cache warm-up.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Default timed repetitions; the median is recorded.
TIMING_REPS = 3


def interleaved_medians(
    specs: Sequence[Tuple[str, Callable[[], object]]],
    reps: int = TIMING_REPS,
    on_result: Optional[Callable[[str, int, object], None]] = None,
    on_rep_end: Optional[Callable[[int], None]] = None,
) -> Dict[str, float]:
    """Time every spec ``reps`` times, interleaved; return median seconds.

    ``specs`` is a sequence of ``(label, run)`` thunks.  After each
    timed run, ``on_result(label, rep, result)`` receives the run's
    return value and *owns* it -- correctness checks against other
    rows, and freeing (benchmark engines can hold pools of hundreds of
    megabytes), happen there so results never accumulate across the
    loop.  ``on_rep_end(rep)`` fires after each full interleaved pass,
    for state that must survive one whole repetition (e.g. a baseline
    engine the other rows are bit-compared against).
    """
    timings: Dict[str, List[float]] = {label: [] for label, _ in specs}
    for rep in range(reps):
        for label, run in specs:
            start = time.perf_counter()
            result = run()
            timings[label].append(max(time.perf_counter() - start, 1e-9))
            if on_result is not None:
                on_result(label, rep, result)
            del result
        if on_rep_end is not None:
            on_rep_end(rep)
    return {label: float(np.median(values)) for label, values in timings.items()}
