"""Figure 14: GraphZeppelin updates sketches in parallel.

The paper shows ingestion rate rising ~26x from 1 to 46 Graph Worker
threads on a 48-hyperthread machine.  A pure-Python run cannot show
that directly (the interpreter lock serialises most sketch work), so
this benchmark combines:

* a *measured* thread-pool run at small worker counts, verifying the
  parallel ingestion path is correct and not slower than expected, and
* the calibrated work/span *model* curve (see
  ``repro.parallel.cost_model``) extended to the paper's 46 threads,
  asserting the shape of the figure: monotone scaling with diminishing
  returns, reaching a >20x speedup at 46 threads.
"""

from conftest import print_table

from repro.analysis.experiments import thread_scaling_experiment
from repro.analysis.tables import render_table


def test_fig14_thread_scaling(benchmark, kron13):
    result = benchmark.pedantic(
        thread_scaling_experiment,
        kwargs=dict(
            dataset=kron13,
            measured_thread_counts=(1, 2, 4),
            modelled_thread_counts=(1, 2, 4, 8, 16, 24, 32, 40, 46),
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )

    print_table(
        render_table(result["measured"], title="Figure 14 (measured, Python thread pool)")
    )
    print_table(
        render_table(result["modelled"], title="Figure 14 (calibrated scaling model)")
    )

    modelled = {row["threads"]: row for row in result["modelled"]}
    # Monotone speedup with diminishing returns, landing near the paper's
    # ~26x at 46 threads.
    speedups = [modelled[t]["speedup"] for t in (1, 2, 4, 8, 16, 24, 32, 40, 46)]
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    assert 20 <= modelled[46]["speedup"] <= 32
    # Measured path processed the whole stream on every worker count.
    assert all(row["ingestion_rate"] > 0 for row in result["measured"])
