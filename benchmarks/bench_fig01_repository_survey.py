"""Figure 1: published graphs have few nodes or are sparse.

The paper's Figure 1 plots NetworkRepository datasets by node count and
density and notes that almost every one fits in 16 GB of RAM as an
adjacency list; the densest graphs never exceed ~10 GB.  This benchmark
regenerates the same summary statistics from the synthetic repository
population (see ``repro.analysis.repository_survey`` for the
substitution rationale) and times the survey generation.
"""

from conftest import print_table

from repro.analysis.repository_survey import survey_repository_graphs
from repro.analysis.tables import format_bytes, render_table


def test_fig01_repository_survey(benchmark):
    summary = benchmark(survey_repository_graphs, population=2000, seed=1)

    rows = [
        {
            "population": summary.total,
            "fraction_below_16GB": f"{summary.fraction_below_budget:.3f}",
            "largest_dense_graph": format_bytes(summary.max_dense_graph_bytes),
        }
    ]
    print_table(render_table(rows, title="Figure 1: repository survey (synthetic population)"))

    # The paper's observation: nearly all published graphs fit in 16 GB,
    # and dense graphs stay well below 10 GB.
    assert summary.fraction_below_budget > 0.9
    assert summary.max_dense_graph_bytes < 16 * 1024**3
