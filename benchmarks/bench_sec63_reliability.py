"""Section 6.3: GraphZeppelin is reliable (no observed failures).

The paper runs 1000 correctness checks per dataset on kron17 and the
four real-world graphs, comparing GraphZeppelin's answer against an
exact adjacency-matrix reference, and never observes a failure despite
the algorithm's (polynomially small) theoretical failure probability.

This benchmark runs the same check at reduced scale across one dense
kron stream and two sparse real-world stand-ins, over several
independent seeds, and asserts a zero observed failure rate.
"""

from conftest import BENCH_SCALE_REDUCTION, print_table

from repro.analysis.reliability import run_reliability_trials
from repro.analysis.tables import render_table
from repro.generators.datasets import load_dataset

RELIABILITY_DATASETS = ["kron13", "p2p-gnutella", "rec-amazon"]


def test_sec63_reliability(benchmark):
    def run():
        rows = []
        total_checks = 0
        total_failures = 0
        for name in RELIABILITY_DATASETS:
            dataset = load_dataset(name, scale_reduction=BENCH_SCALE_REDUCTION + 3, seed=11)
            result = run_reliability_trials(
                dataset.stream, num_checkpoints=5, trials=3, base_seed=100
            )
            rows.append(
                {
                    "dataset": name,
                    "nodes": dataset.num_nodes,
                    "checks": result.checks,
                    "failures": result.failures,
                    "incomplete_forests": result.incomplete_forests,
                }
            )
            total_checks += result.checks
            total_failures += result.failures
        return rows, total_checks, total_failures

    rows, total_checks, total_failures = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(render_table(rows, title="Section 6.3: correctness checks vs exact reference"))

    assert total_checks >= 30
    # The paper's headline: zero observed failures.
    assert total_failures == 0
