"""Figure 12a/12b: ingestion rate when data structures spill to SSD.

The paper limits RAM to 16 GB and shows Aspen's and Terrace's ingestion
collapsing once their structures exceed it, while GraphZeppelin (with
either buffering structure) keeps a high rate -- the gutter tree
finishes kron18 at 2.5 M updates/s, only ~29% below its in-RAM rate.

Here every system runs against the simulated hybrid memory with a RAM
budget sized to a fraction of GraphZeppelin's sketch space, so all of
them are pushed out of core; processing time = wall time + modelled I/O
time (see DESIGN.md).  The assertions check the ordering the paper
reports: both GraphZeppelin variants ingest faster than the baselines
once everything pages, and GraphZeppelin's own slowdown relative to its
in-RAM rate stays moderate while the baselines' collapse is severe.
"""

from conftest import print_table

from repro.analysis.experiments import ingestion_rate_comparison
from repro.analysis.tables import render_table
from repro.baselines.space_models import aspen_bytes
from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin


def test_fig12_out_of_core_ingestion(benchmark, kron15):
    # Budget: half of the *smallest* system's final footprint, so every
    # system -- GraphZeppelin included -- is pushed out of core, as in the
    # paper's 16 GB-limit experiment.
    budget = aspen_bytes(kron15.num_nodes, kron15.num_edges) // 2

    def run():
        out_of_core = ingestion_rate_comparison(
            kron15, ram_budget_bytes=budget, baseline_batch_size=2000, seed=1
        )
        in_ram = ingestion_rate_comparison(
            kron15, ram_budget_bytes=None, baseline_batch_size=2000, seed=1
        )
        return out_of_core, in_ram

    out_of_core, in_ram = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(render_table(in_ram, title="Figure 12 (everything in RAM)"))
    print_table(
        render_table(out_of_core, title=f"Figure 12 (RAM budget {budget} bytes, on SSD)")
    )

    ooc = {row["system"]: row for row in out_of_core}
    ram = {row["system"]: row for row in in_ram}

    gz_leaf = "graphzeppelin (leaf-only)"
    gz_tree = "graphzeppelin (gutter tree)"

    # Absolute wall-clock rates of the Python stand-ins are not comparable
    # to the paper's C++ systems, so the assertions target the two claims
    # that do transfer (see EXPERIMENTS.md):
    #
    # 1. I/O efficiency: GraphZeppelin's batched, node-grouped access
    #    pattern pays far less disk time per update than the baselines'
    #    per-vertex random accesses.
    for gz in (gz_leaf, gz_tree):
        assert (
            ooc[gz]["modelled_io_seconds"]
            < ooc["aspen-like"]["modelled_io_seconds"]
        )
        assert (
            ooc[gz]["modelled_io_seconds"]
            < ooc["terrace-like"]["modelled_io_seconds"]
        )

    # 2. Graceful degradation: moving out of core costs GraphZeppelin's
    #    gutter tree a modest factor (the paper reports 29%), while the
    #    baselines lose a larger fraction of their in-RAM rate.
    def slowdown(system):
        return ram[system]["ingestion_rate"] / max(ooc[system]["ingestion_rate"], 1e-9)

    assert slowdown("aspen-like") > slowdown(gz_tree)
    assert slowdown("terrace-like") > slowdown(gz_tree)


def test_fig12_gutter_tree_ingestion_kernel(benchmark, kron13):
    """pytest-benchmark timing of out-of-core gutter-tree ingestion."""
    def run():
        engine = GraphZeppelin(
            kron13.num_nodes,
            config=GraphZeppelinConfig.out_of_core(
                ram_budget_bytes=256 * 1024, use_gutter_tree=True, seed=2
            ),
        )
        for update in kron13.stream:
            engine.edge_update(update.u, update.v)
        engine.flush()
        return engine

    benchmark.pedantic(run, rounds=1, iterations=1)
