"""Native-kernel micro-benchmark: each compiled kernel vs its numpy twin.

The repo's performance ledger for the ``kernel_backend`` plane: the
three hot kernels -- the ingest fold, the whole-round segmented
XOR-reduce, and the batched bucket decode -- are timed head-to-head
against the numpy kernels on the same inputs, asserting bit-identity
and the ISSUE's >= 3x per-kernel speedup floor at full scale.  Two
end-to-end rows (serial ``ingest_batch``, whole-round spanning-forest
query) record what the fused kernels buy at the engine level.

Results land in ``BENCH_kernels.json`` next to the other ledgers; the
``kernel_backend`` field records which provider (``numba`` or ``cc``)
produced the numbers.  The whole module skips when no native provider
is usable (the numpy-only environment has nothing to measure).

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the workload
and drops the speedup floor to >1x -- tiny inputs under-amortise the
per-call dispatch overhead and shared CI runners add timing noise.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest
from conftest import print_table

from repro.analysis.tables import render_table
from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.kernels import native_kernels, native_unavailable_reason
from repro.sketch.flat_node_sketch import decode_column_batch, segmented_xor
from repro.sketch.tensor_pool import NodeTensorPool

NATIVE = native_kernels()

pytestmark = pytest.mark.skipif(
    NATIVE is None,
    reason=f"no native kernel provider usable ({native_unavailable_reason()})",
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_NODES = 2_000 if SMOKE else 20_000
NUM_UPDATES = 20_000 if SMOKE else 400_000
NUM_SEGMENTS = 100 if SMOKE else 600
DECODE_COMPONENTS = 2_000 if SMOKE else 20_000
REPEATS = 2 if SMOKE else 5
#: Per-kernel acceptance floor (ISSUE: >= 3x at full scale).  The
#: whole-round query reduce's floor is carried by its kernel row
#: (``segmented XOR-reduce``), the ingest floor by both fold rows.
MIN_KERNEL_SPEEDUP = 1.0 if SMOKE else 3.0
#: End-to-end serial-ingest floor: the fold dominates ingest, so the
#: 3x survives Amdahl at the engine level.
MIN_E2E_INGEST_SPEEDUP = 1.0 if SMOKE else 3.0
#: End-to-end query floor: informational -- the Boruvka merge loop,
#: relabeling, and encoder validation are Python/numpy work outside
#: the kernels, so the engine-level query gain is Amdahl-bound well
#: below the reduce kernel's own speedup (the ledger records both).
MIN_E2E_QUERY_SPEEDUP = 1.0 if SMOKE else 1.2

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _time(run, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9)


def _row(kernel: str, numpy_seconds: float, native_seconds: float,
         identical: bool, floor: float) -> dict:
    speedup = numpy_seconds / native_seconds
    assert identical, f"{kernel}: native result differs from numpy"
    assert speedup >= floor, (
        f"{kernel}: native only {speedup:.2f}x over numpy (need >= {floor}x)"
    )
    return {
        "kernel": kernel,
        "numpy_seconds": round(numpy_seconds, 5),
        "native_seconds": round(native_seconds, 5),
        "bit_identical": identical,
        "speedup": round(speedup, 2),
    }


def _random_edges(num_nodes: int, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    u = rng.integers(0, num_nodes, count)
    v = rng.integers(0, num_nodes, count)
    keep = u != v
    return np.stack([u[keep], v[keep]], axis=1).astype(np.int64)


def test_kernel_ledger():
    rng = np.random.default_rng(7)
    engine = GraphZeppelin(NUM_NODES, GraphZeppelinConfig(seed=42))
    encoder = engine.encoder
    rows = []

    # --- ingest fold (packed and wide bucket modes) -------------------
    dsts = np.sort(rng.integers(0, NUM_NODES, NUM_UPDATES)).astype(np.int64)
    indices = rng.integers(0, encoder.vector_length, NUM_UPDATES, dtype=np.uint64)
    for mode, force_wide in (("packed", False), ("wide", True)):
        pools = {}

        def fold(kernels=None, _wide=force_wide, _store=pools):
            pool = NodeTensorPool(
                NUM_NODES, encoder, graph_seed=42, force_wide=_wide, kernels=kernels
            )
            pool.apply_updates(dsts, indices)
            _store["native" if kernels else "numpy"] = pool

        t_numpy = _time(lambda: fold())
        t_native = _time(lambda: fold(NATIVE))
        ref_a, ref_g = pools["numpy"].raw_tensors()
        got_a, got_g = pools["native"].raw_tensors()
        identical = np.array_equal(ref_a, got_a) and np.array_equal(
            np.asarray(ref_g, dtype=np.uint64), np.asarray(got_g, dtype=np.uint64)
        )
        rows.append(
            _row(f"ingest fold ({mode})", t_numpy, t_native, identical,
                 MIN_KERNEL_SPEEDUP)
        )

    # --- whole-round segmented XOR-reduce -----------------------------
    pool = NodeTensorPool(NUM_NODES, encoder, graph_seed=42)
    pool.apply_updates(dsts, indices)
    labels = rng.integers(0, NUM_SEGMENTS, NUM_NODES)
    order = np.argsort(labels, kind="stable")
    nodes = order.astype(np.int64)
    seg_starts = np.flatnonzero(
        np.r_[True, np.diff(labels[order]) != 0]
    ).astype(np.int64)
    key = "packed" if pool._packed else "alpha"
    slab = pool._round_view(key, 0)
    cols, bucket_rows = pool.num_columns, pool.num_rows
    width = cols * bucket_rows

    expected = segmented_xor(
        slab[nodes, 0:cols].reshape(nodes.size, width), seg_starts
    )
    got = NATIVE.segment_xor(slab, nodes, seg_starts, 0, cols, bucket_rows)
    t_numpy = _time(
        lambda: segmented_xor(
            slab[nodes, 0:cols].reshape(nodes.size, width), seg_starts
        )
    )
    t_native = _time(
        lambda: NATIVE.segment_xor(slab, nodes, seg_starts, 0, cols, bucket_rows)
    )
    rows.append(
        _row("segmented XOR-reduce", t_numpy, t_native,
             np.array_equal(expected, got), MIN_KERNEL_SPEEDUP)
    )

    # --- batched bucket decode ----------------------------------------
    alpha = rng.integers(
        0, encoder.vector_length, (DECODE_COMPONENTS, bucket_rows), dtype=np.uint64
    )
    gamma = rng.integers(0, 1 << 32, (DECODE_COMPONENTS, bucket_rows), dtype=np.uint64)
    mixed_seed = pool._mixed_checksum[0]
    from repro.hashing.mixers import finalise_hash64_inplace

    planted = alpha[::3, 1].copy()
    gamma[::3, 1] = finalise_hash64_inplace(planted ^ mixed_seed) & np.uint64(
        0xFFFFFFFF
    )
    alpha[::5] = 0
    gamma[::5] = 0
    expected = decode_column_batch(alpha, gamma, encoder.vector_length, mixed_seed)
    got = NATIVE.decode_column(alpha, gamma, encoder.vector_length, mixed_seed)
    t_numpy = _time(
        lambda: decode_column_batch(alpha, gamma, encoder.vector_length, mixed_seed)
    )
    t_native = _time(
        lambda: NATIVE.decode_column(alpha, gamma, encoder.vector_length, mixed_seed)
    )
    rows.append(
        _row("bucket decode", t_numpy, t_native,
             all(np.array_equal(e, g) for e, g in zip(expected, got)),
             MIN_KERNEL_SPEEDUP)
    )

    # --- end to end: serial ingest and whole-round query --------------
    edges = _random_edges(NUM_NODES, NUM_UPDATES // 4, seed=5)
    engines = {}

    def e2e_ingest(backend):
        eng = GraphZeppelin(
            NUM_NODES, GraphZeppelinConfig(seed=42, kernel_backend=backend)
        )
        eng.ingest_batch(edges)
        engines[backend] = eng

    t_numpy = _time(lambda: e2e_ingest("numpy"), repeats=max(REPEATS - 2, 1))
    t_native = _time(lambda: e2e_ingest("native"), repeats=max(REPEATS - 2, 1))
    ref_a, ref_g = engines["numpy"].tensor_pool.raw_tensors()
    got_a, got_g = engines["native"].tensor_pool.raw_tensors()
    identical = np.array_equal(ref_a, got_a) and np.array_equal(
        np.asarray(ref_g, dtype=np.uint64), np.asarray(got_g, dtype=np.uint64)
    )
    rows.append(
        _row("end-to-end serial ingest", t_numpy, t_native, identical,
             MIN_E2E_INGEST_SPEEDUP)
    )

    forests = {}

    def e2e_query(backend):
        eng = engines[backend]
        eng._cached_forest = None
        forests[backend] = eng.list_spanning_forest()

    t_numpy = _time(lambda: e2e_query("numpy"))
    t_native = _time(lambda: e2e_query("native"))
    identical = (
        forests["numpy"].partition_signature()
        == forests["native"].partition_signature()
    ) and sorted(forests["numpy"].edges) == sorted(forests["native"].edges)
    rows.append(
        _row("end-to-end whole-round query", t_numpy, t_native, identical,
             MIN_E2E_QUERY_SPEEDUP)
    )

    print_table(
        render_table(
            rows,
            title=(
                f"Native kernels vs numpy ({NATIVE.name} provider, "
                f"{NUM_NODES} nodes, {NUM_UPDATES} updates"
                f"{', smoke' if SMOKE else ''})"
            ),
        )
    )

    payload = {
        "kernel_backend": NATIVE.name,
        "num_nodes": NUM_NODES,
        "num_updates": NUM_UPDATES,
        "smoke": SMOKE,
        "rows": rows,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
