"""Ablation benchmarks for the design choices called out in DESIGN.md.

Two ablations that do not correspond to a single figure but back claims
made in Sections 2-3 of the paper:

* **Column count (failure probability delta).**  Each CubeSketch column
  costs 12 bytes per row and buys a constant factor of failure
  probability; the paper fixes delta = 1/100 (7 columns).  The sweep
  measures the observed per-query failure rate as columns are removed,
  confirming that the paper's choice sits comfortably below 1% while a
  single column fails noticeably often.

* **End-to-end StreamingCC vs GraphZeppelin.**  Section 3 argues that
  building the connectivity sketch on the general-purpose sampler is
  infeasible (the paper estimates ~29 updates/second for a million-node
  graph).  Both engines run the same small stream here; the assertion is
  the orders-of-magnitude ingestion-rate gap, which is the reason
  CubeSketch exists.
"""

import time

import numpy as np
from conftest import print_table

from repro.analysis.tables import render_table
from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.core.streaming_cc import StreamingCC
from repro.generators.erdos_renyi import erdos_renyi_gnm
from repro.sketch.cubesketch import CubeSketch
from repro.streaming.generator import StreamConversionSettings, graph_to_stream


def test_ablation_column_count_vs_failure_rate(benchmark):
    """Observed sampler failure rate as a function of the column count."""
    vector_length = 4096
    trials = 400
    rng = np.random.default_rng(0)

    def run():
        rows = []
        for columns in (1, 2, 4, 7, 10):
            failures = 0
            for trial in range(trials):
                sketch = CubeSketch(
                    vector_length, seed=trial * 31 + columns, num_columns=columns
                )
                support = rng.choice(
                    vector_length, size=int(rng.integers(1, 400)), replace=False
                )
                sketch.update_batch(support.astype(np.uint64))
                if sketch.query().is_fail:
                    failures += 1
            rows.append(
                {
                    "columns": columns,
                    "delta_bound": round(0.5**columns, 4),
                    "observed_failure_rate": round(failures / trials, 4),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(render_table(rows, title="Ablation: CubeSketch columns vs failure rate"))

    by_columns = {row["columns"]: row for row in rows}
    # More columns -> (weakly) fewer failures; the paper's 7 columns keep
    # the observed rate at or below the 1% bound.
    assert by_columns[7]["observed_failure_rate"] <= 0.01 + 0.01
    assert by_columns[1]["observed_failure_rate"] >= by_columns[7]["observed_failure_rate"]
    # Every observed rate respects its theoretical bound (with slack for
    # sampling noise over 400 trials).
    for row in rows:
        assert row["observed_failure_rate"] <= row["delta_bound"] + 0.03


def test_ablation_streaming_cc_vs_graphzeppelin(benchmark):
    """StreamingCC vs GraphZeppelin: same answers, very different sketch cost.

    End-to-end rates at the tiny scales this harness runs are dominated
    by Python per-update overhead, so the speed comparison is made at the
    node-sketch level (the work that scales with graph size): applying
    the same batch of edge updates to one node's worth of general-purpose
    sketches vs one node's worth of CubeSketches.
    """
    # Part 1: both engines give the same component structure on a stream.
    num_nodes, edges = erdos_renyi_gnm(32, 120, seed=1)
    stream = graph_to_stream(
        num_nodes, edges, settings=StreamConversionSettings(seed=2, disconnect_nodes=2)
    )

    def answers_agree():
        scc = StreamingCC(num_nodes, seed=3)
        scc.ingest(stream)
        gz = GraphZeppelin(num_nodes, config=GraphZeppelinConfig(seed=3))
        gz.ingest(stream)
        return (
            scc.list_spanning_forest().partition_signature()
            == gz.list_spanning_forest().partition_signature()
        )

    # Part 2: per-node-sketch update cost at a realistic vector length.
    graph_nodes = 1024                      # vector length ~10^6
    rounds = 10                             # log2(graph_nodes) rounds per node
    vector_length = graph_nodes * graph_nodes
    updates = 2000
    rng = np.random.default_rng(4)
    indices = rng.integers(0, vector_length, size=updates, dtype=np.uint64)

    def run():
        same_answer = answers_agree()

        from repro.sketch.standard_l0 import StandardL0Sketch

        standard_node = [StandardL0Sketch(vector_length, seed=r) for r in range(rounds)]
        start = time.perf_counter()
        for sketch in standard_node:
            for index in indices[:200]:
                sketch.update(int(index), 1)
        standard_seconds = (time.perf_counter() - start) * (updates / 200)

        cube_node = [CubeSketch(vector_length, seed=r) for r in range(rounds)]
        start = time.perf_counter()
        for sketch in cube_node:
            sketch.update_batch(indices)
        cube_seconds = time.perf_counter() - start

        return {
            "updates_per_node_sketch": updates,
            "streamingcc_node_rate": round(updates / standard_seconds, 1),
            "graphzeppelin_node_rate": round(updates / cube_seconds, 1),
            "speedup": round(standard_seconds / cube_seconds, 1),
            "same_answer": same_answer,
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        render_table(
            [row], title="Ablation: StreamingCC vs GraphZeppelin node-sketch update cost"
        )
    )
    assert row["same_answer"]
    # The CubeSketch-based node sketch must be dramatically faster to update.
    assert row["speedup"] > 5
