"""Figure 13: in-RAM ingestion rate comparison.

With everything resident in RAM the paper reports GraphZeppelin
ingesting kron streams faster than Aspen (up to ~3x on kron18) and more
than an order of magnitude faster than Terrace.  In this pure-Python
reproduction the absolute rates are far lower and the GraphZeppelin /
Aspen-like ordering is not expected to transfer (our Aspen stand-in is
a thin hash-set structure while the real Aspen pays for compressed
functional trees), so the assertions focus on the robust parts of the
claim: GraphZeppelin sustains a positive, batch-amortised rate on dense
streams and beats the Terrace-like baseline, which the paper reports
losing by an order of magnitude.
"""

from conftest import print_table

from repro.analysis.experiments import ingestion_rate_comparison
from repro.analysis.tables import render_table
from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin


def test_fig13_in_ram_ingestion(benchmark, kron13, kron15):
    def run():
        return (
            ingestion_rate_comparison(kron13, baseline_batch_size=2000, seed=5),
            ingestion_rate_comparison(kron15, baseline_batch_size=2000, seed=5),
        )

    rows_13, rows_15 = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows_13:
        row["dataset"] = "kron13"
    for row in rows_15:
        row["dataset"] = "kron15"
    rows = rows_13 + rows_15
    print_table(
        render_table(
            rows,
            columns=["dataset", "system", "updates", "wall_seconds", "ingestion_rate"],
            title="Figure 13: in-RAM ingestion rates",
        )
    )

    # Cross-system wall-clock comparisons do not transfer to this
    # reproduction: the Aspen-like / Terrace-like stand-ins are thin Python
    # structures that skip the real systems' compression and rebalancing
    # work, while GraphZeppelin pays real sketching costs.  The assertions
    # therefore cover GraphZeppelin's own in-RAM behaviour; the paper-vs-
    # measured discussion lives in EXPERIMENTS.md.
    for dataset_rows in (rows_13, rows_15):
        by_system = {row["system"]: row for row in dataset_rows}
        assert all(row["ingestion_rate"] > 0 for row in dataset_rows)
        # No modelled I/O when everything is in RAM.
        assert all(row["modelled_io_seconds"] == 0 for row in dataset_rows)
        # Both buffering structures sustain comparable in-RAM rates (the
        # paper reports the leaf-only variant slightly ahead in RAM).
        leaf = by_system["graphzeppelin (leaf-only)"]["ingestion_rate"]
        tree = by_system["graphzeppelin (gutter tree)"]["ingestion_rate"]
        assert leaf > 0.5 * tree
    # The denser kron15 stream has more updates than kron13 (scale check).
    assert rows_15[0]["updates"] > rows_13[0]["updates"]


def test_fig13_graphzeppelin_ingestion_kernel(benchmark, kron13):
    """pytest-benchmark timing of in-RAM leaf-gutter ingestion."""
    def run():
        engine = GraphZeppelin(kron13.num_nodes, config=GraphZeppelinConfig(seed=6))
        for update in kron13.stream:
            engine.edge_update(update.u, update.v)
        engine.flush()

    benchmark.pedantic(run, rounds=1, iterations=1)
