"""Resilience benchmark: checkpoint overhead, recovery time, kill-recovery.

The repo's performance ledger for the fault-tolerance plane (ISSUE 6).
Four numbers over the same random multi-graph stream:

* ``serial baseline``: chunked ``ingest_batch``, no checkpointing --
  what the checkpoint overhead is measured against;
* ``checkpointed``: the same ingest with a
  :class:`~repro.resilience.checkpoint.Checkpointer` attached at the
  default interval (every 100k updates, rotating ``keep=2``
  generations).  Acceptance: **overhead <= 15%** over the baseline;
* ``recovery``: :func:`~repro.resilience.checkpoint.recover_latest`
  over the checkpointed run's directory -- how long a crash-restart
  takes to get back to a queryable engine;
* ``distributed x3`` fault-free vs ``kill 1-of-3``: supervised
  distributed ingest where a seeded
  :class:`~repro.resilience.faults.FaultPlan` SIGKILLs one worker
  mid-slice; the supervisor re-dispatches it and the merged engine is
  checked **bit-identical** to the serial baseline -- the self-healing
  property the plane rests on.

Smoke mode (``REPRO_BENCH_SMOKE=1``, CI) shrinks the workload and only
asserts the correctness properties (checkpoints written, recovery
bit-identity, kill-recovery bit-identity) -- overhead ratios are
meaningless at smoke scale.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
from _timing import TIMING_REPS, interleaved_medians
from conftest import print_table

from repro.analysis.tables import render_table
from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.distributed.multi_ingestor import distributed_ingest
from repro.generators.random_graphs import random_multigraph_edges
from repro.parallel.cost_model import usable_cores
from repro.resilience import CheckpointPolicy, FaultPlan, FaultSpec, recover_latest

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_NODES = 400 if SMOKE else 2_000
NUM_EDGES = 2_000 if SMOKE else 300_000
CHUNK = 1 << 15
#: The default policy interval (smoke shrinks it so checkpoints happen).
CHECKPOINT_EVERY = 500 if SMOKE else 250_000
#: ISSUE 6 acceptance: checkpointing at the default interval may cost at
#: most this fraction of ingest time.
MAX_CHECKPOINT_OVERHEAD = 0.15
#: Which batch the killed worker dies on.  Mid-slice at full scale; the
#: smoke workload's slices only span one chunk, so the kill lands there.
KILL_AT_BATCH = 1 if SMOKE else 2

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

SEED = 23


def _pools_equal(a: GraphZeppelin, b: GraphZeppelin) -> bool:
    return all(
        np.array_equal(np.asarray(x, dtype=np.uint64), np.asarray(y, dtype=np.uint64))
        for x, y in zip(a.tensor_pool.raw_tensors(), b.tensor_pool.raw_tensors())
    )


def test_resilience_ledger():
    edges = random_multigraph_edges(NUM_NODES, NUM_EDGES, seed=5)
    count = int(edges.shape[0])
    config = GraphZeppelinConfig(seed=SEED)
    policy = CheckpointPolicy(every_n_updates=CHECKPOINT_EVERY, keep=2)
    workroot = Path(tempfile.mkdtemp(prefix="repro-bench-resilience-"))

    def serial():
        engine = GraphZeppelin(NUM_NODES, config=config)
        for start in range(0, count, CHUNK):
            engine.ingest_batch(edges[start : start + CHUNK])
        return engine, None

    def checkpointed():
        directory = workroot / f"ckpt-{time.monotonic_ns()}"
        engine = GraphZeppelin(NUM_NODES, config=config)
        checkpointer = engine.attach_checkpointer(directory, policy=policy)
        for start in range(0, count, CHUNK):
            engine.ingest_batch(edges[start : start + CHUNK])
        return engine, checkpointer

    kill_plan = FaultPlan(
        [FaultSpec(site="worker", worker=1, at=KILL_AT_BATCH, mode="kill")],
        seed=SEED,
    )

    def distributed(fault_plan):
        def run():
            return distributed_ingest(
                edges,
                NUM_NODES,
                config=config,
                num_ingestors=3,
                chunk_size=CHUNK,
                fault_plan=fault_plan,
            )

        return run

    specs = [
        ("serial baseline (no checkpoints)", serial),
        (f"checkpointed (every {CHECKPOINT_EVERY})", checkpointed),
        ("distributed x3 (fault-free)", distributed(None)),
        ("distributed x3 (1 worker killed)", distributed(kill_plan)),
    ]

    reference = {}
    checkpoints_written = {}
    checkpoint_dirs = []
    identical = {}
    retries = {}

    def on_result(label: str, rep: int, result) -> None:
        engine, extra = result
        if label.startswith("serial"):
            if rep == 0:
                reference["engine"] = engine
                reference["forest"] = (
                    engine.list_spanning_forest().partition_signature()
                )
            return
        if rep == 0:
            identical[label] = bool(
                _pools_equal(reference["engine"], engine)
                and engine.list_spanning_forest().partition_signature()
                == reference["forest"]
            )
        if label.startswith("checkpointed") and extra is not None:
            checkpoints_written[label] = extra.checkpoints_written
            checkpoint_dirs.append(extra.directory)
        if label.startswith("distributed") and extra is not None:
            retries.setdefault(label, extra.worker_retries)

    def on_rep_end(rep: int) -> None:
        if rep == TIMING_REPS - 1:
            reference.pop("engine", None)

    try:
        medians = interleaved_medians(
            specs, reps=TIMING_REPS, on_result=on_result, on_rep_end=on_rep_end
        )

        # Recovery time: newest valid generation back to a queryable
        # engine (median across the checkpointed runs' directories).
        recovery_times = []
        recovered_ok = True
        for directory in checkpoint_dirs[:TIMING_REPS]:
            start = time.perf_counter()
            engine, _path, _skipped = recover_latest(directory, config=config)
            recovery_times.append(time.perf_counter() - start)
            engine.ingest_batch(edges[engine.resume_offset :])
            recovered_ok = recovered_ok and (
                engine.list_spanning_forest().partition_signature()
                == reference["forest"]
            )
        recovery_seconds = float(np.median(recovery_times))
    finally:
        shutil.rmtree(workroot, ignore_errors=True)

    baseline = medians["serial baseline (no checkpoints)"]
    checkpointed_label = f"checkpointed (every {CHECKPOINT_EVERY})"
    overhead = medians[checkpointed_label] / baseline - 1.0

    rows = []
    for label, _ in specs:
        seconds = medians[label]
        row = {
            "path": label,
            "updates": count,
            "seconds": round(seconds, 4),
            "updates_per_sec": round(count / seconds, 1),
        }
        if label == checkpointed_label:
            row["checkpoints"] = checkpoints_written[label]
            row["overhead_vs_baseline"] = round(overhead, 4)
        if label in identical:
            row["bit_identical"] = identical[label]
        if label in retries:
            row["worker_retries"] = retries[label]
        rows.append(row)
    rows.append(
        {
            "path": "recovery (recover_latest)",
            "updates": count,
            "seconds": round(recovery_seconds, 4),
            "bit_identical": recovered_ok,
        }
    )

    print_table(
        render_table(
            rows,
            title=(
                f"Fault-tolerance plane ({NUM_NODES} nodes, {count} edge "
                f"updates, {usable_cores()} cores{', smoke' if SMOKE else ''})"
            ),
        )
    )

    payload = {
        "num_nodes": NUM_NODES,
        "num_edge_updates": count,
        "cores": usable_cores(),
        "smoke": SMOKE,
        "checkpoint_every": CHECKPOINT_EVERY,
        "checkpoint_overhead": round(overhead, 4),
        "max_checkpoint_overhead": MAX_CHECKPOINT_OVERHEAD,
        "recovery_seconds": round(recovery_seconds, 4),
        "kill_recovery_bit_identical": identical[
            "distributed x3 (1 worker killed)"
        ],
        "rows": rows,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")

    assert checkpoints_written[checkpointed_label] >= 1, (
        "the checkpointed run never checkpointed; the overhead number is vacuous"
    )
    assert recovered_ok, "recovery + suffix re-ingest diverged from the baseline"
    assert all(identical.values()), (
        f"a resilience path diverged from serial ingest: {identical}"
    )
    assert retries["distributed x3 (1 worker killed)"] >= 1, (
        "the kill plan injected nothing; the recovery row measured a "
        "fault-free run"
    )
    if SMOKE:
        return
    assert overhead <= MAX_CHECKPOINT_OVERHEAD, (
        f"checkpointing at the default interval costs {overhead:.1%} "
        f"(acceptance: <= {MAX_CHECKPOINT_OVERHEAD:.0%})"
    )


if __name__ == "__main__":
    test_resilience_ledger()
