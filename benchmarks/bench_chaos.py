"""Chaos benchmark: guard overhead, backpressure, and the composite soak.

The repo's performance ledger for the overload & degradation plane
(ISSUE 8).  Five rows over the same random multi-graph stream:

* ``paged baseline``: chunked out-of-core ingest with no overload
  guards -- what the guard overhead is measured against;
* ``guarded``: the same ingest with a per-operation device deadline
  and a circuit breaker armed.  On a healthy device both are pure
  bookkeeping, so the acceptance bar is **overhead <= 5%**;
* ``backpressured stream``: pipelined
  :meth:`~repro.parallel.graph_workers.ShardedIngestor.ingest_stream`
  with a bounded hand-off queue; the recorded ``peak_queued_bytes``
  must stay under the bound while the result stays bit-identical;
* ``chaos soak (flat)`` and ``chaos soak (paged)``: a seeded
  :class:`~repro.resilience.chaos.ChaosSchedule` mixing every fault
  family over repeated ingest/query/checkpoint/scrub/recover cycles.
  Both must end **bit-identical** to a fault-free serial shadow; the
  paged soak must additionally keep cached-plus-reserved bytes under
  the RAM budget at every observation point.

Smoke mode (``REPRO_BENCH_SMOKE=1``, CI) shrinks the workload and only
asserts the correctness properties -- overhead ratios are meaningless
at smoke scale.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
from _timing import TIMING_REPS, interleaved_medians
from conftest import print_table

from repro.analysis.tables import render_table
from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.generators.random_graphs import random_multigraph_edges
from repro.parallel.cost_model import usable_cores
from repro.parallel.graph_workers import ShardedIngestor
from repro.resilience import ChaosSchedule, run_chaos_soak
from repro.sketch.sizes import node_sketch_size_bytes

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_NODES = 400 if SMOKE else 2_000
NUM_EDGES = 2_000 if SMOKE else 60_000
CHUNK = 500 if SMOKE else 1 << 13
#: The soak re-ingests stream suffixes on every recovery, so its
#: workload is kept below the timing rows'.
CHAOS_EDGES = 1_500 if SMOKE else 20_000
CHAOS_CYCLES = 8 if SMOKE else 24
#: Supervisor timeouts scale with the slice workload: at full scale a
#: healthy paged worker slice runs for whole seconds, so the smoke
#: values would straggler-kill healthy workers into retry exhaustion.
STRAGGLER_TIMEOUT = 0.25 if SMOKE else 10.0
WORKER_DEADLINE = 2.0 if SMOKE else 60.0
#: ISSUE 8 acceptance: an armed deadline + breaker on a healthy device
#: may cost at most this fraction over the unguarded baseline.
MAX_GUARD_OVERHEAD = 0.05

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

SEED = 37


def _ram_budget() -> int:
    # An eighth of the sketch-state bytes: most pages live spilled, so
    # every ingest round trip crosses the guarded device-call path --
    # the regime the overhead bound is about.
    return node_sketch_size_bytes(NUM_NODES) * NUM_NODES // 8


def _paged_config(**overrides) -> GraphZeppelinConfig:
    return GraphZeppelinConfig(
        seed=SEED, ram_budget_bytes=_ram_budget(), **overrides
    )


def _ingest(engine: GraphZeppelin, edges: np.ndarray) -> GraphZeppelin:
    for start in range(0, edges.shape[0], CHUNK):
        engine.ingest_batch(edges[start : start + CHUNK])
    engine.flush()
    return engine


def _pools_equal(a: GraphZeppelin, b: GraphZeppelin) -> bool:
    a.flush()
    b.flush()
    return all(
        np.array_equal(np.asarray(x, dtype=np.uint64), np.asarray(y, dtype=np.uint64))
        for x, y in zip(a.tensor_pool.raw_tensors(), b.tensor_pool.raw_tensors())
    )


def test_chaos_ledger():
    edges = random_multigraph_edges(NUM_NODES, NUM_EDGES, seed=5)
    count = int(edges.shape[0])
    chaos_edges = edges[:CHAOS_EDGES]
    workroot = Path(tempfile.mkdtemp(prefix="repro-bench-chaos-"))

    def baseline():
        return _ingest(GraphZeppelin(NUM_NODES, config=_paged_config()), edges)

    def guarded():
        config = _paged_config(io_deadline_seconds=5.0, io_breaker_threshold=5)
        return _ingest(GraphZeppelin(NUM_NODES, config=config), edges)

    guarded_label = "guarded (deadline + breaker)"
    specs = [
        ("paged baseline (no guards)", baseline),
        (guarded_label, guarded),
    ]

    reference = {}
    identical = {}

    def on_result(label: str, rep: int, result) -> None:
        if label.startswith("paged baseline"):
            if rep == 0:
                reference["engine"] = result
            return
        if rep == 0:
            identical[label] = _pools_equal(reference["engine"], result)

    try:
        medians = interleaved_medians(specs, reps=TIMING_REPS, on_result=on_result)

        # Backpressured pipelined stream: bound the hand-off queue at
        # three prepared batches and verify the recorded peak honours it.
        flat_config = GraphZeppelinConfig(seed=SEED)
        flat_serial = GraphZeppelin(NUM_NODES, config=flat_config)
        flat_serial.ingest_batch(edges)
        parallel = GraphZeppelin(NUM_NODES, config=flat_config)
        probe = ShardedIngestor(parallel, num_workers=2)
        with probe:
            single_batch_bytes = probe._batch_nbytes(
                probe._prepare(edges[:CHUNK])[1]
            )
        queue_bound = 3 * single_batch_bytes
        parallel = GraphZeppelin(NUM_NODES, config=flat_config)
        started = time.perf_counter()
        with ShardedIngestor(
            parallel, num_workers=2, max_queued_bytes=queue_bound
        ) as ingestor:
            ingestor.ingest_stream(
                edges[start : start + CHUNK] for start in range(0, count, CHUNK)
            )
            peak_queued = ingestor.peak_queued_bytes
        backpressure_seconds = time.perf_counter() - started
        backpressure_identical = _pools_equal(parallel, flat_serial)

        # The composite soak, flat then paged.
        schedule = ChaosSchedule.random(
            seed=11, cycles=CHAOS_CYCLES, distributed_every=6, hang_seconds=0.3
        )
        chaos_shadow_flat = GraphZeppelin(NUM_NODES, config=flat_config)
        chaos_shadow_flat.ingest_batch(chaos_edges)
        flat_engine, flat_report = run_chaos_soak(
            schedule,
            chaos_edges,
            NUM_NODES,
            config=flat_config,
            workdir=workroot / "chaos-flat",
            straggler_timeout=STRAGGLER_TIMEOUT,
            worker_deadline=WORKER_DEADLINE,
        )
        flat_identical = _pools_equal(flat_engine, chaos_shadow_flat)

        paged_config = _paged_config(
            io_retry_attempts=2,
            io_retry_backoff_seconds=0.001,
            io_deadline_seconds=5.0,
            io_breaker_threshold=4,
        )
        chaos_shadow_paged = GraphZeppelin(NUM_NODES, config=paged_config)
        chaos_shadow_paged.ingest_batch(chaos_edges)
        paged_engine, paged_report = run_chaos_soak(
            schedule,
            chaos_edges,
            NUM_NODES,
            config=paged_config,
            workdir=workroot / "chaos-paged",
            straggler_timeout=STRAGGLER_TIMEOUT,
            worker_deadline=WORKER_DEADLINE,
        )
        # What the bit-identity verification itself costs in device
        # traffic: snapshot the soaked engine's IO counters, run the
        # full-pool comparison (which pages everything back in), diff.
        verify_io_before = paged_engine.io_stats.snapshot()
        paged_identical = _pools_equal(paged_engine, chaos_shadow_paged)
        verify_io = paged_engine.io_stats.diff(verify_io_before)
    finally:
        shutil.rmtree(workroot, ignore_errors=True)

    baseline_seconds = medians["paged baseline (no guards)"]
    overhead = medians[guarded_label] / baseline_seconds - 1.0

    rows = []
    for label, _ in specs:
        seconds = medians[label]
        row = {
            "path": label,
            "updates": count,
            "seconds": round(seconds, 4),
            "updates_per_sec": round(count / seconds, 1),
        }
        if label == guarded_label:
            row["overhead_vs_baseline"] = round(overhead, 4)
            row["bit_identical"] = identical[label]
        rows.append(row)
    rows.append(
        {
            "path": "backpressured stream (bounded queue)",
            "updates": count,
            "seconds": round(backpressure_seconds, 4),
            "updates_per_sec": round(count / backpressure_seconds, 1),
            "queue_bound_bytes": queue_bound,
            "peak_queued_bytes": peak_queued,
            "bit_identical": backpressure_identical,
        }
    )
    for name, report, ok in (
        ("chaos soak (flat)", flat_report, flat_identical),
        ("chaos soak (paged)", paged_report, paged_identical),
    ):
        rows.append(
            {
                "path": name,
                **(
                    {
                        "verify_block_reads": verify_io["block_reads"],
                        "verify_bytes_read": verify_io["bytes_read"],
                    }
                    if name.endswith("(paged)")
                    else {}
                ),
                "updates": report.updates_total,
                "seconds": round(report.elapsed_seconds, 4),
                "cycles": report.cycles,
                "modes": report.modes,
                "recoveries": report.recoveries,
                "repairs": report.repairs,
                "worker_retries": report.worker_retries,
                "pressure_events": report.pressure_events,
                "deadline_misses": report.deadline_misses,
                "breaker_rejections": report.breaker_rejections,
                "io_retries": report.io_retries,
                "peak_cached_bytes": report.peak_cached_bytes,
                "ram_budget_bytes": report.ram_budget_bytes,
                "health": report.final_health.get("status"),
                "bit_identical": ok,
            }
        )

    print_table(
        render_table(
            rows,
            title=(
                f"Overload & degradation plane ({NUM_NODES} nodes, {count} "
                f"edge updates, {usable_cores()} cores"
                f"{', smoke' if SMOKE else ''})"
            ),
        )
    )

    payload = {
        "num_nodes": NUM_NODES,
        "num_edge_updates": count,
        "chaos_edge_updates": int(chaos_edges.shape[0]),
        "chaos_cycles": CHAOS_CYCLES,
        "cores": usable_cores(),
        "smoke": SMOKE,
        "guard_overhead": round(overhead, 4),
        "max_guard_overhead": MAX_GUARD_OVERHEAD,
        "queue_bound_bytes": queue_bound,
        "peak_queued_bytes": peak_queued,
        "chaos_modes": flat_report.modes,
        "chaos_flat_bit_identical": flat_identical,
        "chaos_paged_bit_identical": paged_identical,
        "chaos_paged_peak_cached_bytes": paged_report.peak_cached_bytes,
        "chaos_paged_ram_budget_bytes": paged_report.ram_budget_bytes,
        "rows": rows,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")

    assert identical[guarded_label], "armed guards changed the ingest result"
    assert 0 < peak_queued <= queue_bound, (
        f"the bounded queue peaked at {peak_queued} bytes "
        f"(bound {queue_bound})"
    )
    assert backpressure_identical, "backpressured stream diverged from serial"
    assert len(flat_report.modes) >= 5, (
        f"the soak only injected {flat_report.modes}; the composite claim "
        "needs at least five fault modes"
    )
    assert flat_identical, "the flat chaos soak diverged from its shadow"
    assert paged_identical, "the paged chaos soak diverged from its shadow"
    assert (
        paged_report.peak_cached_bytes <= paged_report.ram_budget_bytes
    ), (
        f"RAM budget breached under chaos: peak {paged_report.peak_cached_bytes} "
        f"> budget {paged_report.ram_budget_bytes}"
    )
    if SMOKE:
        return
    assert overhead <= MAX_GUARD_OVERHEAD, (
        f"deadline + breaker on a healthy device cost {overhead:.1%} "
        f"(acceptance: <= {MAX_GUARD_OVERHEAD:.0%})"
    )


if __name__ == "__main__":
    test_chaos_ledger()
