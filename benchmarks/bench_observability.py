"""Observability benchmark: full instrumentation must be (nearly) free.

The repo's performance ledger for the observability plane (ISSUE 10).
Two timed comparisons over the same random multi-graph stream on the
flat in-RAM engine -- the hottest paths the span instrumentation
touches -- plus one cross-process aggregation check:

* ``instrumented ingest``: serial columnar ingest with the metrics
  registry enabled *and* a trace ring installed (the most expensive
  configuration).  Acceptance: **overhead <= 3%** over the same ingest
  with observability disabled, and the two runs stay **bit-identical**
  (instrumentation never perturbs a sketch bit);
* ``instrumented query``: a whole Boruvka connectivity query (every
  round spanned, rounds counted) against the disabled fast path, same
  bound, same engine, identical forests;
* ``distributed aggregation``: two worker processes ingest disjoint
  slices, each ships its registry snapshot next to its pool snapshot,
  and the merged ``report.metrics`` counter totals must equal the
  serial run's -- the metrics analogue of the XOR merge identity.

Smoke mode (``REPRO_BENCH_SMOKE=1``, CI) shrinks the workload and only
asserts the correctness properties (bit-identity, counter equality) --
the overhead ratios are meaningless at smoke scale.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np
from _timing import TIMING_REPS, interleaved_medians
from conftest import print_table

from repro.analysis.tables import render_table
from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.generators.random_graphs import random_multigraph_edges
from repro.observability import (
    default_registry,
    disable,
    enable,
    install_trace_ring,
)
from repro.observability.tracing import remove_trace_ring
from repro.parallel.cost_model import usable_cores

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_NODES = 400 if SMOKE else 2_000
NUM_EDGES = 2_000 if SMOKE else 60_000
CHUNK = 500 if SMOKE else 1 << 13
#: Cold whole-round queries per timed repetition (one query sits under
#: the perf_counter noise floor).
QUERY_LOOPS = 2 if SMOKE else 50
#: The query rows use more repetitions than the multi-second ingest
#: rows: each is short enough that host-load spikes dominate a
#: median-of-3.
QUERY_REPS = TIMING_REPS if SMOKE else 7
#: ISSUE 10 acceptance: full instrumentation (registry + trace ring)
#: may cost at most this fraction on the serial ingest and query paths.
MAX_OBSERVABILITY_OVERHEAD = 0.03

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_observability.json"

SEED = 43


def _config() -> GraphZeppelinConfig:
    return GraphZeppelinConfig(seed=SEED)


def _ingest(engine: GraphZeppelin, edges: np.ndarray) -> GraphZeppelin:
    for start in range(0, edges.shape[0], CHUNK):
        engine.ingest_batch(edges[start : start + CHUNK])
    return engine


def _tensors_equal(a: GraphZeppelin, b: GraphZeppelin) -> bool:
    return all(
        np.array_equal(np.asarray(x, dtype=np.uint64), np.asarray(y, dtype=np.uint64))
        for x, y in zip(a.tensor_pool.raw_tensors(), b.tensor_pool.raw_tensors())
    )


def test_observability_ledger():
    from repro.distributed.multi_ingestor import distributed_ingest

    edges = random_multigraph_edges(NUM_NODES, NUM_EDGES, seed=5)
    count = int(edges.shape[0])

    # ------------------------------------------------------------------
    # serial columnar ingest, observability on (registry + ring) vs off
    # ------------------------------------------------------------------
    def ingest_on():
        enable()
        install_trace_ring()
        return _ingest(GraphZeppelin(NUM_NODES, config=_config()), edges)

    def ingest_off():
        disable()
        remove_trace_ring()
        return _ingest(GraphZeppelin(NUM_NODES, config=_config()), edges)

    on_label = "instrumented ingest (registry + trace ring)"
    off_label = "bare ingest (observability off)"
    ingest_specs = [(on_label, ingest_on), (off_label, ingest_off)]

    kept = {}
    identical = {}

    def on_ingest_result(label: str, rep: int, engine: GraphZeppelin) -> None:
        if rep == 0:
            kept[label] = engine
            if len(kept) == 2:
                identical["ingest_on_vs_off"] = _tensors_equal(
                    kept[on_label], kept[off_label]
                )

    try:
        ingest_medians = interleaved_medians(
            ingest_specs, reps=TIMING_REPS, on_result=on_ingest_result
        )
        ingest_overhead = ingest_medians[on_label] / ingest_medians[off_label] - 1.0

        # --------------------------------------------------------------
        # whole-round query, same settled engine, toggled instrumentation
        # --------------------------------------------------------------
        engine = kept[on_label]
        forests = {}

        # One query is a few milliseconds -- under the timer's noise
        # floor -- so each timed repetition runs a small loop of full
        # cold queries and the ledger reports the per-query median.
        def query_on():
            enable()
            forest = None
            for _ in range(QUERY_LOOPS):
                engine._cached_forest = None
                forest = engine.list_spanning_forest()
            return forest

        def query_off():
            disable()
            forest = None
            for _ in range(QUERY_LOOPS):
                engine._cached_forest = None
                forest = engine.list_spanning_forest()
            return forest

        q_on_label = "instrumented query (spans + round counter)"
        q_off_label = "bare query (observability off)"
        query_specs = [(q_on_label, query_on), (q_off_label, query_off)]

        def on_query_result(label: str, rep: int, forest) -> None:
            if rep == 0:
                forests[label] = forest.partition_signature()

        query_medians = interleaved_medians(
            query_specs, reps=QUERY_REPS, on_result=on_query_result
        )
        query_overhead = query_medians[q_on_label] / query_medians[q_off_label] - 1.0
        identical["query_on_vs_off"] = forests[q_on_label] == forests[q_off_label]
        kept.clear()
    finally:
        enable()
        remove_trace_ring()

    # ------------------------------------------------------------------
    # distributed aggregation: merged worker counters == serial counters
    # ------------------------------------------------------------------
    default_registry().reset()
    serial = _ingest(GraphZeppelin(NUM_NODES, config=_config()), edges)
    serial_updates = default_registry().snapshot().counters["ingest.updates"]

    default_registry().reset()
    workroot = Path(tempfile.mkdtemp(prefix="repro-bench-observability-"))
    try:
        merged, report = distributed_ingest(
            edges, NUM_NODES, config=_config(), num_ingestors=2, workdir=workroot
        )
    finally:
        shutil.rmtree(workroot, ignore_errors=True)
    distributed_updates = (
        report.metrics.counters.get("ingest.updates", 0)
        if report.metrics is not None
        else 0
    )
    counters_equal = distributed_updates == serial_updates == count
    identical["distributed_vs_serial"] = _tensors_equal(merged, serial)
    default_registry().reset()

    rows = [
        {
            "path": on_label,
            "updates": count,
            "seconds": round(ingest_medians[on_label], 4),
            "updates_per_sec": round(count / ingest_medians[on_label], 1),
            "overhead_vs_bare": round(ingest_overhead, 4),
            "bit_identical": identical["ingest_on_vs_off"],
        },
        {
            "path": off_label,
            "updates": count,
            "seconds": round(ingest_medians[off_label], 4),
            "updates_per_sec": round(count / ingest_medians[off_label], 1),
        },
        {
            "path": q_on_label,
            "seconds": round(query_medians[q_on_label] / QUERY_LOOPS, 5),
            "overhead_vs_bare": round(query_overhead, 4),
            "bit_identical": identical["query_on_vs_off"],
        },
        {
            "path": q_off_label,
            "seconds": round(query_medians[q_off_label] / QUERY_LOOPS, 5),
        },
        {
            "path": "distributed x2 (merged worker metrics)",
            "updates": distributed_updates,
            "counters_equal_serial": counters_equal,
            "bit_identical": identical["distributed_vs_serial"],
        },
    ]

    print_table(
        render_table(
            rows,
            columns=[
                "path",
                "updates",
                "seconds",
                "updates_per_sec",
                "overhead_vs_bare",
                "counters_equal_serial",
                "bit_identical",
            ],
            title=(
                f"Observability plane ({NUM_NODES} nodes, {count} edge updates, "
                f"{usable_cores()} cores{', smoke' if SMOKE else ''})"
            ),
        )
    )

    payload = {
        "num_nodes": NUM_NODES,
        "num_edge_updates": count,
        "cores": usable_cores(),
        "smoke": SMOKE,
        "ingest_overhead": round(ingest_overhead, 4),
        "query_overhead": round(query_overhead, 4),
        "max_observability_overhead": MAX_OBSERVABILITY_OVERHEAD,
        "serial_ingest_updates_counter": serial_updates,
        "distributed_merged_updates_counter": distributed_updates,
        "counters_equal_serial": counters_equal,
        "rows": rows,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")

    assert identical["ingest_on_vs_off"], (
        "instrumentation perturbed engine state: the on/off ingests diverged"
    )
    assert identical["query_on_vs_off"], (
        "instrumentation changed a query answer"
    )
    assert identical["distributed_vs_serial"], (
        "the distributed merge diverged from serial ingest"
    )
    assert counters_equal, (
        f"merged worker counters claim {distributed_updates} updates, serial "
        f"counted {serial_updates} (stream holds {count})"
    )
    if SMOKE:
        return
    assert ingest_overhead <= MAX_OBSERVABILITY_OVERHEAD, (
        f"instrumented ingest costs {ingest_overhead:.1%} over the disabled "
        f"path (acceptance: <= {MAX_OBSERVABILITY_OVERHEAD:.0%})"
    )
    assert query_overhead <= MAX_OBSERVABILITY_OVERHEAD, (
        f"instrumented query costs {query_overhead:.1%} over the disabled "
        f"path (acceptance: <= {MAX_OBSERVABILITY_OVERHEAD:.0%})"
    )
