"""Parallel-ingest benchmark: sharded columnar workers vs serial columnar.

The repo's performance ledger for the parallel layer.  Five paths over
the same random multi-graph stream:

* ``serial columnar``: single-threaded ``ingest_batch`` -- the baseline
  the sharded pipeline must beat;
* ``sharded threads`` at 1, 2, and 4 workers: the
  :class:`~repro.parallel.graph_workers.ShardedIngestor` pipeline
  (partition + per-shard int16-radix folds) on the thread backend;
* ``sharded processes`` at 4 workers: pool tensors in shared memory,
  worker processes attached by name;
* ``legacy worker pool``: the seed design (per-node batches through
  per-node locks), measured on a slice of the stream and extrapolated,
  kept as the reference for how far the layer has come.

Every sharded row is checked for a **bit-identical** spanning forest
(and pool tensors) against the serial baseline, recorded per backend as
``forest_bit_identical`` in ``BENCH_parallel.json``.

The headline acceptance (ISSUE 3): sharded threads at 4 workers must
beat the serial columnar rate with margin on a 20k-node / 60k-update
stream (originally >= 2x; see ``MIN_SPEEDUP`` for how PR 9's serial
scratch arena recalibrated the floor).  On a single-core host the gap
comes from the sharded fold kernel itself (shard-local node offsets
keep the fold's sort on numpy's int16 radix path); on multi-core
hardware the thread scaling stacks on top.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the workload
and only requires parallel >= serial-columnar throughput, since tiny
per-shard groups under-amortise the kernel's fixed costs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
from _timing import TIMING_REPS, interleaved_medians
from conftest import print_table

from repro.analysis.tables import render_table
from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.generators.random_graphs import random_multigraph_edges
from repro.parallel.cost_model import usable_cores
from repro.parallel.graph_workers import ParallelIngestor, ShardedIngestor
from repro.types import EdgeUpdate, UpdateType

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Benchmark scale: the ISSUE's acceptance workload is a 20k-node,
#: 60k-update random stream; smoke mode shrinks it for CI.
NUM_NODES = 2_000 if SMOKE else 20_000
NUM_EDGES = 6_000 if SMOKE else 60_000
#: Required sharded-over-serial speedup at 4 workers (smoke only
#: asserts parallel >= serial).  ISSUE 3's original >= 2x floor was met
#: against the pre-arena serial baseline; PR 9's fold scratch arena
#: then sped *serial* columnar ~1.8x (the sharded path had already
#: amortised its allocations via the hash-once producer, so its
#: absolute rate is unchanged and the ratio narrowed to ~1.7x on one
#: core).  The floor asserts the sharded pipeline still beats the
#: faster baseline with margin; absolute rates live in the ledger.
MIN_SPEEDUP = 1.0 if SMOKE else 1.4
#: Stream slice for the (slow) legacy reference row.
LEGACY_SLICE = 1_000 if SMOKE else 5_000

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

SEED = 9

#: Hot-kernel backend of the measured engines (the committed ledger is
#: the numpy baseline; ``BENCH_kernels.json`` ledgers native-vs-numpy).
KERNEL_BACKEND = os.environ.get("REPRO_BENCH_KERNEL_BACKEND", "numpy")


def _engine() -> GraphZeppelin:
    return GraphZeppelin(
        NUM_NODES,
        config=GraphZeppelinConfig(seed=SEED, kernel_backend=KERNEL_BACKEND),
    )


def _release(engine: GraphZeppelin) -> None:
    """Free an engine's (possibly shared-memory) pool between rows."""
    if engine.tensor_pool is not None:
        engine.tensor_pool.release_shared()


def _pools_equal(a: GraphZeppelin, b: GraphZeppelin) -> bool:
    """Bit-compare two engines' pool tensors without unpacking copies."""
    pa, pb = a.tensor_pool, b.tensor_pool
    if pa._packed and pb._packed:
        return np.array_equal(pa._buckets, pb._buckets)
    return all(
        np.array_equal(x, y) for x, y in zip(pa.raw_tensors(), pb.raw_tensors())
    )


def test_parallel_ingest_ledger():
    edges = random_multigraph_edges(NUM_NODES, NUM_EDGES, seed=5)
    count = int(edges.shape[0])

    def serial():
        engine = _engine()
        engine.ingest_batch(edges)
        return engine

    def sharded(backend: str, workers: int):
        def run():
            engine = _engine()
            with ShardedIngestor(engine, num_workers=workers, backend=backend) as ing:
                ing.ingest_stream(
                    edges[s : s + (1 << 14)] for s in range(0, count, 1 << 14)
                )
            return engine

        return run

    def legacy():
        engine = _engine()
        stream = [
            EdgeUpdate(int(u), int(v), UpdateType.INSERT)
            for u, v in edges[:LEGACY_SLICE].tolist()
        ]
        with ParallelIngestor(engine, num_workers=4) as ing:
            ing.ingest(stream)
        return engine

    specs = [
        ("serial columnar (ingest_batch)", count, serial),
        ("sharded threads x1", count, sharded("threads", 1)),
        ("sharded threads x2", count, sharded("threads", 2)),
        ("sharded threads x4", count, sharded("threads", 4)),
        ("sharded processes x4", count, sharded("processes", 4)),
        ("legacy worker pool x4", LEGACY_SLICE, legacy),
    ]

    # Bit-identity of every sharded engine against the serial baseline
    # (first repetition only -- the paths are deterministic): identical
    # pool tensors imply identical forests, but both are checked so the
    # ledger records the user-visible guarantee.  Engines are verified
    # and freed as soon as possible -- the pools are hundreds of
    # megabytes at full scale -- except the baseline, which is kept
    # through the first interleaved pass for the comparisons.
    row_identical = {}
    reference = {}

    def on_result(label: str, rep: int, engine: GraphZeppelin) -> None:
        if rep == 0 and label.startswith("serial"):
            reference["engine"] = engine
            reference["forest"] = engine.list_spanning_forest().partition_signature()
            return
        if rep == 0 and label.startswith("sharded"):
            row_identical[label] = bool(
                _pools_equal(reference["engine"], engine)
                and engine.list_spanning_forest().partition_signature()
                == reference["forest"]
            )
        _release(engine)

    def on_rep_end(rep: int) -> None:
        if rep == 0:
            _release(reference.pop("engine"))

    medians = interleaved_medians(
        [(label, run) for label, _, run in specs],
        reps=TIMING_REPS,
        on_result=on_result,
        on_rep_end=on_rep_end,
    )

    rows = []
    for label, updates, _ in specs:
        seconds = medians[label]
        row = {
            "path": label,
            "updates": updates,
            "seconds": round(seconds, 4),
            "updates_per_sec": round(updates / seconds, 1),
        }
        if label in row_identical:
            row["forest_bit_identical"] = row_identical[label]
        rows.append(row)
    identical = {
        backend: all(
            same for label, same in row_identical.items() if backend in label
        )
        for backend in ("threads", "processes")
    }

    serial_rate = rows[0]["updates_per_sec"]
    for row in rows:
        row["speedup_vs_serial"] = round(row["updates_per_sec"] / serial_rate, 2)
    print_table(
        render_table(
            rows,
            title=(
                f"Parallel ingest ({NUM_NODES} nodes, {count} edge updates, "
                f"{usable_cores()} cores{', smoke' if SMOKE else ''})"
            ),
        )
    )

    payload = {
        "num_nodes": NUM_NODES,
        "num_edge_updates": count,
        "cores": usable_cores(),
        "kernel_backend": _engine().resolved_kernel_backend,
        "smoke": SMOKE,
        "forest_bit_identical": identical,
        "rows": rows,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert identical["threads"], "threads backend diverged from serial ingest"
    assert identical["processes"], "processes backend diverged from serial ingest"
    threads4 = next(r for r in rows if r["path"] == "sharded threads x4")
    assert threads4["updates_per_sec"] >= MIN_SPEEDUP * serial_rate, (
        f"sharded threads x4 only {threads4['updates_per_sec'] / serial_rate:.2f}x "
        f"over serial columnar (need >= {MIN_SPEEDUP}x)"
    )
