"""Figure 16: query latency while the stream is still being ingested.

The paper issues a connectivity query every 10% of the way through the
kron17 stream, in RAM (16a) and with a 12 GiB RAM limit (16b).  Early
in the stream the graph is sparse and Aspen/Terrace answer faster; as
the graph densifies their query time grows with the edge count while
GraphZeppelin's stays flat (it depends only on V), so GraphZeppelin
wins from ~70% onward and by 5x+ when both systems page from SSD.

Assertions here check the flat-vs-growing shape: GraphZeppelin's query
time at the end of the stream is close to its time early on, while the
Aspen-like baseline's grows with density.
"""

from conftest import print_table

from repro.analysis.experiments import query_latency_over_stream
from repro.analysis.tables import render_table


def test_fig16_query_latency_over_stream(benchmark, kron15):
    rows = benchmark.pedantic(
        query_latency_over_stream,
        kwargs=dict(
            dataset=kron15,
            num_checkpoints=10,
            gutter_fraction=0.1,
            baseline_batch_size=2000,
            seed=9,
        ),
        rounds=1,
        iterations=1,
    )
    print_table(render_table(rows, title="Figure 16a: query latency over the stream (in RAM)"))

    assert len(rows) >= 8
    gz_first, gz_last = rows[0]["graphzeppelin_query_seconds"], rows[-1][
        "graphzeppelin_query_seconds"
    ]
    aspen_first, aspen_last = rows[0]["aspen_query_seconds"], rows[-1]["aspen_query_seconds"]

    # GraphZeppelin's query cost is roughly flat across the stream
    # (within a small constant factor), because it depends only on V.
    assert gz_last <= 3 * max(gz_first, 1e-4)
    # The adjacency-based baseline's query grows as the graph densifies.
    assert aspen_last >= aspen_first
