"""Shared fixtures and configuration for the benchmark harness.

Every benchmark file reproduces one table or figure from the paper's
evaluation (see DESIGN.md for the index).  Benchmarks print their
result tables so a plain ``pytest benchmarks/ --benchmark-only -s``
run regenerates the paper's rows; the pytest-benchmark timings cover
the performance-critical kernels of each experiment.

Scale note: workload sizes default to laptop-friendly values (see
``BENCH_SCALE_REDUCTION``).  Setting the environment variable
``REPRO_BENCH_SCALE`` to a smaller reduction regenerates results closer
to the paper's scales at proportionally higher runtime.
"""

from __future__ import annotations

import os

import pytest

from repro.generators.datasets import load_dataset

#: How many powers of two the kron datasets are shrunk by, relative to
#: the paper (6 -> kron13 becomes 128 nodes, kron15 becomes 512 nodes).
BENCH_SCALE_REDUCTION = int(os.environ.get("REPRO_BENCH_SCALE", "6"))

#: Datasets used by the system-level benchmarks (the larger kron graphs
#: are covered by the closed-form space models instead of being built).
BENCH_KRON_DATASETS = ("kron13", "kron15")


@pytest.fixture(scope="session")
def bench_datasets():
    """Generated kron datasets shared by all system benchmarks."""
    return {
        name: load_dataset(name, scale_reduction=BENCH_SCALE_REDUCTION, seed=7)
        for name in BENCH_KRON_DATASETS
    }


@pytest.fixture(scope="session")
def kron13(bench_datasets):
    return bench_datasets["kron13"]


@pytest.fixture(scope="session")
def kron15(bench_datasets):
    return bench_datasets["kron15"]


def print_table(text: str) -> None:
    """Print a result table with surrounding whitespace so it is readable
    inside pytest output."""
    print("\n" + text + "\n")
