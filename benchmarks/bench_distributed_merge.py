"""Distributed-merge benchmark: K ingestor processes + XOR merge vs serial.

The repo's performance ledger for the snapshot/merge plane (ISSUE 5).
Three paths over the same random multi-graph stream:

* ``serial columnar``: single-process ``ingest_batch`` chunks -- the
  baseline the distributed pipeline is measured against;
* ``distributed x2`` / ``x4``: the stream partitioned round-robin
  across worker *processes* (each building an independent pool through
  the sharded columnar pipeline and snapshotting it), then all
  snapshots XOR-merged into one queryable engine
  (:func:`~repro.distributed.multi_ingestor.distributed_ingest`).
  Timing is **end-to-end**: worker startup, ingest, snapshot writes,
  and the merge all count; the merge phase is also reported separately
  (``merge_seconds``) since it is the serial tail that bounds scaling.

Every distributed row is checked **bit-identical** to the serial
baseline -- pool tensors and spanning forest -- which is the linearity
property the whole plane rests on.

Acceptance (ISSUE 5): distributed x4 >= 2x serial end-to-end.  Stream
parallelism multiplies throughput by (roughly) the usable core count
times the sharded kernel's single-core edge, so the 2x floor applies
where the processes can actually run in parallel -- hosts with >= 2
usable cores (CI runners, real deployments).  On a single-core
container the processes time-slice and the best possible outcome is
the kernel edge minus snapshot/merge overhead; there the floor is
``distributed x2 >= 1x`` (the plane's overhead must be fully
amortised -- checkpointed, restartable, mergeable ingest at no
throughput cost), with the multi-core floor asserted via the recorded
core count.  This mirrors the PR 3 parallel ledger, whose 4-worker
scaling row is likewise kernel-bound on one core.

Smoke mode (``REPRO_BENCH_SMOKE=1``, CI) shrinks the workload and only
asserts the bit-identity property -- process startup dominates tiny
streams.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
from _timing import TIMING_REPS, interleaved_medians
from conftest import print_table

from repro.analysis.tables import render_table
from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin
from repro.distributed.multi_ingestor import distributed_ingest
from repro.generators.random_graphs import random_multigraph_edges
from repro.parallel.cost_model import usable_cores

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Benchmark scale: a *heavy* stream over a modest node universe -- the
#: regime the distributed plane targets (update volume, not graph size,
#: is what gets split across ingestors; small pools also keep the
#: snapshot hand-off cheap relative to ingest).
NUM_NODES = 400 if SMOKE else 2_000
NUM_EDGES = 2_000 if SMOKE else 300_000
#: Ingest chunk for both the serial baseline and the workers.
CHUNK = 1 << 15
#: Required end-to-end speedup of distributed x4 over serial where the
#: worker processes have real cores to run on (ISSUE 5 acceptance).
MIN_SPEEDUP_MULTICORE = 2.0
#: Single-core floor: distributed x2 must at least amortise its own
#: snapshot/merge overhead (see the module docstring).
MIN_SPEEDUP_SINGLE_CORE = 1.0

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"

SEED = 17


def _pools_equal(a: GraphZeppelin, b: GraphZeppelin) -> bool:
    pa, pb = a.tensor_pool, b.tensor_pool
    if pa._packed and pb._packed:
        return np.array_equal(pa._buckets, pb._buckets)
    return all(
        np.array_equal(x, y) for x, y in zip(pa.raw_tensors(), pb.raw_tensors())
    )


def test_distributed_merge_ledger():
    edges = random_multigraph_edges(NUM_NODES, NUM_EDGES, seed=5)
    count = int(edges.shape[0])
    config = GraphZeppelinConfig(seed=SEED)

    def serial():
        engine = GraphZeppelin(NUM_NODES, config=config)
        for start in range(0, count, CHUNK):
            engine.ingest_batch(edges[start : start + CHUNK])
        return engine, None

    def distributed(num_ingestors: int):
        def run():
            return distributed_ingest(
                edges,
                NUM_NODES,
                config=config,
                num_ingestors=num_ingestors,
                chunk_size=CHUNK,
            )

        return run

    specs = [
        ("serial columnar (ingest_batch)", serial),
        ("distributed x2 (snapshot+merge)", distributed(2)),
        ("distributed x4 (snapshot+merge)", distributed(4)),
    ]

    row_identical = {}
    merge_seconds = {}
    snapshot_bytes = {}
    reference = {}

    def on_result(label: str, rep: int, result) -> None:
        engine, report = result
        if rep == 0 and label.startswith("serial"):
            reference["engine"] = engine
            reference["forest"] = engine.list_spanning_forest().partition_signature()
            return
        if rep == 0 and label.startswith("distributed"):
            row_identical[label] = bool(
                _pools_equal(reference["engine"], engine)
                and engine.list_spanning_forest().partition_signature()
                == reference["forest"]
                and engine.updates_processed
                == reference["engine"].updates_processed
            )
        if report is not None and label not in merge_seconds:
            merge_seconds[label] = report.merge_seconds
            snapshot_bytes[label] = report.snapshot_bytes

    def on_rep_end(rep: int) -> None:
        if rep == 0:
            reference.pop("engine")

    medians = interleaved_medians(
        specs, reps=TIMING_REPS, on_result=on_result, on_rep_end=on_rep_end
    )

    rows = []
    for label, _ in specs:
        seconds = medians[label]
        row = {
            "path": label,
            "updates": count,
            "seconds": round(seconds, 4),
            "updates_per_sec": round(count / seconds, 1),
        }
        if label in merge_seconds:
            row["merge_seconds"] = round(merge_seconds[label], 4)
            row["snapshot_bytes"] = snapshot_bytes[label]
            row["forest_bit_identical"] = row_identical[label]
        rows.append(row)
    serial_rate = rows[0]["updates_per_sec"]
    for row in rows:
        row["speedup_vs_serial"] = round(row["updates_per_sec"] / serial_rate, 2)

    print_table(
        render_table(
            rows,
            title=(
                f"Distributed ingest + merge ({NUM_NODES} nodes, {count} edge "
                f"updates, {usable_cores()} cores{', smoke' if SMOKE else ''})"
            ),
        )
    )

    payload = {
        "num_nodes": NUM_NODES,
        "num_edge_updates": count,
        "cores": usable_cores(),
        "smoke": SMOKE,
        "forest_bit_identical": all(row_identical.values()),
        "min_speedup_multicore": MIN_SPEEDUP_MULTICORE,
        "rows": rows,
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")

    assert all(row_identical.values()), (
        "a distributed merge diverged from serial ingest: "
        f"{row_identical}"
    )
    assert all(label in merge_seconds for label in row_identical), (
        "merge cost must be reported separately for every distributed row"
    )
    if SMOKE:
        return
    x2 = next(r for r in rows if "x2" in r["path"])
    x4 = next(r for r in rows if "x4" in r["path"])
    if usable_cores() >= 2:
        assert x4["updates_per_sec"] >= MIN_SPEEDUP_MULTICORE * serial_rate, (
            f"distributed x4 only {x4['updates_per_sec'] / serial_rate:.2f}x over "
            f"serial on {usable_cores()} cores (need >= {MIN_SPEEDUP_MULTICORE}x)"
        )
    else:
        # One usable core: the processes time-slice, so the ceiling is
        # the sharded kernel's single-core edge; require the plane's
        # snapshot/merge overhead to be fully amortised.
        assert x2["updates_per_sec"] >= MIN_SPEEDUP_SINGLE_CORE * serial_rate, (
            f"distributed x2 only {x2['updates_per_sec'] / serial_rate:.2f}x over "
            f"serial on one core (need >= {MIN_SPEEDUP_SINGLE_CORE}x: overhead "
            "must be amortised)"
        )


if __name__ == "__main__":
    test_distributed_merge_ledger()
