"""Figure 4: CubeSketch is faster than standard l0 sketching.

The paper reports single-threaded ingestion rates for both samplers on
vector lengths from 10^3 to 10^12, with CubeSketch 33x faster at the
small end and >1000x faster once the general sampler needs 128-bit
arithmetic (vector length >= 10^10).  This benchmark measures both
samplers at laptop-feasible lengths, forces the 128-bit path explicitly
for the cliff comparison, and asserts the qualitative shape: CubeSketch
wins everywhere and the gap widens with the vector length.
"""

import numpy as np
from conftest import print_table

from repro.analysis.experiments import measure_l0_update_rates
from repro.analysis.tables import render_table
from repro.sketch.cubesketch import CubeSketch
from repro.sketch.standard_l0 import StandardL0Sketch

#: Vector lengths measured directly (the paper's 10^10..10^12 rows are
#: represented by the forced-wide-arithmetic measurement below).
VECTOR_LENGTHS = [10**3, 10**4, 10**6, 10**8, 10**9]


def test_fig04_update_rate_table(benchmark):
    rows = benchmark.pedantic(
        measure_l0_update_rates,
        args=(VECTOR_LENGTHS,),
        kwargs=dict(cubesketch_updates=30_000, standard_updates=300, seed=3),
        rounds=1,
        iterations=1,
    )

    # The paper's 128-bit cliff: the same measurement with wide arithmetic
    # forced on, standing in for vector lengths >= 10^10.
    rng = np.random.default_rng(3)
    wide = StandardL0Sketch(10**9, seed=3, force_wide_arithmetic=True)
    indices = rng.integers(0, 10**9, size=300)
    import time

    start = time.perf_counter()
    for index in indices:
        wide.update(int(index), 1)
    wide_rate = 300 / (time.perf_counter() - start)
    cube = CubeSketch(10**9, seed=3)
    batch = rng.integers(0, 10**9, size=30_000, dtype=np.uint64)
    start = time.perf_counter()
    cube.update_batch(batch)
    cube_rate = 30_000 / (time.perf_counter() - start)
    rows.append(
        {
            "vector_length": ">=10^10 (128-bit forced)",
            "standard_l0_rate": round(wide_rate, 1),
            "cubesketch_rate": round(cube_rate, 1),
            "speedup": round(cube_rate / wide_rate, 1),
            "standard_uses_wide_ints": True,
        }
    )
    print_table(render_table(rows, title="Figure 4: l0 sampler ingestion rates (updates/s)"))

    # Shape assertions: CubeSketch always wins, and the advantage grows
    # between the smallest vector and the 128-bit regime.
    speedups = [row["speedup"] for row in rows]
    assert all(s > 1 for s in speedups)
    assert speedups[-1] > speedups[0]


def test_fig04_cubesketch_update_kernel(benchmark):
    """pytest-benchmark timing of the hot CubeSketch batch-update kernel."""
    sketch = CubeSketch(10**8, seed=1)
    rng = np.random.default_rng(1)
    batch = rng.integers(0, 10**8, size=10_000, dtype=np.uint64)
    benchmark(sketch.update_batch, batch)


def test_fig04_flat_bundle_update_kernel(benchmark):
    """pytest-benchmark timing of the columnar whole-bundle kernel.

    Where the CubeSketch kernel above folds one round's sketch, this
    folds a full node bundle (every Boruvka round at once) through the
    flat tensor path -- the unit of work the ingest pipeline actually
    performs per batch.
    """
    from repro.core.edge_encoding import EdgeEncoder
    from repro.sketch.flat_node_sketch import FlatNodeSketch

    encoder = EdgeEncoder(10_000)
    sketch = FlatNodeSketch(0, encoder, graph_seed=1)
    rng = np.random.default_rng(1)
    neighbors = rng.integers(1, 10_000, size=10_000)
    indices = encoder.encode_batch(0, neighbors)
    benchmark(sketch.apply_indices, indices)


def test_fig04_standard_l0_update_kernel(benchmark):
    """pytest-benchmark timing of the baseline sampler's scalar update."""
    sketch = StandardL0Sketch(10**8, seed=1)

    def run():
        for index in range(0, 2000, 13):
            sketch.update(index, 1)

    benchmark(run)
