"""Figure 15: gutter size vs ingestion speed.

The paper sweeps the leaf-gutter size (as a fraction ``f`` of the
node-sketch size) and finds: with no buffering ingestion is 33x slower
in RAM and three orders of magnitude slower on SSD; small fractions
(f ~ 0.01) already recover most of the in-RAM rate, while on SSD a
larger fraction (f ~ 0.5) is needed to amortise the node-sketch I/O.

The same sweep runs here, in RAM and with a RAM budget.  Assertions:
buffered ingestion beats unbuffered in both settings, the gap is much
larger out of core, and on SSD larger gutters keep helping beyond the
point where the in-RAM curve has already flattened.
"""

from conftest import print_table

from repro.analysis.experiments import buffer_size_sweep
from repro.analysis.tables import render_table
from repro.core.config import GraphZeppelinConfig
from repro.core.graph_zeppelin import GraphZeppelin

FRACTIONS = (0.0, 0.01, 0.1, 0.5, 1.0)


def test_fig15_gutter_size_sweep(benchmark, kron13):
    probe = GraphZeppelin(kron13.num_nodes, config=GraphZeppelinConfig(seed=1))
    budget = probe.sketch_bytes() // 4

    def run():
        return (
            buffer_size_sweep(kron13, fractions=FRACTIONS, seed=8),
            buffer_size_sweep(kron13, fractions=FRACTIONS, ram_budget_bytes=budget, seed=8),
        )

    in_ram, on_disk = benchmark.pedantic(run, rounds=1, iterations=1)

    for row in in_ram:
        row["setting"] = "RAM"
    for row in on_disk:
        row["setting"] = "SSD (modelled)"
    rows = in_ram + on_disk
    print_table(
        render_table(
            rows,
            columns=["setting", "gutter_fraction", "wall_seconds",
                     "modelled_io_seconds", "ingestion_rate"],
            title="Figure 15: gutter size vs ingestion speed",
        )
    )

    ram_by_f = {row["gutter_fraction"]: row["ingestion_rate"] for row in in_ram}
    disk_by_f = {row["gutter_fraction"]: row["ingestion_rate"] for row in on_disk}

    # Buffering helps in RAM and is essential on SSD.
    assert ram_by_f[0.5] > ram_by_f[0.0]
    assert disk_by_f[0.5] > disk_by_f[0.0]
    # The unbuffered penalty is far worse out of core than in RAM.
    ram_penalty = ram_by_f[0.5] / ram_by_f[0.0]
    disk_penalty = disk_by_f[0.5] / disk_by_f[0.0]
    assert disk_penalty > ram_penalty
    # On SSD, growing the gutter from 1% to 50% of a node sketch still pays.
    assert disk_by_f[0.5] > disk_by_f[0.01]
