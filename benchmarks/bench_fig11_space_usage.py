"""Figure 11: GraphZeppelin uses less space than Aspen or Terrace on
large, dense graph streams.

Two views are produced, matching how DESIGN.md maps this figure:

* the *paper-scale* table evaluates each system's space model at the
  true kron13-kron18 node/edge counts (these graphs are terabytes as
  streams and are not materialised), reproducing the crossover the
  paper reports -- GraphZeppelin smaller than Terrace from kron15 and
  smaller than Aspen from kron17/kron18;
* the *measured* table ingests the scaled-down kron streams into the
  actual implementations and reports their concrete byte sizes.
"""

from conftest import print_table

from repro.analysis.experiments import space_usage_comparison
from repro.analysis.tables import format_bytes, render_table

PAPER_SCALE_DATASETS = ["kron13", "kron15", "kron16", "kron17", "kron18"]


def test_fig11_space_usage(benchmark, bench_datasets):
    result = benchmark(
        space_usage_comparison, PAPER_SCALE_DATASETS, bench_datasets
    )

    paper_rows = [
        {
            "dataset": row["dataset"],
            "aspen": format_bytes(row["aspen_bytes"]),
            "terrace": format_bytes(row["terrace_bytes"]),
            "graphzeppelin": format_bytes(row["graphzeppelin_bytes"]),
            "gz/aspen": row["gz_vs_aspen"],
            "gz/terrace": row["gz_vs_terrace"],
        }
        for row in result["paper_scale"]
    ]
    print_table(
        render_table(paper_rows, title="Figure 11a (paper scale, modelled space)")
    )

    measured_rows = [
        {
            "dataset": row["dataset"],
            "nodes": row["nodes"],
            "aspen": format_bytes(row["aspen_bytes"]),
            "terrace": format_bytes(row["terrace_bytes"]),
            "graphzeppelin": format_bytes(row["graphzeppelin_bytes"]),
        }
        for row in result["measured"]
    ]
    print_table(render_table(measured_rows, title="Figure 11 (scaled-down, measured)"))

    by_name = {row["dataset"]: row for row in result["paper_scale"]}
    # Crossover shape from the paper: GZ loses on kron13, beats Terrace by
    # kron15, beats Aspen by kron17 and kron18.
    assert by_name["kron13"]["gz_vs_aspen"] > 1
    assert by_name["kron15"]["gz_vs_terrace"] < 1
    assert by_name["kron17"]["gz_vs_aspen"] < 1
    assert by_name["kron18"]["gz_vs_aspen"] < 1
    # The advantage grows with scale (asymptotic O(V/log^3 V) factor).
    assert by_name["kron18"]["gz_vs_aspen"] < by_name["kron17"]["gz_vs_aspen"]
