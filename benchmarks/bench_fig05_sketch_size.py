"""Figure 5: CubeSketch is significantly smaller than standard l0 sketching.

The paper lists sketch sizes for vector lengths 10^3..10^12 at delta =
1/100 and observes a ~2x size reduction for short vectors growing to
~4x once the general sampler needs 128-bit words.  Sizes are a
deterministic function of the parameters, so the full table (including
the 10^12 row) is regenerated exactly; the benchmark timing covers the
size-model evaluation plus a consistency check against real sketch
instances.
"""

from conftest import print_table

from repro.analysis.experiments import sketch_size_table
from repro.analysis.tables import format_bytes, render_table
from repro.sketch.cubesketch import CubeSketch
from repro.sketch.standard_l0 import StandardL0Sketch

VECTOR_LENGTHS = [10**3, 10**4, 10**5, 10**6, 10**7, 10**8, 10**9, 10**10, 10**11, 10**12]


def test_fig05_sketch_size_table(benchmark):
    rows = benchmark(sketch_size_table, VECTOR_LENGTHS)
    printable = [
        {
            "vector_length": f"{row['vector_length']:.0e}",
            "standard_l0": format_bytes(row["standard_l0_bytes"]),
            "cubesketch": format_bytes(row["cubesketch_bytes"]),
            "size_reduction": f"{row['size_reduction']:.1f} x",
        }
        for row in rows
    ]
    print_table(render_table(printable, title="Figure 5: l0 sketch sizes (delta = 1/100)"))

    by_length = {row["vector_length"]: row for row in rows}
    # Paper shape: ~2x reduction for short vectors, ~4x at 10^10 and beyond.
    assert 1.5 <= by_length[10**4]["size_reduction"] <= 2.5
    assert by_length[10**10]["size_reduction"] >= 3.5
    assert by_length[10**12]["size_reduction"] >= 3.5
    # Sizes stay in the kilobyte range even for 10^12-length vectors.
    assert by_length[10**12]["cubesketch_bytes"] < 64 * 1024


def test_fig05_model_matches_real_instances(benchmark):
    """The closed-form sizes must agree with actually-constructed sketches."""

    def check():
        for length in (10**3, 10**5, 10**6):
            cube = CubeSketch(length)
            standard = StandardL0Sketch(length)
            model = sketch_size_table([length])[0]
            assert cube.size_bytes() == model["cubesketch_bytes"]
            assert standard.size_bytes() == model["standard_l0_bytes"]

    benchmark.pedantic(check, rounds=1, iterations=1)
